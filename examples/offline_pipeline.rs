//! A guided walk through the offline procedure (paper Fig. 3, bottom half),
//! printing what each stage produces: expansion records, extracted
//! entity-value observations, EM convergence, and the final P(p|t) rows.
//!
//! ```sh
//! cargo run --release --example offline_pipeline
//! ```

use kbqa::core::expansion::{expand, ExpansionConfig};
use kbqa::core::extraction::{ExtractionConfig, Extractor};
use kbqa::core::template::TemplateCatalog;
use kbqa::prelude::*;

fn main() {
    let world = World::generate(WorldConfig::small(42));
    let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(7, 4_000));
    let ner = GazetteerNer::from_store(&world.store);

    // ---- Stage 1: predicate expansion (Sec 6) -------------------------
    println!("— stage 1: predicate expansion (Sec 6) —");
    let learner = Learner::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &world.predicate_classes,
    );
    let sources = learner.question_entities(corpus.pairs.iter().map(|p| p.question.as_str()));
    println!("  source entities (reduction on s): {}", sources.len());
    let scan_before = world.store.scan_passes();
    let expansion = expand(&world.store, &sources, &ExpansionConfig::default());
    println!(
        "  scan passes over the triple log: {}",
        world.store.scan_passes() - scan_before
    );
    for (len, count) in expansion.emitted_by_length.iter().enumerate().skip(1) {
        println!("  emitted (s, p⁺, o) at length {len}: {count}");
    }

    // ---- Stage 2: entity–value extraction (Sec 4.1) --------------------
    println!("\n— stage 2: entity–value extraction (Sec 4.1) —");
    let extractor = Extractor::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &expansion,
        &world.predicate_classes,
        ExtractionConfig::default(),
    );
    let mut templates = TemplateCatalog::new();
    let observations = extractor.extract_corpus(
        corpus
            .pairs
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str())),
        &mut templates,
    );
    println!(
        "  {} QA pairs → {} (q, e, v) observations, {} distinct templates",
        corpus.len(),
        observations.len(),
        templates.len()
    );
    if let Some(obs) = observations.first() {
        let pair = &corpus.pairs[obs.pair_index];
        println!("  example observation:");
        println!("    question: {:?}", pair.question);
        println!("    answer:   {:?}", pair.answer);
        println!(
            "    entity:   {}   value: {}",
            world.store.surface(obs.entity),
            world.store.surface(obs.value)
        );
        for &(p, pv) in &obs.predicates {
            println!(
                "    candidate predicate: {}  (P(v|e,p) = {pv:.2})",
                expansion.catalog.render(p, &world.store)
            );
        }
    }

    // ---- Stage 3: EM (Sec 4.2–4.3) --------------------------------------
    println!("\n— stage 3: EM estimation of P(p|t) (Algorithm 1) —");
    let (theta, stats) =
        kbqa::core::em::estimate(&observations, templates.len(), &Default::default());
    println!(
        "  converged: {} after {} iterations",
        stats.converged, stats.iterations
    );
    if stats.log_likelihood.len() >= 2 {
        println!(
            "  log-likelihood: {:.1} → {:.1}",
            stats.log_likelihood.first().unwrap(),
            stats.log_likelihood.last().unwrap()
        );
    }
    println!("\n  sample learned rows (template → argmax predicate):");
    let mut shown = 0;
    for (tid, row) in theta.iter() {
        if row.is_empty() || shown >= 8 {
            continue;
        }
        let (p, prob) = row[0];
        // Show confident, well-supported rows.
        if prob > 0.8 {
            println!(
                "    {:<55} → {} (θ = {prob:.2})",
                templates.resolve(tid),
                expansion.catalog.render(p, &world.store)
            );
            shown += 1;
        }
    }
}
