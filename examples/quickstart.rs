//! Quickstart: build a world, learn the model offline, then serve questions
//! through the owned, batch-first [`KbqaService`] API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use kbqa::prelude::*;

fn main() {
    // 1. A deterministic world: RDF store + taxonomy + intents, standing in
    //    for the paper's knowledge base, and a synthetic community-QA corpus
    //    standing in for Yahoo! Answers.
    println!("generating world and corpus…");
    let world = World::generate(WorldConfig::small(42));
    let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(7, 5_000));
    println!(
        "  world: {}\n  corpus: {} QA pairs",
        kbqa::rdf::StoreStats::of(&world.store),
        corpus.len()
    );

    // 2. Offline procedure (paper Fig. 3): predicate expansion → entity-value
    //    extraction → EM estimation of P(p|t).
    println!("\nrunning the offline pipeline…");
    let ner = Arc::new(GazetteerNer::from_store(&world.store));
    let learner = Learner::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &world.predicate_classes,
    );
    let pairs: Vec<(&str, &str)> = corpus
        .pairs
        .iter()
        .map(|p| (p.question.as_str(), p.answer.as_str()))
        .collect();
    let (model, _expansion) = learner.learn(&pairs, &LearnerConfig::default());
    let stats = model.stats.clone();
    println!(
        "  {} observations → {} templates over {} predicates ({} EM iterations, {} ms)",
        stats.observations,
        stats.distinct_templates,
        stats.distinct_predicates,
        stats.em.iterations,
        stats.offline_millis
    );

    // 3. Online serving: one owned service over shared (Arc) artifacts. The
    //    NER gazetteer is derived once, here; clones of the service are
    //    reference bumps and can be handed to worker threads.
    let index = PatternIndex::build(corpus.pairs.iter().map(|p| p.question.as_str()), &ner);
    let service = KbqaService::builder(
        Arc::clone(&world.store),
        Arc::clone(&world.conceptualizer),
        Arc::new(model),
    )
    .ner(ner)
    .pattern_index(Arc::new(index))
    .build();

    let intent = world.intent_by_name("city_population").expect("intent");
    let city = world
        .subjects_of(intent)
        .iter()
        .copied()
        .find(|&c| !world.gold_values(intent, c).is_empty())
        .expect("city with a population fact");
    let city_name = world.store.surface(city);

    // A batch of phrasings — paraphrases with zero lexical overlap with the
    // predicate included — answered in one call. Responses keep request
    // order and are identical to sequential `service.answer` calls.
    println!("\nasking about {city_name} (batched):");
    let requests: Vec<QaRequest> = [
        format!("how many people are there in {city_name}"),
        format!("what is the population of {city_name}"),
        format!("what is the total number of people in {city_name}"),
    ]
    .into_iter()
    .map(QaRequest::new)
    .collect();
    for (request, response) in requests.iter().zip(service.answer_batch(&requests)) {
        match response.answers.first() {
            Some(a) => println!(
                "  Q: {}\n  A: {} (template “{}” → predicate “{}”, score {:.4})",
                request.question, a.value, a.template, a.predicate, a.score
            ),
            None => println!(
                "  Q: {}\n  A: <refused: {}>",
                request.question,
                response.refusal.map(|r| r.to_string()).unwrap_or_default()
            ),
        }
    }

    // Refusals are typed, not silent: each names the first pipeline stage
    // that came up empty (precision over recall, paper Sec 7.3).
    println!("\nrefusal taxonomy in action:");
    for question in [
        "why is the sky blue",                                       // no entity
        &format!("please enumerate the inhabitants of {city_name}"), // no template
    ] {
        let response = service.answer_text(question);
        println!(
            "  Q: {question}\n  A: <refused: {}>",
            response
                .refusal
                .map(|r| r.to_string())
                .unwrap_or_else(|| "answered?!".into())
        );
    }

    // Per-request overrides: a stricter θ gate for one caller, explain mode
    // for another — no engine rebuilds, no shared-state mutation.
    let question = format!("what is the population of {city_name}");
    let strict = service.answer(&QaRequest::new(&question).with_min_theta(0.9).with_top_k(1));
    println!(
        "\nstrict request (θ ≥ 0.9, top-1): {} answer(s)",
        strict.answers.len()
    );
    let explained = service.answer(&QaRequest::new(&question).with_explain(true));
    if let Some(stats) = explained.stats {
        println!(
            "explain mode: {} entities, {:.1} templates/pair, {:.1} predicates/template",
            stats.entities, stats.templates_per_pair, stats.predicates_per_template
        );
    }
}
