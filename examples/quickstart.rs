//! Quickstart: build a world, learn the model offline, ask questions online.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kbqa::prelude::*;

fn main() {
    // 1. A deterministic world: RDF store + taxonomy + intents, standing in
    //    for the paper's knowledge base, and a synthetic community-QA corpus
    //    standing in for Yahoo! Answers.
    println!("generating world and corpus…");
    let world = World::generate(WorldConfig::small(42));
    let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(7, 5_000));
    println!(
        "  world: {}\n  corpus: {} QA pairs",
        kbqa::rdf::StoreStats::of(&world.store),
        corpus.len()
    );

    // 2. Offline procedure (paper Fig. 3): predicate expansion → entity-value
    //    extraction → EM estimation of P(p|t).
    println!("\nrunning the offline pipeline…");
    let ner = GazetteerNer::from_store(&world.store);
    let learner = Learner::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &world.predicate_classes,
    );
    let pairs: Vec<(&str, &str)> = corpus
        .pairs
        .iter()
        .map(|p| (p.question.as_str(), p.answer.as_str()))
        .collect();
    let (model, _expansion) = learner.learn(&pairs, &LearnerConfig::default());
    let stats = &model.stats;
    println!(
        "  {} observations → {} templates over {} predicates ({} EM iterations, {} ms)",
        stats.observations,
        stats.distinct_templates,
        stats.distinct_predicates,
        stats.em.iterations,
        stats.offline_millis
    );

    // 3. Online procedure: probabilistic inference over the learned model.
    let index = PatternIndex::build(corpus.pairs.iter().map(|p| p.question.as_str()), &ner);
    let engine = QaEngine::new(&world.store, &world.conceptualizer, &model)
        .with_pattern_index(index);

    let intent = world.intent_by_name("city_population").expect("intent");
    let city = world
        .subjects_of(intent)
        .iter()
        .copied()
        .find(|&c| !world.gold_values(intent, c).is_empty())
        .expect("city with a population fact");
    let city_name = world.store.surface(city);

    println!("\nasking about {city_name}:");
    for question in [
        format!("how many people are there in {city_name}"),
        format!("what is the population of {city_name}"),
        format!("what is the total number of people in {city_name}"),
    ] {
        match engine.answer_bfq(&question) {
            answers if !answers.is_empty() => {
                let a = &answers[0];
                println!(
                    "  Q: {question}\n  A: {} (template “{}” → predicate “{}”, score {:.4})",
                    a.value, a.template, a.predicate, a.score
                );
            }
            _ => println!("  Q: {question}\n  A: <no answer>"),
        }
    }

    // Refusal on non-factoid input — precision over recall.
    let off_topic = "why is the sky blue";
    match QaSystem::answer(&engine, off_topic) {
        Some(_) => println!("\n  Q: {off_topic}\n  A: (unexpected)"),
        None => println!("\n  Q: {off_topic}\n  A: <refused — not a BFQ>"),
    }
}
