//! Interactive QA shell: learn once, then answer questions from stdin.
//!
//! ```sh
//! cargo run --release --example ask
//! # then type questions; empty line or Ctrl-D exits.
//! ```
//!
//! Type `:entities` to sample askable entity names, `:intents` to list the
//! world's intents (what the corpus can teach), `:stats <question>` for the
//! Table 6 uncertainty profile of a question.

use std::io::{self, BufRead, Write};
use std::sync::Arc;

use kbqa::prelude::*;

fn main() {
    println!("building world, corpus and model (a few seconds)…");
    let world = World::generate(WorldConfig::small(42));
    let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(7, 6_000));
    let ner = Arc::new(GazetteerNer::from_store(&world.store));
    let learner = Learner::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &world.predicate_classes,
    );
    let pairs: Vec<(&str, &str)> = corpus
        .pairs
        .iter()
        .map(|p| (p.question.as_str(), p.answer.as_str()))
        .collect();
    let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
    let index = PatternIndex::build(corpus.pairs.iter().map(|p| p.question.as_str()), &ner);
    let service = KbqaService::builder(
        Arc::clone(&world.store),
        Arc::clone(&world.conceptualizer),
        Arc::new(model),
    )
    .ner(ner)
    .pattern_index(Arc::new(index))
    .build();

    println!(
        "ready: {} templates over {} predicates. Ask away (`:entities` for names).\n",
        service.model().stats.distinct_templates,
        service.model().stats.distinct_predicates
    );

    let stdin = io::stdin();
    let mut stdout = io::stdout();
    loop {
        print!("? ");
        stdout.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let question = line.trim();
        if question.is_empty() {
            break;
        }
        if question == ":entities" {
            let pop = world.intent_by_name("city_population").unwrap();
            let names: Vec<String> = world
                .subjects_of(pop)
                .iter()
                .take(8)
                .map(|&c| world.store.surface(c))
                .collect();
            println!("some cities: {}", names.join(", "));
            let spouse = world.intent_by_name("person_spouse").unwrap();
            let names: Vec<String> = world
                .subjects_of(spouse)
                .iter()
                .filter(|&&p| !world.gold_values(spouse, p).is_empty())
                .take(5)
                .map(|&p| world.store.surface(p))
                .collect();
            println!("some married people: {}", names.join(", "));
            continue;
        }
        if question == ":intents" {
            for intent in &world.intents {
                println!(
                    "  {:<20} {} ({})",
                    intent.name,
                    intent.path.render(&world.store),
                    intent.answer_class
                );
            }
            continue;
        }
        if let Some(q) = question.strip_prefix(":stats ") {
            let stats = service.question_statistics(q);
            println!(
                "entities: {}  templates/pair: {:.1}  predicates/template: {:.1}  values/(e,p): {:.1}",
                stats.entities,
                stats.templates_per_pair,
                stats.predicates_per_template,
                stats.values_per_pair
            );
            continue;
        }
        let response = service.answer_text(question);
        if response.answered() {
            for (rank, a) in response.answers.iter().take(3).enumerate() {
                println!(
                    "{}. {}   [entity {}, template “{}”, predicate {}, score {:.4}]",
                    rank + 1,
                    a.value,
                    a.entity,
                    a.template,
                    a.predicate,
                    a.score
                );
            }
        } else {
            let cause = response
                .refusal
                .map(|r| r.to_string())
                .unwrap_or_else(|| "unknown".into());
            println!("<no answer — {cause}>");
        }
    }
    println!("bye");
}
