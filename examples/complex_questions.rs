//! Complex-question decomposition traces (paper Sec 5, Table 15).
//!
//! Shows the dynamic program splitting "when was X's wife born?"-style
//! questions into BFQ chains, the P(A) scores, and the chained execution.
//!
//! ```sh
//! cargo run --release --example complex_questions
//! ```

use std::sync::Arc;

use kbqa::prelude::*;

fn main() {
    let world = World::generate(WorldConfig::small(42));
    let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(7, 6_000));
    let ner = Arc::new(GazetteerNer::from_store(&world.store));
    let learner = Learner::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &world.predicate_classes,
    );
    let pairs: Vec<(&str, &str)> = corpus
        .pairs
        .iter()
        .map(|p| (p.question.as_str(), p.answer.as_str()))
        .collect();
    let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
    let index = PatternIndex::build(corpus.pairs.iter().map(|p| p.question.as_str()), &ner);
    let service = KbqaService::builder(
        Arc::clone(&world.store),
        Arc::clone(&world.conceptualizer),
        Arc::new(model),
    )
    .ner(ner)
    .pattern_index(Arc::new(index))
    .build();

    let suite = benchmark::complex_suite(&world);
    println!("Table 15 workload instantiated over this world:\n");
    for cq in &suite {
        println!("Q: {}", cq.question);
        match service.decompose(&cq.question) {
            Some(d) => {
                println!("  decomposition (P(A) = {:.3}):", d.probability);
                println!("    q̌0 = {:?}", d.primitive);
                for (i, p) in d.patterns.iter().enumerate() {
                    println!("    q̌{} = {:?}", i + 1, p);
                }
                match service.execute_decomposition(&d) {
                    Some(answers) => {
                        let top = answers.first().map(|a| a.value.as_str()).unwrap_or("-");
                        let ok = cq
                            .gold_answers
                            .iter()
                            .any(|g| eval::matches_gold(top, std::slice::from_ref(g)));
                        println!(
                            "  answer: {top}   gold: {:?}   [{}]",
                            cq.gold_answers,
                            if ok { "RIGHT" } else { "WRONG" }
                        );
                    }
                    None => println!("  answer: <execution failed>"),
                }
            }
            None => println!("  <no decomposition found>"),
        }
        println!();
    }
}
