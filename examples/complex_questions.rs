//! Complex-question decomposition traces (paper Sec 5, Table 15).
//!
//! Shows the dynamic program splitting "when was X's wife born?"-style
//! questions into BFQ chains, the P(A) scores, and the chained execution.
//!
//! ```sh
//! cargo run --release --example complex_questions
//! ```

use kbqa::core::decompose;
use kbqa::prelude::*;

fn main() {
    let world = World::generate(WorldConfig::small(42));
    let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(7, 6_000));
    let ner = GazetteerNer::from_store(&world.store);
    let learner = Learner::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &world.predicate_classes,
    );
    let pairs: Vec<(&str, &str)> = corpus
        .pairs
        .iter()
        .map(|p| (p.question.as_str(), p.answer.as_str()))
        .collect();
    let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
    let index = PatternIndex::build(corpus.pairs.iter().map(|p| p.question.as_str()), &ner);
    let engine = QaEngine::new(&world.store, &world.conceptualizer, &model)
        .with_pattern_index(index.clone());

    let suite = benchmark::complex_suite(&world);
    println!("Table 15 workload instantiated over this world:\n");
    for cq in &suite {
        println!("Q: {}", cq.question);
        match decompose::decompose(&engine, &index, &cq.question) {
            Some(d) => {
                println!("  decomposition (P(A) = {:.3}):", d.probability);
                println!("    q̌0 = {:?}", d.primitive);
                for (i, p) in d.patterns.iter().enumerate() {
                    println!("    q̌{} = {:?}", i + 1, p);
                }
                match decompose::execute(&engine, &d) {
                    Some(answer) => {
                        let top = answer.top().unwrap_or("-");
                        let ok = cq
                            .gold_answers
                            .iter()
                            .any(|g| eval::matches_gold(top, std::slice::from_ref(g)));
                        println!(
                            "  answer: {top}   gold: {:?}   [{}]",
                            cq.gold_answers,
                            if ok { "RIGHT" } else { "WRONG" }
                        );
                    }
                    None => println!("  answer: <execution failed>"),
                }
            }
            None => println!("  <no decomposition found>"),
        }
        println!();
    }
}
