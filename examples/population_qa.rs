//! The paper's §1 motivating scenario: one *intent* (population), many
//! phrasings — including ones with zero lexical overlap with the predicate —
//! answered through learned templates, where keyword and synonym systems
//! fail.
//!
//! ```sh
//! cargo run --release --example population_qa
//! ```

use std::sync::Arc;

use kbqa::prelude::*;

fn main() {
    let world = World::generate(WorldConfig::small(42));
    let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(7, 5_000));
    let ner = Arc::new(GazetteerNer::from_store(&world.store));
    let learner = Learner::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &world.predicate_classes,
    );
    let pairs: Vec<(&str, &str)> = corpus
        .pairs
        .iter()
        .map(|p| (p.question.as_str(), p.answer.as_str()))
        .collect();
    let (model, expansion) = learner.learn(&pairs, &LearnerConfig::default());
    let service = KbqaService::builder(
        Arc::clone(&world.store),
        Arc::clone(&world.conceptualizer),
        Arc::new(model),
    )
    .ner(Arc::clone(&ner))
    .build();

    // Competing systems from the paper's taxonomy of prior work.
    let rule = RuleBasedQa::new(&world.store);
    let keyword = KeywordQa::new(&world.store);
    let docs = kbqa::corpus::docs::declarative_corpus(&world, 40, 99);
    let (lexicon, _) = kbqa::baselines::learn_boa(
        &world.store,
        &ner,
        &expansion,
        docs.iter().map(|d| d.text.as_str()),
    );
    let synonym = SynonymQa::new(&world.store, &lexicon, &expansion.catalog);

    let intent = world.intent_by_name("city_population").expect("intent");
    let city = world
        .subjects_of(intent)
        .iter()
        .copied()
        .find(|&c| !world.gold_values(intent, c).is_empty())
        .expect("city with population");
    let name = world.store.surface(city);
    let gold = world.gold_values(intent, city);
    println!("city: {name}   gold population: {}\n", gold[0]);

    let phrasings = [
        format!("what is the population of {name}"), // predicate named → easy
        format!("how many people are there in {name}"), // paper's case (a)
        format!("what is the total number of people in {name}"), // case (c)
        format!("how populous is {name}"),
        format!("how many residents does {name} have"),
    ];
    let systems: Vec<(&str, &dyn QaSystem)> = vec![
        ("RuleQA", &rule),
        ("KeywordQA", &keyword),
        ("SynonymQA", &synonym),
        ("KBQA", &service),
    ];

    println!(
        "{:<55} {:>10} {:>10} {:>10} {:>10}",
        "question", "RuleQA", "KeywordQA", "SynonymQA", "KBQA"
    );
    for q in &phrasings {
        print!("{q:<55}");
        for (_, system) in &systems {
            let response = system.answer_text(q);
            let verdict = if response
                .top()
                .map(|v| gold.contains(&v.to_owned()))
                .unwrap_or(false)
            {
                "✓"
            } else if response.answered() {
                "✗ wrong"
            } else {
                "— refuse"
            };
            print!(" {verdict:>10}");
        }
        println!();
    }

    println!(
        "\nKBQA's learned mapping: every phrasing above is a distinct template\n\
         whose P(p|t) concentrates on `population`; rule/keyword/synonym\n\
         systems only reach the phrasings that mention the predicate (or a\n\
         declarative-text synonym of it)."
    );
}
