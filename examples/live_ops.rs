//! The serving control plane, end to end: **warm start → query → hot
//! reload → query**, over real sockets.
//!
//! First run (cold): generates the toy world, learns the model, and saves
//! the full serving bundle (store, taxonomy, model, NER, pattern index) to
//! an artifact directory. Every later run **warm starts** from that
//! directory — no world generation, no EM — which is the operational story
//! for a model whose offline learning took the paper 1438 minutes.
//!
//! Then it exercises the live-ops surface: query (cache miss), repeat
//! (hit), write a retrained model variant to the model path, hot-swap it
//! via the token-gated `POST /admin/reload`, and show the same question now
//! missing the cache and answering under the new model epoch.
//!
//! ```sh
//! cargo run --release --example live_ops              # cold start, then the script
//! cargo run --release --example live_ops              # warm start this time
//! KBQA_ARTIFACTS_DIR=/tmp/kbqa cargo run --release --example live_ops
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use kbqa::prelude::*;
use kbqa_core::persist::{self, MODEL_FILE};
use kbqa_server::{serve, ServerConfig};

const QUESTIONS_FILE: &str = "questions.json";

fn main() {
    let dir = std::env::var("KBQA_ARTIFACTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("kbqa-live-ops"));

    // 1. Warm start when the artifact directory is populated; otherwise run
    //    the offline pipeline once and persist everything.
    let started = Instant::now();
    let (service, questions) = if ServingArtifacts::present_in(&dir) {
        let artifacts = ServingArtifacts::load(&dir).expect("load artifacts");
        let questions: Vec<String> =
            persist::load_json(&dir.join(QUESTIONS_FILE)).expect("load demo questions");
        let service = artifacts.into_service();
        println!(
            "warm start from {} in {:?} (no world generation, no EM)",
            dir.display(),
            started.elapsed()
        );
        (service, questions)
    } else {
        println!("cold start: generating world and learning the model…");
        let world = World::generate(WorldConfig::tiny(42));
        let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 800));
        let ner = Arc::new(GazetteerNer::from_store(&world.store));
        let learner = Learner::new(
            &world.store,
            &world.conceptualizer,
            &ner,
            &world.predicate_classes,
        );
        let pairs: Vec<(&str, &str)> = corpus
            .pairs
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str()))
            .collect();
        let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
        let index = PatternIndex::build(corpus.pairs.iter().map(|p| p.question.as_str()), &ner);
        let service = KbqaService::builder(
            Arc::clone(&world.store),
            Arc::clone(&world.conceptualizer),
            Arc::new(model),
        )
        .ner(ner)
        .pattern_index(Arc::new(index))
        .build();

        let intent = world.intent_by_name("city_population").expect("intent");
        let questions: Vec<String> = world
            .subjects_of(intent)
            .iter()
            .copied()
            .filter(|&c| !world.gold_values(intent, c).is_empty())
            .take(3)
            .map(|c| format!("what is the population of {}", world.store.surface(c)))
            .collect();

        ServingArtifacts::from_service(&service)
            .save(&dir)
            .expect("save artifacts");
        persist::save_json(&questions, &dir.join(QUESTIONS_FILE)).expect("save demo questions");
        println!(
            "cold start in {:?}; artifacts saved to {} (next run warm starts)",
            started.elapsed(),
            dir.display()
        );
        (service, questions)
    };

    // 2. Serve, with the admin surface wired to the artifact directory. The
    //    KBQA_* env knobs still apply; the token and model path default to
    //    the demo values when unset.
    let token = std::env::var("KBQA_ADMIN_TOKEN").unwrap_or_else(|_| "live-ops-demo".into());
    let mut config = ServerConfig::from_env();
    config.admin_token = Some(token.clone());
    // The retrained model below must land wherever /admin/reload will read
    // from — the env-configured KBQA_MODEL_PATH when set, the artifact
    // directory's model file otherwise.
    let model_path = config
        .model_path
        .get_or_insert_with(|| dir.join(MODEL_FILE))
        .clone();
    // Keep a handle on the service: the server's clone shares its
    // ModelHandle, so the swap below is visible on both sides.
    let handle = serve(service.clone(), "127.0.0.1:0", config).expect("bind server");
    let addr = handle.local_addr();
    println!("listening on http://{addr} (admin token: {token:?})\n");

    // Liveness first: on a warm start the store backend is "mapped" — the
    // server answers straight out of the mmap'd snapshot.
    let (_, health) = http(addr, "GET", "/healthz", "", "");
    println!("GET /healthz → {health}\n");

    // 3. Query twice: miss then hit, both under model epoch 0.
    let question = &questions[0];
    let body = serde_json::to_string(&QaRequest::new(question)).expect("serialize request");
    println!("POST /answer — {question:?}, asked twice under epoch 0:");
    for round in ["cold", "cached"] {
        let (status, response) = http(addr, "POST", "/answer", "", &body);
        println!("  [{round}] {status} → {response}");
    }
    let (_, stats) = http(addr, "GET", "/cache/stats", "", "");
    println!("  cache → {stats}\n");

    // 4. "Retrain": a model variant with a uniformized P(p|t) — the
    //    ablation model — written to the very file the admin route watches.
    let learned = service.model();
    let mut retrained = (*learned).clone();
    retrained.theta = retrained.theta.uniformized();
    persist::save_model(&retrained, &model_path).expect("save retrained model");
    println!(
        "wrote retrained model (uniform θ) to {}",
        model_path.display()
    );

    // 5. Hot swap, no restart: POST /admin/reload with the token.
    let (status, response) = http(
        addr,
        "POST",
        "/admin/reload",
        &format!("X-Admin-Token: {token}\r\n"),
        "",
    );
    println!("POST /admin/reload → {status} {response}");
    assert_eq!(status, 200, "reload must succeed: {response}");

    // 6. Same question: the versioned cache key misses, and the answer is
    //    served by the new model under epoch 1.
    println!("\nPOST /answer — same question, post-swap:");
    let (status, response) = http(addr, "POST", "/answer", "", &body);
    println!("  [post-swap] {status} → {response}");
    let parsed: QaResponse = serde_json::from_str(&response).expect("QaResponse");
    assert_eq!(parsed.model_epoch, service.model_epoch());
    let (_, stats) = http(addr, "GET", "/cache/stats", "", "");
    println!("  cache → {stats}");
    let (_, metrics) = http(addr, "GET", "/metrics", "", "");
    let snapshot: kbqa_server::MetricsSnapshot =
        serde_json::from_str(&metrics).expect("metrics JSON");
    println!(
        "  metrics → answer_requests={} admin_reloads={} requests_shed={}",
        snapshot.answer_requests, snapshot.admin_reloads, snapshot.requests_shed
    );
    assert_eq!(snapshot.admin_reloads, 1);

    // Restore the learned model on disk so the next warm start serves the
    // real θ again.
    persist::save_model(&learned, &model_path).expect("restore model file");

    handle.shutdown();
    println!("\nserver drained and shut down cleanly");
}

/// One-shot HTTP request on a fresh connection.
fn http(addr: SocketAddr, method: &str, path: &str, headers: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: example\r\nConnection: close\r\n{headers}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}
