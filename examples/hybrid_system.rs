//! KBQA as the high-precision component of a hybrid system (Table 11).
//!
//! KBQA refuses non-BFQs; a fallback system catches what it declines. The
//! example evaluates baseline-alone vs KBQA+baseline on a QALD-3-like set.
//!
//! ```sh
//! cargo run --release --example hybrid_system
//! ```

use std::sync::Arc;

use kbqa::prelude::*;

fn main() {
    let world = World::generate(WorldConfig::small(42));
    let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(7, 5_000));
    let ner = Arc::new(GazetteerNer::from_store(&world.store));
    let learner = Learner::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &world.predicate_classes,
    );
    let pairs: Vec<(&str, &str)> = corpus
        .pairs
        .iter()
        .map(|p| (p.question.as_str(), p.answer.as_str()))
        .collect();
    let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
    let index = PatternIndex::build(corpus.pairs.iter().map(|p| p.question.as_str()), &ner);
    let service = KbqaService::builder(
        Arc::clone(&world.store),
        Arc::clone(&world.conceptualizer),
        Arc::new(model),
    )
    .ner(ner)
    .pattern_index(Arc::new(index))
    .build();

    let bench = benchmark::qald_like(&world, "QALD-3-like", 99, 41, 0.25, 73);
    let questions: Vec<EvalQuestion> = bench
        .questions
        .iter()
        .map(|q| EvalQuestion {
            question: q.question.clone(),
            gold: q.gold_answers.clone(),
            is_bfq: q.kind.is_bfq(),
        })
        .collect();

    let report = |name: &str, system: &dyn QaSystem| {
        let o = eval::evaluate_qald(system, &questions);
        println!(
            "  {name:<22} #pro={:<3} #ri={:<3} P={:.2}  R={:.2}  R_BFQ={:.2}",
            o.processed,
            o.right,
            o.precision(),
            o.recall(),
            o.recall_bfq()
        );
    };

    println!("baseline alone vs hybrid (KBQA first, baseline on refusal):\n");
    let keyword = KeywordQa::new(&world.store);
    report("KeywordQA", &keyword);
    let hybrid = HybridSystem::new(service.clone(), keyword);
    report(hybrid.name(), &hybrid);

    println!();
    let rule = RuleBasedQa::new(&world.store);
    report("RuleQA", &rule);
    let hybrid2 = HybridSystem::new(service, rule);
    report(hybrid2.name(), &hybrid2);

    println!(
        "\nAs in the paper's Table 11, hybridization lifts recall without\n\
         sacrificing the baseline's precision: KBQA answers the BFQs it is\n\
         sure about and passes everything else through."
    );
}
