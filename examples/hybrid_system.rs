//! KBQA as the high-precision component of a hybrid system (Table 11).
//!
//! KBQA refuses non-BFQs; a fallback system catches what it declines. The
//! example evaluates baseline-alone vs KBQA+baseline on a QALD-3-like set.
//!
//! ```sh
//! cargo run --release --example hybrid_system
//! ```

use kbqa::prelude::*;

fn main() {
    let world = World::generate(WorldConfig::small(42));
    let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(7, 5_000));
    let ner = GazetteerNer::from_store(&world.store);
    let learner = Learner::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &world.predicate_classes,
    );
    let pairs: Vec<(&str, &str)> = corpus
        .pairs
        .iter()
        .map(|p| (p.question.as_str(), p.answer.as_str()))
        .collect();
    let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
    let index = PatternIndex::build(corpus.pairs.iter().map(|p| p.question.as_str()), &ner);

    let bench = benchmark::qald_like(&world, "QALD-3-like", 99, 41, 0.25, 73);
    let questions: Vec<EvalQuestion> = bench
        .questions
        .iter()
        .map(|q| EvalQuestion {
            question: q.question.clone(),
            gold: q.gold_answers.clone(),
            is_bfq: q.kind.is_bfq(),
        })
        .collect();

    let report = |name: &str, system: &dyn QaSystem| {
        let o = eval::evaluate_qald(system, &questions);
        println!(
            "  {name:<22} #pro={:<3} #ri={:<3} P={:.2}  R={:.2}  R_BFQ={:.2}",
            o.processed,
            o.right,
            o.precision(),
            o.recall(),
            o.recall_bfq()
        );
    };

    println!("baseline alone vs hybrid (KBQA first, baseline on refusal):\n");
    let keyword = KeywordQa::new(&world.store);
    report("KeywordQA", &keyword);
    let engine = QaEngine::new(&world.store, &world.conceptualizer, &model)
        .with_pattern_index(index.clone());
    let hybrid = HybridSystem::new(engine, keyword);
    report(hybrid.name(), &hybrid);

    println!();
    let rule = RuleBasedQa::new(&world.store);
    report("RuleQA", &rule);
    let engine2 = QaEngine::new(&world.store, &world.conceptualizer, &model)
        .with_pattern_index(index);
    let hybrid2 = HybridSystem::new(engine2, rule);
    report(hybrid2.name(), &hybrid2);

    println!(
        "\nAs in the paper's Table 11, hybridization lifts recall without\n\
         sacrificing the baseline's precision: KBQA answers the BFQs it is\n\
         sure about and passes everything else through."
    );
}
