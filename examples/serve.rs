//! Serve the toy world over HTTP and drive it end-to-end through real
//! sockets: scripted questions against `POST /answer` and `POST /batch`,
//! the chunked-streaming `POST /batch?stream=1` (answers flow as compute
//! lanes finish), a full-bundle hot reload through `POST /admin/reload`,
//! then the observability routes.
//!
//! ```sh
//! cargo run --release --example serve
//! # or keep the server up for manual curl:
//! KBQA_SERVE_ADDR=127.0.0.1:8080 cargo run --release --example serve
//! curl -s localhost:8080/answer -d '{"question":"what is the population of <city>"}'
//! # watch a batch stream chunk by chunk (--no-buffer shows arrival order):
//! curl -s --no-buffer 'localhost:8080/batch?stream=1' -d '[{"question":"…"},…]'
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use kbqa::prelude::*;
use kbqa_server::{serve, ServerConfig};

fn main() {
    // 1. Substrate: toy world, corpus, learned model — the same offline
    //    pipeline as the quickstart example.
    println!("generating world and learning the model…");
    let world = World::generate(WorldConfig::tiny(42));
    let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 800));
    let ner = Arc::new(GazetteerNer::from_store(&world.store));
    let learner = Learner::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &world.predicate_classes,
    );
    let pairs: Vec<(&str, &str)> = corpus
        .pairs
        .iter()
        .map(|p| (p.question.as_str(), p.answer.as_str()))
        .collect();
    let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
    let index = PatternIndex::build(corpus.pairs.iter().map(|p| p.question.as_str()), &ner);
    let service = KbqaService::builder(
        Arc::clone(&world.store),
        Arc::clone(&world.conceptualizer),
        Arc::new(model),
    )
    .ner(ner)
    .pattern_index(Arc::new(index))
    .build();

    // Stage the service's own artifacts as a bundle on disk — the "new
    // build" the full-bundle reload below hot-swaps in (store + taxonomy +
    // model remapped, not just the model).
    let bundle_dir = std::env::temp_dir().join(format!("kbqa-serve-bundle-{}", std::process::id()));
    ServingArtifacts::from_service(&service)
        .save(&bundle_dir)
        .expect("save bundle");

    // 2. The server. With KBQA_SERVE_ADDR set, bind there and serve until
    //    killed; otherwise take an ephemeral port and run the script below.
    //    `from_env` honours the rest of the KBQA_* knobs (admin token,
    //    model path, queue depth, cache sizing, streaming — see
    //    docs/OPERATIONS.md).
    let manual_addr = std::env::var("KBQA_SERVE_ADDR").ok();
    let bind = manual_addr.as_deref().unwrap_or("127.0.0.1:0");
    let mut config = ServerConfig::from_env();
    if config.admin_token.is_none() {
        config.admin_token = Some("example-token".to_string());
    }
    if config.bundle_dir.is_none() {
        config.bundle_dir = Some(bundle_dir.clone());
    }
    let admin_enabled = config.admin_token.is_some();
    let handle = serve(service, bind, config).expect("bind server");
    let addr = handle.local_addr();
    println!("listening on http://{addr}");
    if admin_enabled {
        println!("admin surface enabled: POST /admin/reload (X-Admin-Token)");
    }

    if manual_addr.is_some() {
        println!("serving until killed (ctrl-c)…");
        loop {
            std::thread::park();
        }
    }

    // 3. Scripted traffic over real sockets.
    let intent = world.intent_by_name("city_population").expect("intent");
    let cities: Vec<String> = world
        .subjects_of(intent)
        .iter()
        .copied()
        .filter(|&c| !world.gold_values(intent, c).is_empty())
        .take(3)
        .map(|c| world.store.surface(c).to_string())
        .collect();

    println!("\nPOST /answer — one question per request, asked twice:");
    let question = format!("what is the population of {}", cities[0]);
    let body = serde_json::to_string(&QaRequest::new(&question)).expect("serialize request");
    for round in ["cold", "cached"] {
        let (status, response) = http(addr, "POST", "/answer", &body);
        println!("  [{round}] {status} ← {question}\n         → {response}");
    }

    println!("\nPOST /batch — the whole script in one request:");
    let batch: Vec<QaRequest> = cities
        .iter()
        .map(|c| QaRequest::new(format!("what is the population of {c}")))
        .chain(std::iter::once(QaRequest::new("why is the sky blue")))
        .collect();
    let body = serde_json::to_string(&batch).expect("serialize batch");
    let (status, response) = http(addr, "POST", "/batch", &body);
    println!("  {status} → {response}");

    // Streamed twin of the same batch: `?stream=1` switches the response to
    // HTTP/1.1 chunked transfer — answers leave the server as compute lanes
    // finish instead of waiting for the whole batch. This is what
    // `curl --no-buffer 'localhost:PORT/batch?stream=1' -d @batch.json`
    // sees arriving chunk by chunk. De-chunked, the body is byte-identical
    // to the buffered response above.
    println!("\nPOST /batch?stream=1 — same batch over chunked transfer:");
    let (status, streamed, chunks) = http_stream(addr, "/batch?stream=1", &body);
    println!("  {status} ({chunks} chunk(s)) → {streamed}");
    assert_eq!(
        streamed, response,
        "de-chunked stream must be byte-identical to the buffered body"
    );

    // Full-bundle hot reload: with a bundle dir configured, a bare
    // POST /admin/reload remaps store + taxonomy + model under the next
    // epoch while in-flight requests finish on the artifacts they started
    // on. (`?mode=model` would swap just the model file instead.)
    println!("\nPOST /admin/reload — full-bundle hot swap:");
    let (status, reload) = http_with_headers(
        addr,
        "POST",
        "/admin/reload",
        "X-Admin-Token: example-token\r\n",
        "",
    );
    println!("  {status} → {reload}");
    assert_eq!(status, 200, "bundle reload must succeed: {reload}");
    assert!(reload.contains("\"mode\":\"bundle\""), "{reload}");

    // The swapped service answers under the new epoch — streamed too.
    let (status, after, _) = http_stream(addr, "/batch?stream=1", &body);
    assert_eq!(status, 200);
    assert!(
        after.contains("\"model_epoch\":1"),
        "post-reload answers must carry the new epoch: {after}"
    );
    println!("  streamed /batch now serves model_epoch 1");

    println!("\nGET /healthz, /cache/stats, /metrics:");
    for path in ["/healthz", "/cache/stats", "/metrics"] {
        let (status, response) = http(addr, "GET", path, "");
        println!("  {status} {path} → {response}");
    }

    handle.shutdown();
    std::fs::remove_dir_all(&bundle_dir).ok();
    println!("\nserver drained and shut down cleanly");
}

/// One-shot HTTP request on a fresh connection.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    http_with_headers(addr, method, path, "", body)
}

/// One-shot HTTP request with extra headers.
fn http_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &str,
    body: &str,
) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: example\r\nConnection: close\r\n{headers}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// One-shot streaming request: POST, decode the chunked response, return
/// (status, de-chunked body, chunk count).
fn http_stream(addr: SocketAddr, path: &str, body: &str) -> (u16, String, usize) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: example\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head");
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    assert!(
        head.contains("Transfer-Encoding: chunked"),
        "expected a chunked response:\n{head}"
    );
    let mut rest = &raw[head_end + 4..];
    let mut decoded = Vec::new();
    let mut chunks = 0usize;
    loop {
        let nl = rest
            .windows(2)
            .position(|w| w == b"\r\n")
            .expect("chunk size line");
        let size = usize::from_str_radix(
            std::str::from_utf8(&rest[..nl]).expect("utf8 size").trim(),
            16,
        )
        .expect("hex chunk size");
        rest = &rest[nl + 2..];
        if size == 0 {
            break;
        }
        decoded.extend_from_slice(&rest[..size]);
        rest = &rest[size + 2..];
        chunks += 1;
    }
    (
        status,
        String::from_utf8(decoded).expect("utf8 body"),
        chunks,
    )
}
