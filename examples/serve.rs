//! Serve the toy world over HTTP and drive it end-to-end through real
//! sockets: scripted questions against `POST /answer` and `POST /batch`,
//! then the observability routes.
//!
//! ```sh
//! cargo run --release --example serve
//! # or keep the server up for manual curl:
//! KBQA_SERVE_ADDR=127.0.0.1:8080 cargo run --release --example serve
//! curl -s localhost:8080/answer -d '{"question":"what is the population of <city>"}'
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use kbqa::prelude::*;
use kbqa_server::{serve, ServerConfig};

fn main() {
    // 1. Substrate: toy world, corpus, learned model — the same offline
    //    pipeline as the quickstart example.
    println!("generating world and learning the model…");
    let world = World::generate(WorldConfig::tiny(42));
    let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 800));
    let ner = Arc::new(GazetteerNer::from_store(&world.store));
    let learner = Learner::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &world.predicate_classes,
    );
    let pairs: Vec<(&str, &str)> = corpus
        .pairs
        .iter()
        .map(|p| (p.question.as_str(), p.answer.as_str()))
        .collect();
    let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
    let index = PatternIndex::build(corpus.pairs.iter().map(|p| p.question.as_str()), &ner);
    let service = KbqaService::builder(
        Arc::clone(&world.store),
        Arc::clone(&world.conceptualizer),
        Arc::new(model),
    )
    .ner(ner)
    .pattern_index(Arc::new(index))
    .build();

    // 2. The server. With KBQA_SERVE_ADDR set, bind there and serve until
    //    killed; otherwise take an ephemeral port and run the script below.
    //    `from_env` honours the rest of the KBQA_* knobs (admin token,
    //    model path, queue depth, cache sizing — see docs/OPERATIONS.md).
    let manual_addr = std::env::var("KBQA_SERVE_ADDR").ok();
    let bind = manual_addr.as_deref().unwrap_or("127.0.0.1:0");
    let config = ServerConfig::from_env();
    let admin_enabled = config.admin_token.is_some();
    let handle = serve(service, bind, config).expect("bind server");
    let addr = handle.local_addr();
    println!("listening on http://{addr}");
    if admin_enabled {
        println!("admin surface enabled: POST /admin/reload (X-Admin-Token)");
    }

    if manual_addr.is_some() {
        println!("serving until killed (ctrl-c)…");
        loop {
            std::thread::park();
        }
    }

    // 3. Scripted traffic over real sockets.
    let intent = world.intent_by_name("city_population").expect("intent");
    let cities: Vec<String> = world
        .subjects_of(intent)
        .iter()
        .copied()
        .filter(|&c| !world.gold_values(intent, c).is_empty())
        .take(3)
        .map(|c| world.store.surface(c).to_string())
        .collect();

    println!("\nPOST /answer — one question per request, asked twice:");
    let question = format!("what is the population of {}", cities[0]);
    let body = serde_json::to_string(&QaRequest::new(&question)).expect("serialize request");
    for round in ["cold", "cached"] {
        let (status, response) = http(addr, "POST", "/answer", &body);
        println!("  [{round}] {status} ← {question}\n         → {response}");
    }

    println!("\nPOST /batch — the whole script in one request:");
    let batch: Vec<QaRequest> = cities
        .iter()
        .map(|c| QaRequest::new(format!("what is the population of {c}")))
        .chain(std::iter::once(QaRequest::new("why is the sky blue")))
        .collect();
    let body = serde_json::to_string(&batch).expect("serialize batch");
    let (status, response) = http(addr, "POST", "/batch", &body);
    println!("  {status} → {response}");

    println!("\nGET /healthz, /cache/stats, /metrics:");
    for path in ["/healthz", "/cache/stats", "/metrics"] {
        let (status, response) = http(addr, "GET", path, "");
        println!("  {status} {path} → {response}");
    }

    handle.shutdown();
    println!("\nserver drained and shut down cleanly");
}

/// One-shot HTTP request on a fresh connection.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: example\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}
