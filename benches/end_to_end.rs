//! Workspace-level end-to-end benchmarks: the full offline pipeline (the
//! paper's 1438-minute offline run, scaled down) and the online answer path
//! through the facade API.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kbqa::prelude::*;

fn bench_offline_pipeline(c: &mut Criterion) {
    let world = World::generate(WorldConfig::tiny(42));
    let mut group = c.benchmark_group("offline_pipeline");
    group.sample_size(10);
    for &pairs in &[500usize, 2_000] {
        let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, pairs));
        let ner = GazetteerNer::from_store(&world.store);
        let pair_refs: Vec<(&str, &str)> = corpus
            .pairs
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str()))
            .collect();
        group.bench_with_input(BenchmarkId::new("learn", pairs), &pair_refs, |b, refs| {
            let learner = Learner::new(
                &world.store,
                &world.conceptualizer,
                &ner,
                &world.predicate_classes,
            );
            b.iter(|| learner.learn(std::hint::black_box(refs), &LearnerConfig::default()))
        });
    }
    group.finish();
}

fn bench_online_answer(c: &mut Criterion) {
    let world = World::generate(WorldConfig::small(42));
    let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 3_000));
    let ner = GazetteerNer::from_store(&world.store);
    let learner = Learner::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &world.predicate_classes,
    );
    let pairs: Vec<(&str, &str)> = corpus
        .pairs
        .iter()
        .map(|p| (p.question.as_str(), p.answer.as_str()))
        .collect();
    let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
    let index = PatternIndex::build(corpus.pairs.iter().map(|p| p.question.as_str()), &ner);
    let service = KbqaService::builder(
        Arc::clone(&world.store),
        Arc::clone(&world.conceptualizer),
        Arc::new(model),
    )
    .pattern_index(Arc::new(index))
    .build();

    let intent = world.intent_by_name("city_population").unwrap();
    let city = world
        .subjects_of(intent)
        .iter()
        .copied()
        .find(|&c| !world.gold_values(intent, c).is_empty())
        .unwrap();
    let bfq = format!("how many people are there in {}", world.store.surface(city));
    c.bench_function("online_bfq_answer", |b| {
        b.iter(|| service.answer_text(std::hint::black_box(&bfq)))
    });

    if let Some(complex) = benchmark::complex_suite(&world).first() {
        let q = complex.question.clone();
        c.bench_function("online_complex_answer", |b| {
            b.iter(|| service.answer_text(std::hint::black_box(&q)))
        });
    }

    // The batch path: 64 mixed requests through the scoped pool.
    let requests: Vec<QaRequest> = (0..64)
        .map(|i| {
            if i % 2 == 0 {
                QaRequest::new(&bfq)
            } else {
                QaRequest::new("why is the sky blue")
            }
        })
        .collect();
    c.bench_function("online_batch_64", |b| {
        b.iter(|| service.answer_batch(std::hint::black_box(&requests)))
    });
}

criterion_group!(benches, bench_offline_pipeline, bench_online_answer);
criterion_main!(benches);
