//! Minimal, offline-friendly stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! measure-and-print runner: a short warm-up, then a fixed number of timed
//! samples whose mean/min are reported on stdout. No statistics engine, no
//! HTML reports; the point is that `cargo bench` compiles, runs, and prints
//! comparable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, &mut f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare the work per iteration (reported as a rate).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmark a function without input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Finish the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_owned(),
        }
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    pending: usize,
}

impl Bencher {
    /// Time the routine. Runs a warm-up, then the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also sizes iterations so each sample takes ≳1ms.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed();
        let target = Duration::from_millis(1);
        let iters = if once.is_zero() {
            1000
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64
        };
        self.iters_per_sample = iters;
        for _ in 0..self.pending {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 0,
        pending: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label}: no samples (closure never called iter)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => {
                format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64().max(1e-12))
            }
            Throughput::Bytes(n) => {
                format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64().max(1e-12))
            }
        })
        .unwrap_or_default();
    println!(
        "{label}: mean {mean:?}, min {min:?} over {} samples × {} iters{rate}",
        bencher.samples.len(),
        bencher.iters_per_sample,
    );
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
