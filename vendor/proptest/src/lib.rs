//! Minimal, offline-friendly stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] implementations for integer/float ranges, tuples,
//!   string patterns (a regex-lite subset: classes, groups, `{m,n}`, `?`,
//!   and `\PC` for printable chars), [`collection::vec`], and [`any`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! No shrinking: failures report the sampled inputs via the assertion
//! message instead. Sampling is deterministic per test name, so failures
//! reproduce across runs.

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The deterministic generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test name (stable across runs → reproducible failures).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(h)
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// `any::<T>()` — uniform over the whole type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Marker struct returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Sample uniformly over the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}
impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}
impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// String patterns (regex-lite)
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Node {
    Literal(char),
    /// Inclusive char ranges; single chars are degenerate ranges.
    Class(Vec<(char, char)>),
    /// Any printable char (proptest's `\PC`).
    Printable,
    Group(Vec<(Node, (usize, usize))>),
}

fn parse_pattern(pattern: &str) -> Vec<(Node, (usize, usize))> {
    let mut chars: std::iter::Peekable<std::str::Chars<'_>> = pattern.chars().peekable();
    parse_sequence(&mut chars, None)
}

fn parse_sequence(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    terminator: Option<char>,
) -> Vec<(Node, (usize, usize))> {
    let mut out = Vec::new();
    while let Some(&c) = chars.peek() {
        if Some(c) == terminator {
            chars.next();
            break;
        }
        chars.next();
        let node = match c {
            '[' => {
                let mut entries = Vec::new();
                while let Some(&cc) = chars.peek() {
                    if cc == ']' {
                        chars.next();
                        break;
                    }
                    chars.next();
                    // Range `a-z` (a '-' not followed by ']' is a range).
                    if chars.peek() == Some(&'-') {
                        let mut look = chars.clone();
                        look.next();
                        if look.peek().is_some() && look.peek() != Some(&']') {
                            chars.next(); // consume '-'
                            let hi = chars.next().expect("range end");
                            entries.push((cc, hi));
                            continue;
                        }
                    }
                    entries.push((cc, cc));
                }
                Node::Class(entries)
            }
            '(' => Node::Group(parse_sequence(chars, Some(')'))),
            '\\' => match chars.next() {
                Some('P') => {
                    // `\PC`: any char not in Unicode category C (printable).
                    let tag = chars.next();
                    assert_eq!(tag, Some('C'), "only \\PC is supported");
                    Node::Printable
                }
                Some(escaped) => Node::Literal(escaped),
                None => panic!("dangling escape in pattern"),
            },
            '.' => Node::Printable,
            other => Node::Literal(other),
        };
        let quant = parse_quantifier(chars);
        out.push((node, quant));
    }
    out
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut min = String::new();
            let mut max = String::new();
            let mut in_max = false;
            for c in chars.by_ref() {
                match c {
                    '}' => break,
                    ',' => in_max = true,
                    d => {
                        if in_max {
                            max.push(d);
                        } else {
                            min.push(d);
                        }
                    }
                }
            }
            let lo: usize = min.parse().expect("quantifier min");
            let hi: usize = if in_max {
                max.parse().expect("quantifier max")
            } else {
                lo
            };
            (lo, hi)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        _ => (1, 1),
    }
}

/// Mostly-ASCII printable sampling with occasional multi-byte characters, so
/// `\PC` inputs exercise UTF-8 handling.
const UNICODE_POOL: &[char] = &[
    'é', 'Ω', 'λ', 'π', 'ß', 'ç', '→', '€', '日', '本', '界', '你', '好', '😀', '📚',
];

fn sample_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(entries) => {
            if entries.is_empty() {
                return;
            }
            let (lo, hi) = entries[rng.below(entries.len() as u64) as usize];
            let span = (hi as u32) - (lo as u32) + 1;
            let c = char::from_u32(lo as u32 + rng.below(u64::from(span)) as u32).unwrap_or(lo);
            out.push(c);
        }
        Node::Printable => {
            if rng.below(5) == 0 {
                out.push(UNICODE_POOL[rng.below(UNICODE_POOL.len() as u64) as usize]);
            } else {
                // ASCII 0x20..=0x7e.
                let c = (0x20 + rng.below(0x5f)) as u8 as char;
                out.push(c);
            }
        }
        Node::Group(seq) => sample_sequence(seq, rng, out),
    }
}

fn sample_sequence(seq: &[(Node, (usize, usize))], rng: &mut TestRng, out: &mut String) {
    for (node, (lo, hi)) in seq {
        let reps = *lo as u64 + rng.below((*hi - *lo + 1) as u64);
        for _ in 0..reps {
            sample_node(node, rng, out);
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let seq = parse_pattern(self);
        let mut out = String::new();
        sample_sequence(&seq, rng, &mut out);
        out
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification: a fixed size or a range.
    pub trait IntoSize {
        /// Sample a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSize for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSize for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end);
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoSize for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            *self.start() + rng.below((*self.end() - *self.start() + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy, L: IntoSize>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSize> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The names tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Assert inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each function runs its body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)*
                // Bodies may `return Ok(())` to skip a case, as in real
                // proptest; run them in a Result-returning closure.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), ()> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                let _ = __outcome;
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::from_name("shape");
        for _ in 0..200 {
            let s = "[a-z]{1,8}".sample(&mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let name = "[A-Za-z]{2,10}( [A-Za-z]{2,10})?".sample(&mut rng);
            assert!(name.chars().count() >= 2);

            let free = "\\PC{0,40}".sample(&mut rng);
            assert!(free.chars().count() <= 40);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u8..9, y in -4i64..4, f in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..4).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths(v in collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for item in v {
                prop_assert!(item < 5);
            }
        }

        #[test]
        fn tuples_and_any(t in (0u8..4, 0u8..4), b in any::<bool>()) {
            prop_assert!(t.0 < 4 && t.1 < 4);
            let _ = b;
        }
    }
}
