//! Minimal, offline-friendly stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! small serialization framework exposing the subset of serde's surface the
//! codebase uses: the `Serialize`/`Deserialize` traits, the derive macros
//! (re-exported from `serde_derive`), `#[serde(skip)]` and
//! `#[serde(transparent)]`, and `serde::de::DeserializeOwned`.
//!
//! Instead of serde's visitor-based zero-copy data model, values round-trip
//! through an owned [`Value`] tree which `serde_json` then renders as JSON.
//! That is slower than real serde but simple, dependency-free, and exact:
//! floats are emitted with shortest round-trippable formatting and integers
//! are carried as `i128`, so persisted models restore bit-for-bit.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// The self-describing value tree every type serializes into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Booleans.
    Bool(bool),
    /// All integers (wide enough for `u64` fingerprints and `u128` millis).
    Int(i128),
    /// Floating point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Sequences.
    Seq(Vec<Value>),
    /// String-keyed maps (struct fields, enum tags); order-preserving.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization: convert into the [`Value`] tree.
pub trait Serialize {
    /// Render `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Serialization half of the API, mirroring `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

/// Deserialization half of the API, mirroring `serde::de`.
pub mod de {
    pub use crate::{Deserialize as DeserializeTrait, Value};

    /// Deserialization error.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl Error {
        /// A type-mismatch error.
        pub fn expected(what: &str, got: &Value) -> Self {
            Error(format!("expected {what}, found {}", got.kind()))
        }

        /// A missing-field error.
        pub fn missing(field: &str) -> Self {
            Error(format!("missing field `{field}`"))
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Deserialization: reconstruct from a [`Value`] tree.
    pub trait Deserialize: Sized {
        /// Rebuild `Self` from a value tree.
        fn from_value(v: &Value) -> Result<Self, Error>;
    }

    /// Owned deserialization (our values are always owned).
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}

    /// Look up and deserialize a struct field (derive-macro helper).
    pub fn field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, Error> {
        match map.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v),
            None => Err(Error::missing(name)),
        }
    }

    /// Like [`field`], but `#[serde(default)]`: an absent key yields
    /// `Default::default()` instead of an error.
    pub fn field_or_default<T: Deserialize + Default>(
        map: &[(String, Value)],
        name: &str,
    ) -> Result<T, Error> {
        match map.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v),
            None => Ok(T::default()),
        }
    }
}

pub use de::{Deserialize, DeserializeOwned};

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl de::Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| de::Error(format!("integer {i} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(de::Error::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Int(*self as i128)
    }
}
impl de::Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Int(i) => {
                u128::try_from(*i).map_err(|_| de::Error(format!("integer {i} out of range")))
            }
            other => Err(de::Error::expected("integer", other)),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}
impl de::Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Int(i) => Ok(*i),
            other => Err(de::Error::expected("integer", other)),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl de::Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(de::Error::expected("float", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl de::Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl de::Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(de::Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl de::Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(de::Error::expected("single-char string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: de::Deserialize> de::Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: de::Deserialize> de::Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        v.as_seq()
            .ok_or_else(|| de::Error::expected("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: de::Deserialize> de::Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Box<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl de::Deserialize for Box<str> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        String::from_value(v).map(String::into_boxed_str)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: de::Deserialize> de::Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        T::from_value(v).map(Arc::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: de::Deserialize),+> de::Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, de::Error> {
                let seq = v.as_seq().ok_or_else(|| de::Error::expected("tuple", v))?;
                let mut it = seq.iter();
                Ok(($(
                    $name::from_value(
                        it.next().ok_or_else(|| de::Error("tuple too short".into()))?,
                    )?,
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

// Maps and sets serialize as sequences of entries: keys in this workspace
// are often numeric or structured, which JSON objects cannot carry.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}
impl<K, V, S> de::Deserialize for HashMap<K, V, S>
where
    K: de::Deserialize + Eq + Hash,
    V: de::Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| de::Error::expected("map entries", v))?;
        let mut out = HashMap::with_capacity_and_hasher(seq.len(), S::default());
        for entry in seq {
            let pair = entry
                .as_seq()
                .filter(|s| s.len() == 2)
                .ok_or_else(|| de::Error::expected("[key, value] entry", entry))?;
            out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(out)
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}
impl<K: de::Deserialize + Ord, V: de::Deserialize> de::Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| de::Error::expected("map entries", v))?;
        let mut out = BTreeMap::new();
        for entry in seq {
            let pair = entry
                .as_seq()
                .filter(|s| s.len() == 2)
                .ok_or_else(|| de::Error::expected("[key, value] entry", entry))?;
            out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(out)
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T, S> de::Deserialize for HashSet<T, S>
where
    T: de::Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| de::Error::expected("sequence", v))?;
        let mut out = HashSet::with_capacity_and_hasher(seq.len(), S::default());
        for item in seq {
            out.insert(T::from_value(item)?);
        }
        Ok(out)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: de::Deserialize + Ord> de::Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| de::Error::expected("sequence", v))?;
        seq.iter().map(T::from_value).collect()
    }
}

// AtomicU64 appears in store telemetry; serialize by observed value so the
// field works even when not `#[serde(skip)]`ed.
impl Serialize for AtomicU64 {
    fn to_value(&self) -> Value {
        Value::Int(self.load(std::sync::atomic::Ordering::Relaxed) as i128)
    }
}
impl de::Deserialize for AtomicU64 {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        u64::from_value(v).map(AtomicU64::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl de::Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}
