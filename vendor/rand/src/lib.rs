//! Minimal, offline-friendly stand-in for the `rand` crate.
//!
//! Exposes the subset of the `rand` 0.8 API this workspace uses: the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`RngCore`],
//! [`SeedableRng`], and [`seq::SliceRandom::shuffle`]. The sampling
//! algorithms are simple (modulo reduction for integers, 53-bit mantissa
//! scaling for floats): statistically adequate for synthetic-world
//! generation, and — the property the workspace actually depends on —
//! perfectly deterministic for a given generator stream.

/// Core generator interface: a source of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform f64 in `[0, 1)` from 53 mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Sample a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Sample uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128) - (self.start as i128);
                let offset = (rng.next_u64() as i128) % span;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128) - (start as i128) + 1;
                let offset = (rng.next_u64() as i128) % span;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

/// The user-facing extension trait.
pub trait Rng: RngCore {
    /// Sample a value of an inferable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<Range: SampleRange>(&mut self, range: Range) -> Range::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Counter(42);
        for _ in 0..1000 {
            let v = r.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let v = r.gen_range(2..=4usize);
            assert!((2..=4).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(7);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<usize> = (0..50).collect();
        let mut r = Counter(9);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
