//! Derive macros for the vendored `serde` stand-in.
//!
//! Parses the item's token stream directly (no `syn`/`quote` in the offline
//! build environment) and emits `Serialize`/`Deserialize` impls against the
//! value-tree data model. Supported shapes — the ones this workspace uses:
//!
//! * named-field structs, with `#[serde(skip)]` fields restored via
//!   `Default::default()`;
//! * tuple structs (single-field ones are transparent, matching
//!   `#[serde(transparent)]`);
//! * unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Generic type parameters are intentionally unsupported: no serialized type
//! in the workspace is generic, and rejecting them keeps the parser honest.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field: name (named structs/variants only) and its skip flag.
struct Field {
    name: Option<String>,
    skip: bool,
    /// `#[serde(default)]`: restore via `Default::default()` when the field
    /// is absent from the input (wire-compat for added fields).
    default: bool,
}

enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Outer attribute: consume the bracket group.
                tokens.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility, possibly `pub(crate)`.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut tokens);
                reject_generics(&mut tokens, &name);
                let shape = match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Shape::Named(parse_fields(g.stream(), true))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Shape::Tuple(parse_fields(g.stream(), false))
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                    other => panic!("unexpected token after struct {name}: {other:?}"),
                };
                return Item::Struct { name, shape };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut tokens);
                reject_generics(&mut tokens, &name);
                let Some(TokenTree::Group(g)) = tokens.next() else {
                    panic!("expected enum body for {name}");
                };
                return Item::Enum {
                    name,
                    variants: parse_variants(g.stream()),
                };
            }
            Some(_) => {}
            None => panic!("no struct or enum found in derive input"),
        }
    }
}

fn expect_ident(tokens: &mut impl Iterator<Item = TokenTree>) -> String {
    match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn reject_generics(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>, name: &str) {
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde derive (vendored) does not support generics on `{name}`");
        }
    }
}

/// Parse a comma-separated field list. `named` selects `name: Type` parsing;
/// tuple fields are `vis Type`.
fn parse_fields(stream: TokenStream, named: bool) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            break;
        }
        let (skip, default) = consume_attrs(&mut tokens);
        if tokens.peek().is_none() {
            break; // trailing attributes only (shouldn't happen)
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.peek() {
            if id.to_string() == "pub" {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
        }
        let name = if named {
            let n = expect_ident(&mut tokens);
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                other => panic!("expected `:` after field {n}, found {other:?}"),
            }
            Some(n)
        } else {
            None
        };
        skip_type_until_comma(&mut tokens);
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

/// Consume `#[...]` attributes; return whether `#[serde(skip)]` and/or
/// `#[serde(default)]` were present.
fn consume_attrs(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) -> (bool, bool) {
    let mut skip = false;
    let mut default = false;
    while let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() != '#' {
            break;
        }
        tokens.next();
        if let Some(TokenTree::Group(g)) = tokens.next() {
            let mut inner = g.stream().into_iter();
            if let Some(TokenTree::Ident(id)) = inner.next() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        let text = args.stream().to_string();
                        if text.contains("skip") {
                            skip = true;
                        }
                        if text.contains("default") {
                            default = true;
                        }
                    }
                }
            }
        }
    }
    (skip, default)
}

/// Consume type tokens up to (and including) the next top-level comma,
/// tracking `<`/`>` depth so generic arguments don't split early.
fn skip_type_until_comma(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    for tt in tokens.by_ref() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            break;
        }
        let _ = consume_attrs(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut tokens);
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream(), true);
                tokens.next();
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_fields(g.stream(), false);
                tokens.next();
                Shape::Tuple(fields)
            }
            _ => Shape::Unit,
        };
        // Consume the separating comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            } else if p.as_char() == '=' {
                panic!("discriminant values are not supported (variant {name})");
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_owned(),
                Shape::Tuple(fields) if fields.len() == 1 => {
                    "::serde::Serialize::to_value(&self.0)".to_owned()
                }
                Shape::Tuple(fields) => {
                    let items: Vec<String> = (0..fields.len())
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => named_ser(fields, "self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Shape::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let inner = if fields.len() == 1 {
                            "::serde::Serialize::to_value(__f0)".to_owned()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let names: Vec<&str> =
                            fields.iter().map(|f| f.name.as_deref().unwrap()).collect();
                        let entries: Vec<String> = names
                            .iter()
                            .map(|n| {
                                format!("(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{entries}]))]),\n",
                            binds = names.join(", "),
                            entries = entries.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn named_ser(fields: &[Field], access: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            let n = f.name.as_deref().unwrap();
            format!("(\"{n}\".to_string(), ::serde::Serialize::to_value(&{access}{n}))")
        })
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, shape } => match shape {
            Shape::Unit => format!("::core::result::Result::Ok({name})"),
            Shape::Tuple(fields) if fields.len() == 1 => format!(
                "::core::result::Result::Ok({name}(::serde::de::Deserialize::from_value(__v)?))"
            ),
            Shape::Tuple(fields) => {
                let n = fields.len();
                let items: Vec<String> = (0..n)
                    .map(|i| format!("::serde::de::Deserialize::from_value(&__s[{i}])?"))
                    .collect();
                format!(
                    "let __s = __v.as_seq().ok_or_else(|| ::serde::de::Error::expected(\"sequence\", __v))?;\n\
                     if __s.len() != {n} {{ return ::core::result::Result::Err(::serde::de::Error(format!(\"expected {n} elements, found {{}}\", __s.len()))); }}\n\
                     ::core::result::Result::Ok({name}({items}))",
                    items = items.join(", ")
                )
            }
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        let n = f.name.as_deref().unwrap();
                        if f.skip {
                            format!("{n}: ::core::default::Default::default()")
                        } else if f.default {
                            format!("{n}: ::serde::de::field_or_default(__m, \"{n}\")?")
                        } else {
                            format!("{n}: ::serde::de::field(__m, \"{n}\")?")
                        }
                    })
                    .collect();
                format!(
                    "let __m = __v.as_map().ok_or_else(|| ::serde::de::Error::expected(\"map\", __v))?;\n\
                     ::core::result::Result::Ok({name} {{ {inits} }})",
                    inits = inits.join(", ")
                )
            }
        },
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Shape::Tuple(fields) if fields.len() == 1 => data_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(::serde::de::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Shape::Tuple(fields) => {
                        let n = fields.len();
                        let items: Vec<String> = (0..n)
                            .map(|i| format!("::serde::de::Deserialize::from_value(&__s[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __s = __inner.as_seq().ok_or_else(|| ::serde::de::Error::expected(\"sequence\", __inner))?;\n\
                                 if __s.len() != {n} {{ return ::core::result::Result::Err(::serde::de::Error(format!(\"expected {n} elements for {vn}, found {{}}\", __s.len()))); }}\n\
                                 ::core::result::Result::Ok({name}::{vn}({items}))\n\
                             }}\n",
                            items = items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let n = f.name.as_deref().unwrap();
                                if f.skip {
                                    format!("{n}: ::core::default::Default::default()")
                                } else if f.default {
                                    format!("{n}: ::serde::de::field_or_default(__mm, \"{n}\")?")
                                } else {
                                    format!("{n}: ::serde::de::field(__mm, \"{n}\")?")
                                }
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __mm = __inner.as_map().ok_or_else(|| ::serde::de::Error::expected(\"map\", __inner))?;\n\
                                 ::core::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                             }}\n",
                            inits = inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::core::result::Result::Err(::serde::de::Error(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __inner) = &__m[0];\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\
                             __other => ::core::result::Result::Err(::serde::de::Error(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::core::result::Result::Err(::serde::de::Error::expected(\"enum\", __other)),\n\
                 }}"
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::de::Deserialize for {name} {{\n\
             #[allow(unused_variables)]\n\
             fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::de::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
