//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream generator
//! behind the `ChaCha8Rng` name, seeded via `SeedableRng::seed_from_u64`
//! (SplitMix64 key expansion). The workspace pins ChaCha8 for bit-stable
//! reproducibility across releases; this vendored copy is the stability
//! boundary now, so its output must never change.

use rand::RngCore;

/// Re-exports mirroring the `rand_core` facade `rand_chacha` exposes.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

/// ChaCha with 8 rounds, counter-mode keystream, 64-bit output chunks.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key + constants + counter state (the 16-word ChaCha state).
    state: [u32; 16],
    /// Current 64-byte block, as 8 u64 outputs.
    block: [u64; 8],
    /// Next unread index into `block`; 8 means "generate a new block".
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(self.state.iter()) {
            *w = w.wrapping_add(*s);
        }
        for i in 0..8 {
            self.block[i] = u64::from(working[2 * i]) | (u64::from(working[2 * i + 1]) << 32);
        }
        // 64-bit block counter in words 12..14.
        let counter =
            (u64::from(self.state[12]) | (u64::from(self.state[13]) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl rand::SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 key expansion, as `rand_core`'s default does.
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&key);
        // Counter and nonce start at zero.
        Self {
            state,
            block: [0; 8],
            cursor: 8,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.cursor >= 8 {
            self.refill();
        }
        let v = self.block[self.cursor];
        self.cursor += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn keystream_crosses_blocks() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u64> = (0..20).map(|_| a.next_u64()).collect();
        let distinct: std::collections::BTreeSet<_> = first.iter().collect();
        assert!(distinct.len() > 16, "keystream repeats suspiciously");
    }
}
