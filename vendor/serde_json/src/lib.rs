//! Minimal JSON front-end for the vendored `serde` value model.
//!
//! Covers what the workspace calls: `to_string`, `to_string_pretty`,
//! `to_writer`, `from_str`, `from_reader`. Maps and sets serialize as entry
//! sequences (see the `serde` stand-in), so everything emitted here is plain
//! JSON arrays/objects/scalars. Floats print via `{:?}` (shortest
//! round-trippable form) so persisted θ values restore exactly.

use std::io::{Read, Write};

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(format!("io: {e}"))
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Deserialize from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let value = Parser::new(s).parse()?;
    Ok(T::from_value(&value)?)
}

/// Deserialize from a reader.
pub fn from_reader<R: Read, T: DeserializeOwned>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null"); // JSON has no NaN/Infinity
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Value> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error(format!("trailing data at byte {}", self.pos)));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected input at byte {}: {other:?}",
                self.pos
            ))),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf8 in number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad float `{text}`: {e}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| Error(format!("bad integer `{text}`: {e}")))
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs: JSON escapes astral chars as
                            // two \u escapes; we only emit BMP escapes for
                            // control characters, but accept pairs on input.
                            if (0xD800..0xDC00).contains(&code) {
                                let rest = self.bytes.get(self.pos + 5..self.pos + 11);
                                let pair = rest
                                    .filter(|r| r.starts_with(b"\\u"))
                                    .and_then(|r| std::str::from_utf8(&r[2..6]).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok());
                                if let Some(low) = pair {
                                    let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| Error("bad surrogate".into()))?,
                                    );
                                    self.pos += 10;
                                } else {
                                    return Err(Error("lone surrogate".into()));
                                }
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error("bad \\u escape".into()))?,
                                );
                                self.pos += 4;
                            }
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the whole unescaped run in one step. `"` and `\`
                    // are ASCII, so a byte scan can never split a UTF-8
                    // sequence; validating per-char over the remaining
                    // buffer would make parsing quadratic in input size.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid utf8 in string".into()))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        let f = 0.123_456_789_012_345_68_f64;
        let s = to_string(&f).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), f);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{1}f→日本😀".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(String, f64)> = vec![("a".into(), 1.5), ("b".into(), -2.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(String, f64)>>(&json).unwrap(), v);
        let o: Option<u64> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn big_u64_keys_survive() {
        use std::collections::HashMap;
        let mut m: HashMap<u64, u32> = HashMap::new();
        m.insert(u64::MAX - 3, 7);
        let json = to_string(&m).unwrap();
        assert_eq!(from_str::<HashMap<u64, u32>>(&json).unwrap(), m);
    }
}
