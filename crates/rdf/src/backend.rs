//! Storage backends behind [`crate::TripleStore`].
//!
//! The store's query surface is backend-polymorphic: every lookup is
//! answered from a [`DictRef`] (dictionary), a [`ColsView`] (columnar triple
//! runs) and a name index, and [`StoreBackend`] is exactly that contract.
//! Two implementations exist:
//!
//! * [`InMemoryBackend`] — owns a [`Dictionary`] plus [`ColumnarTriples`]
//!   built by [`crate::GraphBuilder`]; name lookups go through a hash map.
//!   This is the build/mutation-adjacent form.
//! * [`MappedBackend`] — wraps an open [`Snapshot`]; every structure,
//!   including the name index, is a binary search over `mmap`ed sections.
//!   Loading one is O(validation), not O(store), which is what makes warm
//!   start and `/admin/reload` "map the file, flip the epoch".
//!
//! `KbqaService`, `QaEngine` and the equivalence suite run unchanged against
//! either; `rdf/tests/backend_equivalence.rs` pins them answer-identical.

use kbqa_common::hash::FxHashMap;

use crate::columnar::{ColsView, ColumnarTriples};
use crate::dictionary::{DictRef, Dictionary};
use crate::snapshot::Snapshot;
use crate::triple::{NodeId, PredicateId, Triple};

/// Which storage backend a store runs on. Surfaced in `/healthz` as
/// `in_memory` / `mapped`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackendKind {
    /// Heap-owned dictionary + columns (built or deserialized).
    InMemory,
    /// Read-only `mmap` of a snapshot file.
    Mapped,
}

impl BackendKind {
    /// Stable lowercase label for telemetry payloads.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::InMemory => "in_memory",
            Self::Mapped => "mapped",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The read contract a [`crate::TripleStore`] requires of its storage.
///
/// Everything is a borrow: backends hand out views (`DictRef`, `ColsView`,
/// slices) and the store composes queries on top, so the query code is
/// written once and runs against either representation.
pub trait StoreBackend: Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// The dictionary view.
    fn dict(&self) -> DictRef<'_>;

    /// The columnar triple view.
    fn cols(&self) -> ColsView<'_>;

    /// The configured name predicates.
    fn name_predicates(&self) -> &[PredicateId];

    /// Nodes bearing the surface name `lower`, which the caller has already
    /// lowercased. Zero-copy on both backends.
    fn entities_named_lower(&self, lower: &str) -> &[NodeId];

    /// Iterate every `(lowercased name, nodes)` pair in the name index.
    /// Order is backend-defined (hash order vs sorted); gazetteer builders
    /// must not depend on it.
    fn name_entries<'a>(&'a self) -> Box<dyn Iterator<Item = (&'a str, &'a [NodeId])> + 'a>;
}

/// Heap-owned backend: dictionary, columnar triples and a hash-map name
/// index.
#[derive(Debug, Default)]
pub struct InMemoryBackend {
    pub(crate) dict: Dictionary,
    pub(crate) cols: ColumnarTriples,
    pub(crate) name_predicates: Vec<PredicateId>,
    /// Lowercased surface name → resource nodes bearing it.
    pub(crate) name_index: FxHashMap<String, Vec<NodeId>>,
}

impl InMemoryBackend {
    /// Build from interned triples: dedup + arrange columns, then derive the
    /// name index from the name-predicate runs.
    pub(crate) fn build(
        dict: Dictionary,
        triples: Vec<Triple>,
        name_predicates: Vec<PredicateId>,
    ) -> Self {
        let cols = ColumnarTriples::build(dict.predicate_count(), triples);
        let mut backend = Self {
            dict,
            cols,
            name_predicates,
            name_index: FxHashMap::default(),
        };
        backend.rebuild_name_index();
        backend
    }

    pub(crate) fn rebuild_name_index(&mut self) {
        let mut index: FxHashMap<String, Vec<NodeId>> = FxHashMap::default();
        let view = self.cols.view();
        for &p in &self.name_predicates {
            let (subjects, objects) = view.so_run(p);
            for (&s, &o) in subjects.iter().zip(objects) {
                if let Some(name) = self.dict.render_str(NodeId::new(o)) {
                    let nodes = index.entry(name.to_lowercase()).or_default();
                    let subject = NodeId::new(s);
                    if !nodes.contains(&subject) {
                        nodes.push(subject);
                    }
                }
            }
        }
        self.name_index = index;
    }
}

impl StoreBackend for InMemoryBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::InMemory
    }

    fn dict(&self) -> DictRef<'_> {
        DictRef::Owned(&self.dict)
    }

    fn cols(&self) -> ColsView<'_> {
        self.cols.view()
    }

    fn name_predicates(&self) -> &[PredicateId] {
        &self.name_predicates
    }

    fn entities_named_lower(&self, lower: &str) -> &[NodeId] {
        self.name_index.get(lower).map(Vec::as_slice).unwrap_or(&[])
    }

    fn name_entries<'a>(&'a self) -> Box<dyn Iterator<Item = (&'a str, &'a [NodeId])> + 'a> {
        Box::new(
            self.name_index
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_slice())),
        )
    }
}

/// Snapshot-mapped backend: every accessor is a view into the mapping.
#[derive(Debug)]
pub struct MappedBackend {
    snap: Snapshot,
}

impl MappedBackend {
    /// Wrap an already-validated snapshot.
    pub fn new(snap: Snapshot) -> Self {
        Self { snap }
    }

    /// The underlying snapshot (for re-serialization and telemetry).
    pub fn snapshot(&self) -> &Snapshot {
        &self.snap
    }
}

impl StoreBackend for MappedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Mapped
    }

    fn dict(&self) -> DictRef<'_> {
        DictRef::Mapped(self.snap.dict())
    }

    fn cols(&self) -> ColsView<'_> {
        self.snap.cols()
    }

    fn name_predicates(&self) -> &[PredicateId] {
        self.snap.name_predicates()
    }

    fn entities_named_lower(&self, lower: &str) -> &[NodeId] {
        self.snap.entities_named(lower)
    }

    fn name_entries<'a>(&'a self) -> Box<dyn Iterator<Item = (&'a str, &'a [NodeId])> + 'a> {
        Box::new((0..self.snap.name_entry_count()).map(move |i| self.snap.name_entry(i)))
    }
}
