//! Expanded predicates (multi-edge paths).
//!
//! Paper Definition 1: an expanded predicate `p⁺ = (p₁, …, p_k)` connects
//! subject `s` to object `o` when a chain `s →p₁ s₂ →p₂ … →p_k o` exists in
//! the KB. Over 98% of the paper's question intents map to such paths rather
//! than single edges (e.g. *spouse of* = `marriage → person → name`), so
//! this type shows up throughout the learner and the online engine.

use kbqa_common::hash::FxHashSet;
use serde::{Deserialize, Serialize};

use crate::store::TripleStore;
use crate::triple::{NodeId, PredicateId};

/// A predicate path of length ≥ 1. Length-1 paths are ordinary predicates.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ExpandedPredicate {
    edges: Vec<PredicateId>,
}

impl ExpandedPredicate {
    /// A single-edge path.
    pub fn single(p: PredicateId) -> Self {
        Self { edges: vec![p] }
    }

    /// A multi-edge path.
    ///
    /// # Panics
    /// Panics on an empty edge list — a zero-length predicate is meaningless.
    pub fn new(edges: Vec<PredicateId>) -> Self {
        assert!(!edges.is_empty(), "expanded predicate must have ≥ 1 edge");
        Self { edges }
    }

    /// Path length `k`.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Always false (constructors reject empty paths); present for clippy's
    /// `len_without_is_empty`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The edge sequence.
    pub fn edges(&self) -> &[PredicateId] {
        &self.edges
    }

    /// The final edge — relevant because Sec 6.3 only keeps length ≥ 2 paths
    /// that *end with a name-like predicate*.
    pub fn last_edge(&self) -> PredicateId {
        *self.edges.last().expect("non-empty path")
    }

    /// Extend by one edge, producing a new path (used by the BFS frontier).
    pub fn extended(&self, p: PredicateId) -> Self {
        let mut edges = Vec::with_capacity(self.edges.len() + 1);
        edges.extend_from_slice(&self.edges);
        edges.push(p);
        Self { edges }
    }

    /// Render as `p1→p2→p3` using the store's dictionary.
    pub fn render(&self, store: &TripleStore) -> String {
        let names: Vec<&str> = self
            .edges
            .iter()
            .map(|&p| store.dict().predicate_name(p))
            .collect();
        names.join("→")
    }
}

impl From<PredicateId> for ExpandedPredicate {
    fn from(p: PredicateId) -> Self {
        Self::single(p)
    }
}

/// Reusable traversal state for [`objects_via_path_into`]: the BFS frontier
/// vectors and the per-edge dedup set, retained across calls so the online
/// engine's value enumeration performs no heap allocation in the steady
/// state.
#[derive(Clone, Debug, Default)]
pub struct PathWorkspace {
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
    seen: FxHashSet<NodeId>,
}

impl PathWorkspace {
    /// Empty workspace; capacity grows on use and persists.
    pub fn new() -> Self {
        Self::default()
    }
}

/// `V(e, p⁺)` — all objects reachable from `s` along the path, deduplicated.
///
/// This is the online-side computation of Sec 6.1: *"we start the traverse
/// from node a, then go through b, c"*. Breadth-first frontier per edge;
/// cycles are harmless because each frontier is a set.
pub fn objects_via_path(store: &TripleStore, s: NodeId, path: &ExpandedPredicate) -> Vec<NodeId> {
    let mut out = Vec::new();
    objects_via_path_into(store, s, path, &mut PathWorkspace::new(), &mut out);
    out
}

/// [`objects_via_path`] appending into a caller-owned vector: identical
/// values in identical order, reusing `ws` for the traversal. Single-edge
/// paths (the overwhelmingly common case) copy the SPO range directly —
/// stored triples are distinct, so the range is already deduplicated and in
/// the same order the frontier walk would produce.
pub fn objects_via_path_into(
    store: &TripleStore,
    s: NodeId,
    path: &ExpandedPredicate,
    ws: &mut PathWorkspace,
    out: &mut Vec<NodeId>,
) {
    if let [edge] = path.edges() {
        out.extend_from_slice(store.objects_slice(s, *edge));
        return;
    }
    ws.frontier.clear();
    ws.frontier.push(s);
    for &edge in path.edges() {
        ws.next.clear();
        ws.seen.clear();
        for &node in &ws.frontier {
            for o in store.objects(node, edge) {
                if ws.seen.insert(o) {
                    ws.next.push(o);
                }
            }
        }
        std::mem::swap(&mut ws.frontier, &mut ws.next);
        if ws.frontier.is_empty() {
            return;
        }
    }
    out.extend_from_slice(&ws.frontier);
}

/// Count of `V(e, p⁺)` without materializing intermediate surface forms.
pub fn object_count_via_path(store: &TripleStore, s: NodeId, path: &ExpandedPredicate) -> usize {
    objects_via_path(store, s, path).len()
}

/// Does `(s, p⁺, o)` hold (`∈ K` in Definition 1's notation)?
pub fn path_connects(store: &TripleStore, s: NodeId, path: &ExpandedPredicate, o: NodeId) -> bool {
    objects_via_path(store, s, path).contains(&o)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn spouse_kb() -> (TripleStore, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let obama = b.resource("res/obama");
        let marriage = b.resource("res/marriage_1");
        let michelle = b.resource("res/michelle");
        b.name(obama, "Barack Obama");
        b.name(michelle, "Michelle Obama");
        b.link(obama, "marriage", marriage);
        b.link(marriage, "person", michelle);
        b.fact_year(michelle, "dob", 1964);
        let store = b.build();
        (store, obama, michelle)
    }

    fn path(store: &TripleStore, names: &[&str]) -> ExpandedPredicate {
        ExpandedPredicate::new(
            names
                .iter()
                .map(|n| store.dict().find_predicate(n).unwrap())
                .collect(),
        )
    }

    #[test]
    fn marriage_person_name_reaches_spouse_name() {
        let (store, obama, _) = spouse_kb();
        let p = path(&store, &["marriage", "person", "name"]);
        let objects = objects_via_path(&store, obama, &p);
        assert_eq!(objects.len(), 1);
        assert_eq!(store.dict().render(objects[0]), "Michelle Obama");
    }

    #[test]
    fn partial_path_reaches_intermediate() {
        let (store, obama, michelle) = spouse_kb();
        let p = path(&store, &["marriage", "person"]);
        assert_eq!(objects_via_path(&store, obama, &p), vec![michelle]);
    }

    #[test]
    fn dead_end_path_is_empty() {
        let (store, obama, _) = spouse_kb();
        let p = path(&store, &["marriage", "dob"]);
        assert!(objects_via_path(&store, obama, &p).is_empty());
    }

    #[test]
    fn path_connects_checks_membership() {
        let (store, obama, michelle) = spouse_kb();
        let p = path(&store, &["marriage", "person"]);
        assert!(path_connects(&store, obama, &p, michelle));
        assert!(!path_connects(&store, michelle, &p, obama));
    }

    #[test]
    fn single_edge_path_equals_direct_lookup() {
        let (store, obama, _) = spouse_kb();
        let marriage = store.dict().find_predicate("marriage").unwrap();
        let single = ExpandedPredicate::single(marriage);
        let via_path = objects_via_path(&store, obama, &single);
        let direct: Vec<NodeId> = store.objects(obama, marriage).collect();
        assert_eq!(via_path, direct);
        assert_eq!(single.len(), 1);
        assert_eq!(single.last_edge(), marriage);
    }

    #[test]
    fn extended_appends() {
        let (store, _, _) = spouse_kb();
        let marriage = store.dict().find_predicate("marriage").unwrap();
        let person = store.dict().find_predicate("person").unwrap();
        let p = ExpandedPredicate::single(marriage).extended(person);
        assert_eq!(p.edges(), &[marriage, person]);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn render_joins_with_arrows() {
        let (store, _, _) = spouse_kb();
        let p = path(&store, &["marriage", "person", "name"]);
        assert_eq!(p.render(&store), "marriage→person→name");
    }

    #[test]
    fn into_variant_matches_owned_across_reuse() {
        let (store, obama, _) = spouse_kb();
        let mut ws = PathWorkspace::new();
        let mut out = Vec::new();
        for names in [
            vec!["marriage", "person", "name"],
            vec!["marriage", "person"],
            vec!["marriage", "dob"],
            vec!["marriage"],
        ] {
            let p = path(&store, &names);
            let owned = objects_via_path(&store, obama, &p);
            out.clear();
            objects_via_path_into(&store, obama, &p, &mut ws, &mut out);
            assert_eq!(out, owned, "path {names:?}");
        }
    }

    #[test]
    fn diamond_paths_deduplicate() {
        // Two marriage CVTs pointing at the same person must yield one value.
        let mut b = GraphBuilder::new();
        let s = b.resource("s");
        let cvt1 = b.resource("cvt1");
        let cvt2 = b.resource("cvt2");
        let target = b.resource("t");
        b.link(s, "m", cvt1);
        b.link(s, "m", cvt2);
        b.link(cvt1, "p", target);
        b.link(cvt2, "p", target);
        let store = b.build();
        let p = path(&store, &["m", "p"]);
        assert_eq!(objects_via_path(&store, s, &p), vec![target]);
        assert_eq!(object_count_via_path(&store, s, &p), 1);
    }

    #[test]
    #[should_panic(expected = "≥ 1 edge")]
    fn empty_path_rejected() {
        let _ = ExpandedPredicate::new(vec![]);
    }
}
