//! Store statistics for the experiment harness.
//!
//! The paper reports its knowledge bases by entity/triple/predicate/category
//! counts (Sec 7.1); the harness prints the same shape for our generated
//! worlds so EXPERIMENTS.md can record the substrate scale next to each
//! result.

use serde::{Deserialize, Serialize};

use crate::store::TripleStore;
use crate::term::Term;
use crate::triple::PredicateId;

/// Aggregate statistics of a [`TripleStore`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Distinct graph nodes of any kind.
    pub nodes: usize,
    /// Distinct resource (entity/CVT) nodes.
    pub resources: usize,
    /// Distinct literal nodes.
    pub literals: usize,
    /// Stored triples (deduplicated).
    pub triples: usize,
    /// Distinct predicates.
    pub predicates: usize,
    /// Distinct category values (objects of `category` edges).
    pub categories: usize,
    /// Distinct surface names in the name index.
    pub names: usize,
}

impl StoreStats {
    /// Compute statistics for a store.
    pub fn of(store: &TripleStore) -> Self {
        let dict = store.dict();
        let mut resources = 0usize;
        let mut literals = 0usize;
        for node in dict.nodes() {
            match dict.node_term(node) {
                Term::Resource(_) => resources += 1,
                Term::Literal(_) => literals += 1,
            }
        }
        let categories = dict
            .find_predicate(crate::builder::CATEGORY_PREDICATE)
            .map(|cat| {
                let mut values: Vec<_> = store.triples_for_predicate(cat).map(|t| t.o).collect();
                values.sort_unstable();
                values.dedup();
                values.len()
            })
            .unwrap_or(0);
        Self {
            nodes: dict.node_count(),
            resources,
            literals,
            triples: store.len(),
            predicates: dict.predicate_count(),
            categories,
            names: store.name_entries().count(),
        }
    }
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} triples, {} nodes ({} resources, {} literals), {} predicates, {} categories, {} names",
            self.triples, self.nodes, self.resources, self.literals, self.predicates,
            self.categories, self.names
        )
    }
}

/// Per-predicate cardinality and fan-out summary, read directly off the
/// columnar runs (each run is sorted, so distinct counts and maximum group
/// sizes are one linear pass — no hashing).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredicateStats {
    /// Predicate name.
    pub predicate: String,
    /// Triples carrying this predicate.
    pub triples: usize,
    /// Distinct subjects in the predicate's extent.
    pub distinct_subjects: usize,
    /// Distinct objects in the predicate's extent.
    pub distinct_objects: usize,
    /// Largest `|V(s, p)|` over all subjects (out fan-out).
    pub max_out_fanout: usize,
    /// Largest subject count over all objects (in fan-out).
    pub max_in_fanout: usize,
}

/// Compute [`PredicateStats`] for every predicate, in predicate-id order.
pub fn per_predicate(store: &TripleStore) -> Vec<PredicateStats> {
    let cols = store.backend().cols();
    let dict = store.dict();
    (0..cols.predicate_count())
        .map(|i| {
            let p = PredicateId::new(i as u32);
            let (so_s, _) = cols.so_run(p);
            let (os_o, _) = cols.os_run(p);
            let (distinct_subjects, max_out_fanout) = distinct_and_max_run(so_s);
            let (distinct_objects, max_in_fanout) = distinct_and_max_run(os_o);
            PredicateStats {
                predicate: dict.predicate_name(p).to_owned(),
                triples: so_s.len(),
                distinct_subjects,
                distinct_objects,
                max_out_fanout,
                max_in_fanout,
            }
        })
        .collect()
}

/// `(distinct values, longest equal run)` of a sorted column.
fn distinct_and_max_run(sorted: &[u32]) -> (usize, usize) {
    let mut distinct = 0usize;
    let mut max_run = 0usize;
    let mut i = 0usize;
    while i < sorted.len() {
        let run = sorted[i..].partition_point(|&v| v == sorted[i]);
        distinct += 1;
        max_run = max_run.max(run);
        i += run;
    }
    (distinct, max_run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn stats_count_correctly() {
        let mut b = GraphBuilder::new();
        let city = b.resource("res/springfield");
        b.name(city, "Springfield");
        b.fact_int(city, "population", 116_000);
        b.fact_str(city, "category", "City");
        let store = b.build();
        let stats = StoreStats::of(&store);
        assert_eq!(stats.triples, 3);
        assert_eq!(stats.resources, 1);
        // literals: name string, population int, category string.
        assert_eq!(stats.literals, 3);
        assert_eq!(stats.categories, 1);
        assert_eq!(stats.names, 1);
        // name + alias (pre-registered) + population + category.
        assert_eq!(stats.predicates, 4);
        let rendered = stats.to_string();
        assert!(rendered.contains("3 triples"));
    }

    #[test]
    fn empty_store_stats() {
        let store = GraphBuilder::new().build();
        let stats = StoreStats::of(&store);
        assert_eq!(stats.triples, 0);
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.categories, 0);
    }

    #[test]
    fn per_predicate_cardinalities_and_fanout() {
        let mut b = GraphBuilder::new();
        let a = b.resource("a");
        let c = b.resource("c");
        let d = b.resource("d");
        b.link(a, "knows", c);
        b.link(a, "knows", d);
        b.link(c, "knows", d);
        let store = b.build();
        let all = per_predicate(&store);
        let knows = all.iter().find(|s| s.predicate == "knows").unwrap();
        assert_eq!(knows.triples, 3);
        assert_eq!(knows.distinct_subjects, 2); // a, c
        assert_eq!(knows.distinct_objects, 2); // c, d
        assert_eq!(knows.max_out_fanout, 2); // a → {c, d}
        assert_eq!(knows.max_in_fanout, 2); // d ← {a, c}
                                            // Unused predicates report empty extents, not garbage.
        let alias = all.iter().find(|s| s.predicate == "alias").unwrap();
        assert_eq!(alias.triples, 0);
        assert_eq!(alias.max_out_fanout, 0);
    }
}
