//! Store statistics for the experiment harness.
//!
//! The paper reports its knowledge bases by entity/triple/predicate/category
//! counts (Sec 7.1); the harness prints the same shape for our generated
//! worlds so EXPERIMENTS.md can record the substrate scale next to each
//! result.

use serde::{Deserialize, Serialize};

use crate::store::TripleStore;
use crate::term::Term;

/// Aggregate statistics of a [`TripleStore`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Distinct graph nodes of any kind.
    pub nodes: usize,
    /// Distinct resource (entity/CVT) nodes.
    pub resources: usize,
    /// Distinct literal nodes.
    pub literals: usize,
    /// Stored triples (deduplicated).
    pub triples: usize,
    /// Distinct predicates.
    pub predicates: usize,
    /// Distinct category values (objects of `category` edges).
    pub categories: usize,
    /// Distinct surface names in the name index.
    pub names: usize,
}

impl StoreStats {
    /// Compute statistics for a store.
    pub fn of(store: &TripleStore) -> Self {
        let dict = store.dict();
        let mut resources = 0usize;
        let mut literals = 0usize;
        for node in dict.nodes() {
            match dict.node_term(node) {
                Term::Resource(_) => resources += 1,
                Term::Literal(_) => literals += 1,
            }
        }
        let categories = dict
            .find_predicate(crate::builder::CATEGORY_PREDICATE)
            .map(|cat| {
                let mut values: Vec<_> = store
                    .triples_for_predicate(cat)
                    .iter()
                    .map(|t| t.o)
                    .collect();
                values.sort_unstable();
                values.dedup();
                values.len()
            })
            .unwrap_or(0);
        Self {
            nodes: dict.node_count(),
            resources,
            literals,
            triples: store.len(),
            predicates: dict.predicate_count(),
            categories,
            names: store.name_entries().count(),
        }
    }
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} triples, {} nodes ({} resources, {} literals), {} predicates, {} categories, {} names",
            self.triples, self.nodes, self.resources, self.literals, self.predicates,
            self.categories, self.names
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn stats_count_correctly() {
        let mut b = GraphBuilder::new();
        let city = b.resource("res/springfield");
        b.name(city, "Springfield");
        b.fact_int(city, "population", 116_000);
        b.fact_str(city, "category", "City");
        let store = b.build();
        let stats = StoreStats::of(&store);
        assert_eq!(stats.triples, 3);
        assert_eq!(stats.resources, 1);
        // literals: name string, population int, category string.
        assert_eq!(stats.literals, 3);
        assert_eq!(stats.categories, 1);
        assert_eq!(stats.names, 1);
        // name + alias (pre-registered) + population + category.
        assert_eq!(stats.predicates, 4);
        let rendered = stats.to_string();
        assert!(rendered.contains("3 triples"));
    }

    #[test]
    fn empty_store_stats() {
        let store = GraphBuilder::new().build();
        let stats = StoreStats::of(&store);
        assert_eq!(stats.triples, 0);
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.categories, 0);
    }
}
