//! Triple and id types.

use kbqa_common::define_id;
use serde::{Deserialize, Serialize};

define_id!(
    /// A node in the RDF graph: an entity resource, a CVT (compound value
    /// type) resource, or a literal. Dense, assigned by the [`crate::Dictionary`].
    pub struct NodeId
);

define_id!(
    /// A predicate (edge label). Dense, assigned by the [`crate::Dictionary`].
    pub struct PredicateId
);

/// One `(subject, predicate, object)` statement. 12 bytes, `Copy`; the store
/// keeps millions of these in flat sorted arrays.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Triple {
    /// Subject node.
    pub s: NodeId,
    /// Predicate label.
    pub p: PredicateId,
    /// Object node.
    pub o: NodeId,
}

impl Triple {
    /// Construct a triple.
    #[inline]
    pub const fn new(s: NodeId, p: PredicateId, o: NodeId) -> Self {
        Self { s, p, o }
    }

    /// Key for the SPO sort order.
    #[inline]
    pub fn spo_key(&self) -> (NodeId, PredicateId, NodeId) {
        (self.s, self.p, self.o)
    }

    /// Key for the SOP sort order (subject, object, predicate) — used for
    /// "which predicates connect e and v?" lookups in entity–value extraction.
    #[inline]
    pub fn sop_key(&self) -> (NodeId, NodeId, PredicateId) {
        (self.s, self.o, self.p)
    }

    /// Key for the POS sort order.
    #[inline]
    pub fn pos_key(&self) -> (PredicateId, NodeId, NodeId) {
        (self.p, self.o, self.s)
    }

    /// Key for the OPS sort order.
    #[inline]
    pub fn ops_key(&self) -> (NodeId, PredicateId, NodeId) {
        (self.o, self.p, self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_is_small() {
        assert_eq!(std::mem::size_of::<Triple>(), 12);
    }

    #[test]
    fn sort_keys_project_correct_fields() {
        let t = Triple::new(NodeId::new(1), PredicateId::new(2), NodeId::new(3));
        assert_eq!(
            t.spo_key(),
            (NodeId::new(1), PredicateId::new(2), NodeId::new(3))
        );
        assert_eq!(
            t.sop_key(),
            (NodeId::new(1), NodeId::new(3), PredicateId::new(2))
        );
        assert_eq!(
            t.pos_key(),
            (PredicateId::new(2), NodeId::new(3), NodeId::new(1))
        );
        assert_eq!(
            t.ops_key(),
            (NodeId::new(3), PredicateId::new(2), NodeId::new(1))
        );
    }
}
