//! Basic graph pattern (BGP) queries.
//!
//! The paper evaluates structured queries over Trinity.RDF; once KBQA picks
//! a predicate, *"the answer can be trivially found from the RDF knowledge
//! base"* (Sec 7.3.1). This module supplies that query surface: conjunctive
//! triple patterns with named variables, evaluated by iterative binding
//! extension (index-backed, most-selective-first ordering).
//!
//! ```
//! use kbqa_rdf::{GraphBuilder, query::{Pattern, PatternTerm, evaluate}};
//! let mut b = GraphBuilder::new();
//! let obama = b.resource("obama");
//! let honolulu = b.resource("honolulu");
//! b.link(obama, "pob", honolulu);
//! b.fact_int(honolulu, "population", 390000);
//! let store = b.build();
//!
//! // SELECT ?pop WHERE { obama pob ?city . ?city population ?pop }
//! let pob = store.dict().find_predicate("pob").unwrap();
//! let population = store.dict().find_predicate("population").unwrap();
//! let rows = evaluate(&store, &[
//!     Pattern::new(PatternTerm::Node(obama), pob, PatternTerm::Var("city")),
//!     Pattern::new(PatternTerm::Var("city"), population, PatternTerm::Var("pop")),
//! ]);
//! assert_eq!(rows.len(), 1);
//! let pop = rows[0].get("pop").unwrap();
//! assert_eq!(store.dict().render(pop), "390000");
//! ```

use kbqa_common::hash::FxHashMap;

use crate::store::TripleStore;
use crate::triple::{NodeId, PredicateId};

/// A subject/object position in a pattern: a constant node or a variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PatternTerm<'a> {
    /// A bound constant.
    Node(NodeId),
    /// A named variable.
    Var(&'a str),
}

/// One triple pattern; the predicate must be constant (KBQA's queries always
/// know the predicate — it is what the model infers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pattern<'a> {
    /// Subject position.
    pub s: PatternTerm<'a>,
    /// Predicate (constant).
    pub p: PredicateId,
    /// Object position.
    pub o: PatternTerm<'a>,
}

impl<'a> Pattern<'a> {
    /// Construct a pattern.
    pub fn new(s: PatternTerm<'a>, p: PredicateId, o: PatternTerm<'a>) -> Self {
        Self { s, p, o }
    }
}

/// A row of variable bindings.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bindings<'a> {
    map: FxHashMap<&'a str, NodeId>,
}

impl<'a> Bindings<'a> {
    /// Value bound to a variable.
    pub fn get(&self, var: &str) -> Option<NodeId> {
        self.map.get(var).copied()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate `(variable, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&'a str, NodeId)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }
}

/// Resolve a pattern term under current bindings.
fn resolve<'a>(term: PatternTerm<'a>, bindings: &Bindings<'a>) -> PatternTerm<'a> {
    match term {
        PatternTerm::Var(v) => bindings.get(v).map(PatternTerm::Node).unwrap_or(term),
        node => node,
    }
}

/// Rough selectivity of a pattern under current bindings (lower = earlier).
fn selectivity(store: &TripleStore, pattern: &Pattern<'_>, bindings: &Bindings<'_>) -> usize {
    match (resolve(pattern.s, bindings), resolve(pattern.o, bindings)) {
        (PatternTerm::Node(s), PatternTerm::Node(_)) => store.object_count(s, pattern.p).min(1),
        (PatternTerm::Node(s), PatternTerm::Var(_)) => store.object_count(s, pattern.p),
        (PatternTerm::Var(_), PatternTerm::Node(o)) => store.subjects(pattern.p, o).count(),
        (PatternTerm::Var(_), PatternTerm::Var(_)) => store.triples_for_predicate(pattern.p).len(),
    }
}

/// Evaluate a conjunction of patterns; returns all variable-binding rows.
///
/// Order-insensitive: patterns are re-ordered greedily by selectivity as
/// bindings accumulate (the textbook index-nested-loop strategy).
pub fn evaluate<'a>(store: &TripleStore, patterns: &[Pattern<'a>]) -> Vec<Bindings<'a>> {
    let mut rows = vec![Bindings::default()];
    let mut remaining: Vec<Pattern<'a>> = patterns.to_vec();
    while !remaining.is_empty() {
        if rows.is_empty() {
            return rows;
        }
        // Pick the most selective pattern under the first row's bindings
        // (all rows bind the same variable set, so any row works).
        let probe = &rows[0];
        let (idx, _) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| selectivity(store, p, probe))
            .expect("non-empty remaining");
        let pattern = remaining.swap_remove(idx);

        let mut next: Vec<Bindings<'a>> = Vec::new();
        for row in &rows {
            extend_row(store, &pattern, row, &mut next);
        }
        rows = next;
    }
    rows
}

/// Extend one binding row with all matches of `pattern`.
fn extend_row<'a>(
    store: &TripleStore,
    pattern: &Pattern<'a>,
    row: &Bindings<'a>,
    out: &mut Vec<Bindings<'a>>,
) {
    let s = resolve(pattern.s, row);
    let o = resolve(pattern.o, row);
    match (s, o) {
        (PatternTerm::Node(s), PatternTerm::Node(o)) => {
            if store.contains(s, pattern.p, o) {
                out.push(row.clone());
            }
        }
        (PatternTerm::Node(s), PatternTerm::Var(var)) => {
            for object in store.objects(s, pattern.p) {
                let mut extended = row.clone();
                extended.map.insert(var, object);
                out.push(extended);
            }
        }
        (PatternTerm::Var(var), PatternTerm::Node(o)) => {
            for subject in store.subjects(pattern.p, o) {
                let mut extended = row.clone();
                extended.map.insert(var, subject);
                out.push(extended);
            }
        }
        (PatternTerm::Var(sv), PatternTerm::Var(ov)) => {
            if sv == ov {
                // ?x p ?x — self loops only.
                for t in store.triples_for_predicate(pattern.p) {
                    if t.s == t.o {
                        let mut extended = row.clone();
                        extended.map.insert(sv, t.s);
                        out.push(extended);
                    }
                }
            } else {
                for t in store.triples_for_predicate(pattern.p) {
                    let mut extended = row.clone();
                    extended.map.insert(sv, t.s);
                    extended.map.insert(ov, t.o);
                    out.push(extended);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn family_store() -> (TripleStore, NodeId, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let obama = b.resource("obama");
        let marriage = b.resource("m1");
        let michelle = b.resource("michelle");
        let honolulu = b.resource("honolulu");
        b.name(obama, "Barack Obama");
        b.name(michelle, "Michelle Obama");
        b.link(obama, "marriage", marriage);
        b.link(marriage, "person", michelle);
        b.link(obama, "pob", honolulu);
        b.fact_int(honolulu, "population", 390_000);
        b.fact_year(michelle, "dob", 1964);
        (b.build(), obama, michelle, honolulu)
    }

    #[test]
    fn single_pattern_object_variable() {
        let (store, obama, _, honolulu) = family_store();
        let pob = store.dict().find_predicate("pob").unwrap();
        let rows = evaluate(
            &store,
            &[Pattern::new(
                PatternTerm::Node(obama),
                pob,
                PatternTerm::Var("where"),
            )],
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("where"), Some(honolulu));
        assert_eq!(rows[0].len(), 1);
    }

    #[test]
    fn chained_join_through_shared_variable() {
        // The paper's spouse-dob chain as a BGP:
        // obama marriage ?m . ?m person ?spouse . ?spouse dob ?year
        let (store, obama, michelle, _) = family_store();
        let p = |n: &str| store.dict().find_predicate(n).unwrap();
        let rows = evaluate(
            &store,
            &[
                Pattern::new(
                    PatternTerm::Node(obama),
                    p("marriage"),
                    PatternTerm::Var("m"),
                ),
                Pattern::new(
                    PatternTerm::Var("m"),
                    p("person"),
                    PatternTerm::Var("spouse"),
                ),
                Pattern::new(
                    PatternTerm::Var("spouse"),
                    p("dob"),
                    PatternTerm::Var("year"),
                ),
            ],
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("spouse"), Some(michelle));
        assert_eq!(store.dict().render(rows[0].get("year").unwrap()), "1964");
    }

    #[test]
    fn subject_variable_reverse_lookup() {
        let (store, obama, _, honolulu) = family_store();
        let pob = store.dict().find_predicate("pob").unwrap();
        let rows = evaluate(
            &store,
            &[Pattern::new(
                PatternTerm::Var("who"),
                pob,
                PatternTerm::Node(honolulu),
            )],
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("who"), Some(obama));
    }

    #[test]
    fn unsatisfiable_conjunction_is_empty() {
        let (store, obama, michelle, _) = family_store();
        let pob = store.dict().find_predicate("pob").unwrap();
        let rows = evaluate(
            &store,
            &[Pattern::new(
                PatternTerm::Node(michelle),
                pob,
                PatternTerm::Node(obama),
            )],
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn both_variables_enumerates_predicate_extent() {
        let (store, ..) = family_store();
        let name = store.dict().find_predicate("name").unwrap();
        let rows = evaluate(
            &store,
            &[Pattern::new(
                PatternTerm::Var("e"),
                name,
                PatternTerm::Var("n"),
            )],
        );
        assert_eq!(rows.len(), 2); // two named entities
        for row in &rows {
            assert!(row.get("e").is_some() && row.get("n").is_some());
        }
    }

    #[test]
    fn pattern_order_does_not_matter() {
        let (store, obama, ..) = family_store();
        let p = |n: &str| store.dict().find_predicate(n).unwrap();
        let forward = [
            Pattern::new(
                PatternTerm::Node(obama),
                p("marriage"),
                PatternTerm::Var("m"),
            ),
            Pattern::new(PatternTerm::Var("m"), p("person"), PatternTerm::Var("s")),
        ];
        let backward = [forward[1], forward[0]];
        let a = evaluate(&store, &forward);
        let b = evaluate(&store, &backward);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].get("s"), b[0].get("s"));
    }

    #[test]
    fn empty_pattern_list_yields_one_empty_row() {
        let (store, ..) = family_store();
        let rows = evaluate(&store, &[]);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].is_empty());
    }

    #[test]
    fn repeated_variable_requires_self_loop() {
        let mut b = GraphBuilder::new();
        let a = b.resource("a");
        let c = b.resource("c");
        b.link(a, "knows", c);
        b.link(a, "knows", a); // self-loop
        let store = b.build();
        let knows = store.dict().find_predicate("knows").unwrap();
        let rows = evaluate(
            &store,
            &[Pattern::new(
                PatternTerm::Var("x"),
                knows,
                PatternTerm::Var("x"),
            )],
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("x"), Some(a));
    }
}
