//! Graph construction.
//!
//! [`GraphBuilder`] is the mutable ingestion side of the store: intern terms,
//! append triples, then [`GraphBuilder::build`] freezes everything into the
//! immutable, fully indexed [`TripleStore`]. The split mirrors how an RDF
//! engine separates bulk load from query serving, and keeps the query path
//! free of locks.

use crate::dictionary::Dictionary;
use crate::store::TripleStore;
use crate::triple::{NodeId, PredicateId, Triple};

/// Default predicate treated as an entity name edge.
pub const NAME_PREDICATE: &str = "name";
/// Secondary name edge, mirroring Freebase's `alias`.
pub const ALIAS_PREDICATE: &str = "alias";
/// Category membership edge, as in the paper's Fig. 1.
pub const CATEGORY_PREDICATE: &str = "category";

/// Mutable builder for a [`TripleStore`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    dict: Dictionary,
    triples: Vec<Triple>,
    name_predicates: Vec<PredicateId>,
}

impl GraphBuilder {
    /// New builder with the conventional `name`/`alias` name predicates
    /// pre-registered.
    pub fn new() -> Self {
        let mut builder = Self::default();
        let name = builder.dict.predicate(NAME_PREDICATE);
        let alias = builder.dict.predicate(ALIAS_PREDICATE);
        builder.name_predicates = vec![name, alias];
        builder
    }

    /// Pre-size the triple log.
    pub fn with_capacity(triples: usize) -> Self {
        let mut b = Self::new();
        b.triples.reserve(triples);
        b
    }

    /// Intern a resource node.
    pub fn resource(&mut self, iri: &str) -> NodeId {
        self.dict.resource(iri)
    }

    /// Intern a predicate.
    pub fn predicate(&mut self, name: &str) -> PredicateId {
        self.dict.predicate(name)
    }

    /// Append a raw triple.
    pub fn triple(&mut self, s: NodeId, p: PredicateId, o: NodeId) {
        self.triples.push(Triple::new(s, p, o));
    }

    /// `(s, name, "…")` — register a human-readable name.
    pub fn name(&mut self, s: NodeId, name: &str) {
        let p = self.dict.predicate(NAME_PREDICATE);
        let o = self.dict.str_literal(name);
        self.triple(s, p, o);
    }

    /// `(s, alias, "…")` — register an alternate name.
    pub fn alias(&mut self, s: NodeId, alias: &str) {
        let p = self.dict.predicate(ALIAS_PREDICATE);
        let o = self.dict.str_literal(alias);
        self.triple(s, p, o);
    }

    /// `(s, p, "…")` with a string-literal object.
    pub fn fact_str(&mut self, s: NodeId, predicate: &str, value: &str) {
        let p = self.dict.predicate(predicate);
        let o = self.dict.str_literal(value);
        self.triple(s, p, o);
    }

    /// `(s, p, n)` with an integer-literal object.
    pub fn fact_int(&mut self, s: NodeId, predicate: &str, value: i64) {
        let p = self.dict.predicate(predicate);
        let o = self.dict.int_literal(value);
        self.triple(s, p, o);
    }

    /// `(s, p, year)` with a year-literal object.
    pub fn fact_year(&mut self, s: NodeId, predicate: &str, year: i32) {
        let p = self.dict.predicate(predicate);
        let o = self.dict.year_literal(year);
        self.triple(s, p, o);
    }

    /// `(s, p, o)` between two resources.
    pub fn link(&mut self, s: NodeId, predicate: &str, o: NodeId) {
        let p = self.dict.predicate(predicate);
        self.triple(s, p, o);
    }

    /// Register an additional predicate whose objects are entity names.
    pub fn register_name_predicate(&mut self, predicate: &str) {
        let p = self.dict.predicate(predicate);
        if !self.name_predicates.contains(&p) {
            self.name_predicates.push(p);
        }
    }

    /// Read access to the dictionary mid-build.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Number of triples staged so far.
    pub fn staged(&self) -> usize {
        self.triples.len()
    }

    /// Freeze into an immutable, indexed [`TripleStore`].
    pub fn build(self) -> TripleStore {
        TripleStore::build(self.dict, self.triples, self.name_predicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = GraphBuilder::new();
        let tokyo = b.resource("res/tokyo");
        b.name(tokyo, "Tokyo");
        b.alias(tokyo, "Tōkyō");
        b.fact_int(tokyo, "population", 13_960_000);
        assert_eq!(b.staged(), 3);
        let store = b.build();
        assert_eq!(store.len(), 3);
        assert_eq!(store.entities_named("tokyo"), &[tokyo]);
        assert_eq!(store.entities_named("tōkyō"), &[tokyo]);
    }

    #[test]
    fn alias_and_name_both_ground() {
        let mut b = GraphBuilder::new();
        let nyc = b.resource("res/nyc");
        b.name(nyc, "New York City");
        b.alias(nyc, "NYC");
        let store = b.build();
        assert_eq!(store.entities_named("new york city"), &[nyc]);
        assert_eq!(store.entities_named("nyc"), &[nyc]);
        let mut names = store.names_of(nyc);
        names.sort_unstable();
        assert_eq!(names, vec!["NYC", "New York City"]);
    }

    #[test]
    fn custom_name_predicate() {
        let mut b = GraphBuilder::new();
        b.register_name_predicate("label");
        let x = b.resource("res/x");
        b.fact_str(x, "label", "The X");
        let store = b.build();
        assert_eq!(store.entities_named("the x"), &[x]);
    }

    #[test]
    fn empty_build_is_valid() {
        let store = GraphBuilder::new().build();
        assert!(store.is_empty());
        assert!(store.entities_named("anything").is_empty());
    }
}
