//! A thin, raw-syscall shim over `mmap` for read-only file mappings.
//!
//! The offline build rules out the `memmap2` crate, so — exactly like the
//! server's `epoll` shim — this module declares the two syscalls the snapshot
//! loader needs (`mmap`, `munmap`) directly against the libc that `std`
//! already links (`extern "C"`, no new crates). The surface is one type:
//! [`Mmap`], a read-only, private mapping of an open file that derefs to
//! `&[u8]` and unmaps on drop.
//!
//! `MAP_PRIVATE | PROT_READ`: the snapshot format is immutable once written,
//! readers never fault pages dirty, and the kernel is free to share the page
//! cache between every process serving the same snapshot — which is the whole
//! point of the zero-copy load path. Linux-only by construction, like the
//! rest of the serving deployment story.

use std::fs::File;
use std::io;
use std::os::fd::AsRawFd;
use std::os::raw::{c_int, c_void};

const PROT_READ: c_int = 0x1;
const MAP_PRIVATE: c_int = 0x02;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> c_int;
}

/// A read-only memory mapping of a file. Unmapped on drop.
///
/// Zero-length files are represented without a kernel mapping (POSIX `mmap`
/// rejects `length == 0`); the slice is simply empty.
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut c_void,
    len: usize,
}

// SAFETY: the mapping is read-only (`PROT_READ`) and private; the underlying
// pages never change through this handle, so sharing references across
// threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map the whole of `file` read-only.
    pub fn map_file(file: &File) -> io::Result<Self> {
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            return Ok(Self {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        // MAP_FAILED is (void*)-1, not NULL.
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { ptr, len })
    }

    /// The mapped bytes. Page-aligned by the kernel, so any section layout
    /// that keeps 8-byte-aligned offsets yields correctly aligned typed
    /// views.
    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len` bytes,
        // valid until `munmap` in `Drop`.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            // Failure here is unrecoverable and harmless to ignore: the
            // address range simply stays reserved until process exit.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("kbqa-mmap-{}-{name}", std::process::id()))
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("basic");
        let mut f = File::create(&path).unwrap();
        f.write_all(b"hello mapped world").unwrap();
        f.sync_all().unwrap();
        drop(f);

        let map = Mmap::map_file(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, b"hello mapped world");
        assert_eq!(map.len(), 18);
        assert!(!map.is_empty());
        // Page alignment: u64 views at 8-aligned offsets are sound.
        assert_eq!(map.bytes().as_ptr() as usize % 4096, 0);
        drop(map);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        File::create(&path).unwrap().sync_all().unwrap();
        let map = Mmap::map_file(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(&*map, b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_survives_file_close() {
        let path = temp_path("close");
        std::fs::write(&path, b"still here").unwrap();
        let map = {
            let f = File::open(&path).unwrap();
            Mmap::map_file(&f).unwrap()
            // `f` drops here; the mapping keeps the pages alive.
        };
        assert_eq!(&*map, b"still here");
        std::fs::remove_file(&path).ok();
    }
}
