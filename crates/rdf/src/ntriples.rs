//! N-Triples–style import/export.
//!
//! A real RDF substrate must interoperate with dump files; this module
//! reads and writes a line-oriented N-Triples dialect:
//!
//! ```text
//! <city/0> <name> "Honolulu" .
//! <city/0> <population> "390000"^^<int> .
//! <person/0> <dob> "1961"^^<year> .
//! <person/0> <pob> <city/0> .
//! ```
//!
//! Resources are `<iri>`, string literals are quoted with `\"`/`\\`/`\n`
//! escapes, and non-string literals carry a `^^<int>` / `^^<year>` datatype
//! tag. Buffered I/O throughout (the triple log is the big artifact).

use std::io::{BufRead, Write};

use kbqa_common::error::{KbqaError, Result};

use crate::builder::GraphBuilder;
use crate::store::TripleStore;
use crate::term::{Literal, Term};
use crate::triple::NodeId;

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

fn unescape(s: &str) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            other => {
                return Err(KbqaError::MalformedRecord(format!(
                    "bad escape sequence: \\{other:?}"
                )))
            }
        }
    }
    Ok(out)
}

fn render_node(store: &TripleStore, node: NodeId, out: &mut String) {
    match store.dict().node_term(node) {
        Term::Resource(sym) => {
            out.push('<');
            out.push_str(store.dict().resolve_sym(sym));
            out.push('>');
        }
        Term::Literal(Literal::Str(sym)) => {
            out.push('"');
            escape(store.dict().resolve_sym(sym), out);
            out.push('"');
        }
        Term::Literal(Literal::Int(v)) => {
            out.push('"');
            out.push_str(&v.to_string());
            out.push_str("\"^^<int>");
        }
        Term::Literal(Literal::Year(y)) => {
            out.push('"');
            out.push_str(&y.to_string());
            out.push_str("\"^^<year>");
        }
    }
}

/// Export a store as N-Triples lines, in scan (insertion) order.
pub fn export<W: Write>(store: &TripleStore, mut writer: W) -> Result<()> {
    let mut line = String::with_capacity(128);
    for t in store.scan() {
        line.clear();
        render_node(store, t.s, &mut line);
        line.push_str(" <");
        line.push_str(store.dict().predicate_name(t.p));
        line.push_str("> ");
        render_node(store, t.o, &mut line);
        line.push_str(" .\n");
        writer.write_all(line.as_bytes())?;
    }
    writer.flush()?;
    Ok(())
}

/// A parsed N-Triples term.
enum ParsedTerm {
    Resource(String),
    Str(String),
    Int(i64),
    Year(i32),
}

/// Parse one term starting at `input`; returns (term, rest).
fn parse_term(input: &str) -> Result<(ParsedTerm, &str)> {
    let input = input.trim_start();
    if let Some(rest) = input.strip_prefix('<') {
        let end = rest
            .find('>')
            .ok_or_else(|| KbqaError::MalformedRecord("unterminated IRI".into()))?;
        return Ok((
            ParsedTerm::Resource(rest[..end].to_owned()),
            &rest[end + 1..],
        ));
    }
    if let Some(rest) = input.strip_prefix('"') {
        // Find the closing unescaped quote.
        let bytes = rest.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => break,
                _ => i += 1,
            }
        }
        if i >= bytes.len() {
            return Err(KbqaError::MalformedRecord("unterminated literal".into()));
        }
        let raw = &rest[..i];
        let mut remainder = &rest[i + 1..];
        if let Some(tagged) = remainder.strip_prefix("^^<int>") {
            let v: i64 = raw
                .parse()
                .map_err(|_| KbqaError::MalformedRecord(format!("bad int literal {raw:?}")))?;
            remainder = tagged;
            return Ok((ParsedTerm::Int(v), remainder));
        }
        if let Some(tagged) = remainder.strip_prefix("^^<year>") {
            let v: i32 = raw
                .parse()
                .map_err(|_| KbqaError::MalformedRecord(format!("bad year literal {raw:?}")))?;
            remainder = tagged;
            return Ok((ParsedTerm::Year(v), remainder));
        }
        return Ok((ParsedTerm::Str(unescape(raw)?), remainder));
    }
    Err(KbqaError::MalformedRecord(format!(
        "expected term at: {input:?}"
    )))
}

/// Import a store from N-Triples lines. Lines starting with `#` and blank
/// lines are skipped; every other line must parse or the import fails.
///
/// Streaming: one line is read at a time into a reused buffer and fed to the
/// builder immediately, so importing a multi-gigabyte dump never buffers the
/// file — peak memory is the builder's interned graph, not the text.
pub fn import<R: BufRead>(mut reader: R) -> Result<TripleStore> {
    let mut builder = GraphBuilder::new();
    let mut line = String::with_capacity(256);
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let err =
            |why: &str| KbqaError::MalformedRecord(format!("line {lineno}: {why}: {trimmed:?}"));
        let (subject, rest) = parse_term(trimmed).map_err(|_| err("bad subject"))?;
        let ParsedTerm::Resource(s_iri) = subject else {
            return Err(err("subject must be a resource"));
        };
        let (pred, rest) = parse_term(rest).map_err(|_| err("bad predicate"))?;
        let ParsedTerm::Resource(p_name) = pred else {
            return Err(err("predicate must be an IRI"));
        };
        let (object, rest) = parse_term(rest).map_err(|_| err("bad object"))?;
        if rest.trim() != "." {
            return Err(err("missing terminating dot"));
        }
        let s = builder.resource(&s_iri);
        match object {
            ParsedTerm::Resource(iri) => {
                let o = builder.resource(&iri);
                builder.link(s, &p_name, o);
            }
            ParsedTerm::Str(v) => builder.fact_str(s, &p_name, &v),
            ParsedTerm::Int(v) => builder.fact_int(s, &p_name, v),
            ParsedTerm::Year(v) => builder.fact_year(s, &p_name, v),
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample_store() -> TripleStore {
        let mut b = GraphBuilder::new();
        let city = b.resource("city/0");
        let mayor = b.resource("person/0");
        b.name(city, "Honolulu");
        b.name(mayor, "Rick \"Mayor\" Blangiardi"); // embedded quotes
        b.fact_int(city, "population", 390_000);
        b.fact_year(mayor, "dob", 1961);
        b.link(city, "mayor", mayor);
        b.build()
    }

    #[test]
    fn export_import_roundtrip() {
        let store = sample_store();
        let mut buffer = Vec::new();
        export(&store, &mut buffer).unwrap();
        let text = String::from_utf8(buffer.clone()).unwrap();
        assert!(text.contains("<city/0> <population> \"390000\"^^<int> ."));
        assert!(text.contains("\"1961\"^^<year>"));
        assert!(text.contains("\\\"Mayor\\\""));

        let restored = import(buffer.as_slice()).unwrap();
        assert_eq!(restored.len(), store.len());
        // Structural equality via re-export.
        let mut again = Vec::new();
        export(&restored, &mut again).unwrap();
        let mut lines_a: Vec<&str> = text.lines().collect();
        let mut lines_b: Vec<&str> = std::str::from_utf8(&again).unwrap().lines().collect();
        lines_a.sort_unstable();
        lines_b.sort_unstable();
        assert_eq!(lines_a, lines_b);
        // Name index works after import.
        assert_eq!(restored.entities_named("honolulu").len(), 1);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let input = b"# a comment\n\n<a> <p> \"x\" .\n".as_slice();
        let store = import(input).unwrap();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "<a> <p> \"unterminated .",
            "<a> <p> .",
            "<a> \"not-an-iri\" \"x\" .",
            "\"literal-subject\" <p> \"x\" .",
            "<a> <p> \"x\"",
            "<a> <p> \"x\"^^<int> .",
        ] {
            let result = import(bad.as_bytes());
            assert!(result.is_err(), "accepted malformed line: {bad:?}");
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let mut b = GraphBuilder::new();
        let r = b.resource("weird");
        b.fact_str(r, "note", "line1\nline2 \\ \"quoted\"");
        let store = b.build();
        let mut buffer = Vec::new();
        export(&store, &mut buffer).unwrap();
        let restored = import(buffer.as_slice()).unwrap();
        let note = restored.dict().find_predicate("note").unwrap();
        let r2 = restored.dict().find_resource("weird").unwrap();
        let value = restored.objects(r2, note).next().unwrap();
        assert_eq!(restored.dict().render(value), "line1\nline2 \\ \"quoted\"");
    }

    #[test]
    fn unescape_rejects_bad_sequences() {
        assert!(unescape("ok \\q").is_err());
        assert_eq!(unescape("a\\\\b").unwrap(), "a\\b");
    }
}
