#![warn(missing_docs)]

//! RDF triple-store substrate for the KBQA reproduction.
//!
//! The paper runs over Trinity.RDF with KBA/Freebase/DBpedia behind it; this
//! crate provides the equivalent surface the KBQA algorithms actually touch:
//!
//! * a dictionary-encoded store of `(s, p, o)` triples ([`store::TripleStore`]),
//! * point and range lookups through four sorted indexes (SPO/SOP/POS/OPS),
//! * a sequential [`scan`](store::TripleStore::scan) over all triples in
//!   insertion order — the stand-in for the disk scans that Sec 6.2's
//!   memory-efficient BFS is built around,
//! * N-Triples-style [`ntriples::import`]/[`ntriples::export`] for dump
//!   interchange,
//! * conjunctive basic-graph-pattern queries ([`query::evaluate`]) — the
//!   "answer can be trivially found from the RDF knowledge base" step,
//! * multi-edge path traversal for *expanded predicates*
//!   ([`path::ExpandedPredicate`], Definition 1 in the paper),
//! * a name index so questions can be grounded to entities by surface string
//!   (`P(e|q)` needs "is it an entity's name in the knowledge base?").
//!
//! Layout follows the usual column-store recipe: terms are interned to dense
//! `u32` ids once, and every index is a sorted `Vec<Triple>` queried by
//! binary-searched ranges, which keeps the store compact and scan-friendly.

pub mod builder;
pub mod dictionary;
pub mod ntriples;
pub mod path;
pub mod query;
pub mod stats;
pub mod store;
pub mod term;
pub mod triple;

pub use builder::GraphBuilder;
pub use dictionary::Dictionary;
pub use path::ExpandedPredicate;
pub use stats::StoreStats;
pub use store::TripleStore;
pub use term::{Literal, Term};
pub use triple::{NodeId, PredicateId, Triple};
