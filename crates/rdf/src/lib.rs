#![warn(missing_docs)]

//! RDF triple-store substrate for the KBQA reproduction.
//!
//! The paper runs over Trinity.RDF with KBA/Freebase/DBpedia behind it; this
//! crate provides the equivalent surface the KBQA algorithms actually touch:
//!
//! * a dictionary-encoded store of `(s, p, o)` triples ([`store::TripleStore`])
//!   over a predicate-partitioned **columnar** layout ([`columnar`]): sorted
//!   `(s, o)` / `(o, s)` runs per predicate, answered by binary/galloping
//!   search with zero-copy value slices,
//! * a sequential [`scan`](store::TripleStore::scan) over all triples in
//!   insertion order — the stand-in for the disk scans that Sec 6.2's
//!   memory-efficient BFS is built around,
//! * **zero-copy snapshots** ([`snapshot`]): the whole store serialized into
//!   one checksummed relocatable file and served straight out of `mmap`
//!   ([`mmap`]) with no load-time rebuild, behind the [`backend::StoreBackend`]
//!   trait (`InMemory` vs `Mapped`),
//! * N-Triples-style [`ntriples::import`]/[`ntriples::export`] for dump
//!   interchange (streaming, line at a time),
//! * conjunctive basic-graph-pattern queries ([`query::evaluate`]) — the
//!   "answer can be trivially found from the RDF knowledge base" step,
//! * multi-edge path traversal for *expanded predicates*
//!   ([`path::ExpandedPredicate`], Definition 1 in the paper),
//! * a name index so questions can be grounded to entities by surface string
//!   (`P(e|q)` needs "is it an entity's name in the knowledge base?").

pub mod backend;
pub mod builder;
pub mod columnar;
pub mod dictionary;
pub mod mmap;
pub mod ntriples;
pub mod path;
pub mod query;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod store;
pub mod term;
pub mod triple;

pub use backend::{BackendKind, StoreBackend};
pub use builder::GraphBuilder;
pub use columnar::ColsView;
pub use dictionary::{DictRef, Dictionary};
pub use path::ExpandedPredicate;
pub use shard::{ShardPlan, ShardStat, ShardStats};
pub use snapshot::Snapshot;
pub use stats::StoreStats;
pub use store::TripleStore;
pub use term::{Literal, Term};
pub use triple::{NodeId, PredicateId, Triple};
