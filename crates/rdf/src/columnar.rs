//! Predicate-partitioned columnar triple layout.
//!
//! The store's data plane is three arrangements of the same deduplicated
//! triple set, each held as parallel `u32` columns rather than arrays of
//! 12-byte structs:
//!
//! * **log** — `(s, p, o)` in first-seen insertion order, the "disk file"
//!   that [`crate::TripleStore::scan`] replays for the Sec 6.2 BFS;
//! * **SO runs** — for each predicate `p`, the `(subject, object)` pairs
//!   sorted by `(s, o)`, delimited by a `P+1` prefix-offset array. One
//!   binary/galloping search answers `V(e, p)` (Eq 6) with a zero-copy
//!   object slice;
//! * **OS runs** — the mirror image sorted by `(o, s)` for reverse lookups
//!   (`subjects`, value→entity grounding).
//!
//! Compared to the previous four sorted `Vec<Triple>` indexes this drops the
//! per-triple cost from 60 to 28 bytes and — because every column is a plain
//! little-endian-integer array — the whole layout serializes into the
//! snapshot file byte-for-byte and maps back in with no rebuild
//! ([`crate::snapshot`]).
//!
//! [`ColumnarTriples`] owns the columns (the in-memory backend);
//! [`ColsView`] is the borrowed form both backends query through, so a
//! store served out of an `mmap`ed snapshot runs the same code paths.

use crate::triple::{PredicateId, Triple};

/// Owned columnar triple data. Built once from a raw triple log; immutable
/// afterwards.
#[derive(Clone, Debug, Default)]
pub struct ColumnarTriples {
    log_s: Vec<u32>,
    log_p: Vec<u32>,
    log_o: Vec<u32>,
    so_bounds: Vec<u64>,
    so_s: Vec<u32>,
    so_o: Vec<u32>,
    os_bounds: Vec<u64>,
    os_o: Vec<u32>,
    os_s: Vec<u32>,
}

impl ColumnarTriples {
    /// Build the three arrangements from a raw triple log. Duplicates are
    /// dropped, keeping the *first* occurrence so insertion ("disk") order
    /// is preserved exactly as the old store's dedup did.
    ///
    /// `predicate_count` sizes the run-offset arrays; every triple must have
    /// `t.p.index() < predicate_count`.
    pub fn build(predicate_count: usize, triples: Vec<Triple>) -> Self {
        let n = triples.len();
        assert!(n <= u32::MAX as usize, "triple count exceeds u32 range");

        // Sort-based dedup: argsort by (s, p, o, first-seen index), then mark
        // the head of each equal run. Peak transient memory is one u32 per
        // triple — far below the hash-set dedup this replaces at 10M+ rows.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            triples[a as usize]
                .spo_key()
                .cmp(&triples[b as usize].spo_key())
                .then(a.cmp(&b))
        });
        let mut keep = vec![false; n];
        let mut prev: Option<(u32, u32, u32)> = None;
        for &i in &order {
            let t = triples[i as usize];
            let key = (t.s.raw(), t.p.raw(), t.o.raw());
            if prev != Some(key) {
                keep[i as usize] = true;
                prev = Some(key);
            }
        }
        drop(order);

        let kept = keep.iter().filter(|&&k| k).count();
        let mut log_s = Vec::with_capacity(kept);
        let mut log_p = Vec::with_capacity(kept);
        let mut log_o = Vec::with_capacity(kept);
        for (i, t) in triples.iter().enumerate() {
            if keep[i] {
                log_s.push(t.s.raw());
                log_p.push(t.p.raw());
                log_o.push(t.o.raw());
            }
        }
        drop(keep);
        drop(triples);

        // Partition into per-predicate runs (counting sort on p), then order
        // each run by its pair key.
        let so_bounds = run_bounds(predicate_count, &log_p);
        let (so_s, so_o) = build_runs(&so_bounds, &log_p, &log_s, &log_o);
        let os_bounds = so_bounds.clone();
        let (os_o, os_s) = build_runs(&os_bounds, &log_p, &log_o, &log_s);

        Self {
            log_s,
            log_p,
            log_o,
            so_bounds,
            so_s,
            so_o,
            os_bounds,
            os_o,
            os_s,
        }
    }

    /// The borrowed view all queries go through.
    pub fn view(&self) -> ColsView<'_> {
        ColsView {
            log_s: &self.log_s,
            log_p: &self.log_p,
            log_o: &self.log_o,
            so_bounds: &self.so_bounds,
            so_s: &self.so_s,
            so_o: &self.so_o,
            os_bounds: &self.os_bounds,
            os_o: &self.os_o,
            os_s: &self.os_s,
        }
    }
}

/// Prefix offsets of the per-predicate runs: `bounds[p]..bounds[p+1]`.
fn run_bounds(predicate_count: usize, log_p: &[u32]) -> Vec<u64> {
    let mut bounds = vec![0u64; predicate_count + 1];
    for &p in log_p {
        bounds[p as usize + 1] += 1;
    }
    for i in 1..bounds.len() {
        bounds[i] += bounds[i - 1];
    }
    bounds
}

/// Scatter `(major, minor)` pairs into their predicate runs and sort each
/// run by `(major, minor)`.
fn build_runs(bounds: &[u64], log_p: &[u32], major: &[u32], minor: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let n = log_p.len();
    let mut out_major = vec![0u32; n];
    let mut out_minor = vec![0u32; n];
    let mut cursor: Vec<usize> = bounds[..bounds.len() - 1]
        .iter()
        .map(|&b| b as usize)
        .collect();
    for i in 0..n {
        let p = log_p[i] as usize;
        let at = cursor[p];
        out_major[at] = major[i];
        out_minor[at] = minor[i];
        cursor[p] = at + 1;
    }
    // Sort run by run; the transient pair buffer peaks at the largest run.
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for p in 0..bounds.len() - 1 {
        let (lo, hi) = (bounds[p] as usize, bounds[p + 1] as usize);
        if hi - lo <= 1 {
            continue;
        }
        pairs.clear();
        pairs.extend(
            out_major[lo..hi]
                .iter()
                .copied()
                .zip(out_minor[lo..hi].iter().copied()),
        );
        pairs.sort_unstable();
        for (k, (a, b)) in pairs.iter().enumerate() {
            out_major[lo + k] = *a;
            out_minor[lo + k] = *b;
        }
    }
    (out_major, out_minor)
}

/// Borrowed columnar view — the single query surface shared by the
/// in-memory and mmap-backed stores.
#[derive(Clone, Copy, Debug)]
pub struct ColsView<'a> {
    /// Insertion-order subject column.
    pub log_s: &'a [u32],
    /// Insertion-order predicate column.
    pub log_p: &'a [u32],
    /// Insertion-order object column.
    pub log_o: &'a [u32],
    /// SO run offsets (`predicate_count + 1` entries).
    pub so_bounds: &'a [u64],
    /// Subjects of the SO runs, sorted by `(s, o)` within each run.
    pub so_s: &'a [u32],
    /// Objects of the SO runs, parallel to [`ColsView::so_s`].
    pub so_o: &'a [u32],
    /// OS run offsets (`predicate_count + 1` entries).
    pub os_bounds: &'a [u64],
    /// Objects of the OS runs, sorted by `(o, s)` within each run.
    pub os_o: &'a [u32],
    /// Subjects of the OS runs, parallel to [`ColsView::os_o`].
    pub os_s: &'a [u32],
}

impl<'a> ColsView<'a> {
    /// Stored (deduplicated) triple count.
    pub fn len(&self) -> usize {
        self.log_s.len()
    }

    /// Whether no triples are stored.
    pub fn is_empty(&self) -> bool {
        self.log_s.is_empty()
    }

    /// Number of predicates the run arrays are partitioned over.
    pub fn predicate_count(&self) -> usize {
        self.so_bounds.len().saturating_sub(1)
    }

    /// The `i`-th triple in insertion order.
    #[inline]
    pub fn triple_at(&self, i: usize) -> Triple {
        Triple::new(
            crate::NodeId::new(self.log_s[i]),
            PredicateId::new(self.log_p[i]),
            crate::NodeId::new(self.log_o[i]),
        )
    }

    /// The SO run of predicate `p`: parallel `(subjects, objects)` columns
    /// sorted by `(s, o)`. Empty for out-of-range `p`.
    pub fn so_run(&self, p: PredicateId) -> (&'a [u32], &'a [u32]) {
        let (lo, hi) = self.run_range(self.so_bounds, p);
        (&self.so_s[lo..hi], &self.so_o[lo..hi])
    }

    /// The OS run of predicate `p`: parallel `(objects, subjects)` columns
    /// sorted by `(o, s)`.
    pub fn os_run(&self, p: PredicateId) -> (&'a [u32], &'a [u32]) {
        let (lo, hi) = self.run_range(self.os_bounds, p);
        (&self.os_o[lo..hi], &self.os_s[lo..hi])
    }

    fn run_range(&self, bounds: &[u64], p: PredicateId) -> (usize, usize) {
        let i = p.index();
        if i + 1 >= bounds.len() {
            return (0, 0);
        }
        (bounds[i] as usize, bounds[i + 1] as usize)
    }

    /// `V(e, p)` — the objects of `(s, p, ·)` as a zero-copy slice, sorted
    /// ascending. Galloping + binary search over the SO run.
    pub fn objects(&self, s: u32, p: PredicateId) -> &'a [u32] {
        let (run_s, run_o) = self.so_run(p);
        let (lo, hi) = equal_range(run_s, s);
        &run_o[lo..hi]
    }

    /// Subjects of `(·, p, o)` as a zero-copy slice, sorted ascending.
    pub fn subjects(&self, p: PredicateId, o: u32) -> &'a [u32] {
        let (run_o, run_s) = self.os_run(p);
        let (lo, hi) = equal_range(run_o, o);
        &run_s[lo..hi]
    }

    /// Membership probe for `(s, p, o)`.
    pub fn contains(&self, s: u32, p: PredicateId, o: u32) -> bool {
        self.objects(s, p).binary_search(&o).is_ok()
    }
}

/// The half-open index range of `key` in a sorted column: a galloping
/// (exponential) probe to bracket the run, then binary searches inside the
/// bracket. Matches `partition_point` semantics but costs `O(log d)` where
/// `d` is the distance to the run — low-id subjects (interned early, looked
/// up constantly) resolve in a handful of comparisons.
pub fn equal_range(column: &[u32], key: u32) -> (usize, usize) {
    if column.is_empty() {
        return (0, 0);
    }
    // Gallop for an upper bracket of the first position where `v >= key`.
    let mut step = 1usize;
    let mut hi = 0usize;
    while hi < column.len() && column[hi] < key {
        hi += step;
        step *= 2;
    }
    let window_lo = hi.saturating_sub(step / 2);
    let window_hi = hi.min(column.len());
    let start = window_lo + column[window_lo..window_hi].partition_point(|&v| v < key);
    let len = column[start..].partition_point(|&v| v == key);
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId::new(s), PredicateId::new(p), NodeId::new(o))
    }

    fn sample() -> ColumnarTriples {
        ColumnarTriples::build(
            3,
            vec![
                t(5, 1, 9),
                t(1, 0, 2),
                t(5, 1, 3),
                t(1, 0, 2), // duplicate — dropped
                t(0, 2, 1),
                t(5, 1, 3), // duplicate — dropped
                t(2, 0, 2),
            ],
        )
    }

    #[test]
    fn dedup_preserves_first_seen_order() {
        let cols = sample();
        let v = cols.view();
        assert_eq!(v.len(), 5);
        let log: Vec<Triple> = (0..v.len()).map(|i| v.triple_at(i)).collect();
        assert_eq!(
            log,
            vec![t(5, 1, 9), t(1, 0, 2), t(5, 1, 3), t(0, 2, 1), t(2, 0, 2)]
        );
    }

    #[test]
    fn runs_are_sorted_and_partitioned() {
        let cols = sample();
        let v = cols.view();
        let (s0, o0) = v.so_run(PredicateId::new(0));
        assert_eq!(s0, &[1, 2]);
        assert_eq!(o0, &[2, 2]);
        let (s1, o1) = v.so_run(PredicateId::new(1));
        assert_eq!(s1, &[5, 5]);
        assert_eq!(o1, &[3, 9]); // (s, o) order: 3 before 9
        let (ro, rs) = v.os_run(PredicateId::new(0));
        assert_eq!(ro, &[2, 2]);
        assert_eq!(rs, &[1, 2]); // (o, s) order
    }

    #[test]
    fn point_lookups() {
        let cols = sample();
        let v = cols.view();
        assert_eq!(v.objects(5, PredicateId::new(1)), &[3, 9]);
        assert_eq!(v.objects(5, PredicateId::new(0)), &[] as &[u32]);
        assert_eq!(v.subjects(PredicateId::new(0), 2), &[1, 2]);
        assert!(v.contains(5, PredicateId::new(1), 9));
        assert!(!v.contains(5, PredicateId::new(1), 4));
        // Out-of-range predicate is empty, not a panic.
        assert_eq!(v.objects(5, PredicateId::new(99)), &[] as &[u32]);
    }

    #[test]
    fn equal_range_matches_partition_point() {
        let col = [1u32, 1, 2, 2, 2, 5, 7, 7, 9];
        for key in 0..=10u32 {
            let lo = col.partition_point(|&v| v < key);
            let hi = col.partition_point(|&v| v <= key);
            assert_eq!(equal_range(&col, key), (lo, hi), "key {key}");
        }
        assert_eq!(equal_range(&[], 3), (0, 0));
    }

    #[test]
    fn empty_build() {
        let cols = ColumnarTriples::build(2, vec![]);
        let v = cols.view();
        assert!(v.is_empty());
        assert_eq!(v.predicate_count(), 2);
        assert_eq!(v.objects(0, PredicateId::new(0)), &[] as &[u32]);
    }

    #[test]
    fn large_shuffled_build_agrees_with_naive() {
        // A few hundred triples with collisions, in scrambled order.
        let mut triples = Vec::new();
        for i in 0..400u32 {
            let x = i.wrapping_mul(2654435761) % 97;
            triples.push(t(x % 13, x % 5, x % 7));
        }
        let cols = ColumnarTriples::build(5, triples.clone());
        let v = cols.view();
        // Naive dedup keeping first occurrence.
        let mut seen = std::collections::HashSet::new();
        let naive: Vec<Triple> = triples
            .iter()
            .copied()
            .filter(|t| seen.insert(*t))
            .collect();
        assert_eq!(v.len(), naive.len());
        for (i, want) in naive.iter().enumerate() {
            assert_eq!(v.triple_at(i), *want);
        }
        // Spot-check every (s, p) group against a scan.
        for s in 0..13u32 {
            for p in 0..5u32 {
                let mut want: Vec<u32> = naive
                    .iter()
                    .filter(|t| t.s.raw() == s && t.p.raw() == p)
                    .map(|t| t.o.raw())
                    .collect();
                want.sort_unstable();
                assert_eq!(v.objects(s, PredicateId::new(p)), want.as_slice());
            }
        }
    }
}
