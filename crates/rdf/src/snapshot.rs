//! Zero-copy store snapshots: one relocatable file, mapped read-only.
//!
//! A snapshot freezes an entire [`crate::TripleStore`] — dictionary, columnar
//! triple arrangements, name index — into a single file of flat integer/byte
//! sections. Loading is [`Snapshot::open`]: `mmap` the file, verify the
//! checksum, validate section geometry, done. No parse, no rebuild, no
//! allocation proportional to store size; warm start and `/admin/reload`
//! become "map the file, flip the epoch".
//!
//! # File layout
//!
//! ```text
//! header   32 B   magic "KBQASNAP", version u32, section count u32,
//!                 file length u64, checksum u64 (Fx-64 of every byte
//!                 after the header)
//! table    22×16  (offset u64, byte length u64) per section
//! sections …      each 8-byte aligned, zero-padded between
//! ```
//!
//! All integers are **native-endian** (in practice little-endian: the
//! serving fleet and CI are x86-64/aarch64); a snapshot is a serving
//! artifact, not an interchange format — interchange goes through
//! [`crate::ntriples`]. Offsets are relative to the file start, so the file
//! is position-independent and the kernel may map it anywhere.
//!
//! Lookup structures that the in-memory store keeps as hash maps are stored
//! as *sorted permutation arrays* instead (strings, terms, predicates by
//! name, lowercased surface names), so a mapped store resolves
//! `find_*`/`entities_named` by binary search over the mapped data — nothing
//! is rebuilt on load. See `docs/STORAGE.md` for the full section catalog.

use std::fs::File;
use std::hash::Hasher as _;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};

use kbqa_common::error::{KbqaError, Result};
use kbqa_common::hash::FxHasher;
use kbqa_common::interner::Interner;

use crate::columnar::ColsView;
use crate::dictionary::Dictionary;
use crate::mmap::Mmap;
use crate::term::{Literal, Term};
use crate::triple::{NodeId, PredicateId, Triple};

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"KBQASNAP";
/// Current format version. Bump on any layout change.
pub const VERSION: u32 = 1;

const HEADER_LEN: usize = 32;
const CHECKSUM_OFFSET: usize = 24;
const SECTION_COUNT: usize = 22;
const TABLE_LEN: usize = SECTION_COUNT * 16;

/// Element width of each section, in file order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Elem {
    U8,
    U32,
    U64,
}

impl Elem {
    fn size(self) -> usize {
        match self {
            Elem::U8 => 1,
            Elem::U32 => 4,
            Elem::U64 => 8,
        }
    }
}

/// Section indices. Kept as named constants (not an enum) so the table
/// layout reads off directly.
mod sec {
    pub const STRING_BYTES: usize = 0;
    pub const STRING_OFFSETS: usize = 1;
    pub const STRING_SORTED: usize = 2;
    pub const TERM_TAGS: usize = 3;
    pub const TERM_PAYLOADS: usize = 4;
    pub const TERM_SORTED: usize = 5;
    pub const PREDICATE_SYMS: usize = 6;
    pub const PREDICATE_SORTED: usize = 7;
    pub const NAME_PREDICATES: usize = 8;
    pub const LOG_S: usize = 9;
    pub const LOG_P: usize = 10;
    pub const LOG_O: usize = 11;
    pub const SO_BOUNDS: usize = 12;
    pub const SO_S: usize = 13;
    pub const SO_O: usize = 14;
    pub const OS_BOUNDS: usize = 15;
    pub const OS_O: usize = 16;
    pub const OS_S: usize = 17;
    pub const NAME_BYTES: usize = 18;
    pub const NAME_OFFSETS: usize = 19;
    pub const NAME_NODE_BOUNDS: usize = 20;
    pub const NAME_NODE_IDS: usize = 21;
}

const ELEMS: [Elem; SECTION_COUNT] = [
    Elem::U8,  // string bytes
    Elem::U64, // string offsets
    Elem::U32, // string sorted perm
    Elem::U8,  // term tags
    Elem::U64, // term payloads
    Elem::U32, // term sorted perm
    Elem::U32, // predicate syms
    Elem::U32, // predicate sorted perm
    Elem::U32, // name predicates
    Elem::U32, // log s
    Elem::U32, // log p
    Elem::U32, // log o
    Elem::U64, // so bounds
    Elem::U32, // so s
    Elem::U32, // so o
    Elem::U64, // os bounds
    Elem::U32, // os o
    Elem::U32, // os s
    Elem::U8,  // name bytes
    Elem::U64, // name offsets
    Elem::U64, // name node bounds
    Elem::U32, // name node ids
];

fn bad(why: impl std::fmt::Display) -> KbqaError {
    KbqaError::Io(format!("snapshot: {why}"))
}

// ---------------------------------------------------------------------------
// Checksumming
// ---------------------------------------------------------------------------

/// Incremental Fx-64 over a byte stream, chunk-boundary independent: feeding
/// the same bytes in any split produces exactly what `FxHasher::write` would
/// produce for the concatenation. This keeps the snapshot's internal
/// checksum and the `.fxsum` sidecar convention (PR 5) on one algorithm.
#[derive(Default)]
pub struct Fx64Stream {
    hasher: FxHasher,
    pending: [u8; 8],
    pending_len: usize,
}

impl Fx64Stream {
    /// Feed more bytes.
    pub fn update(&mut self, mut bytes: &[u8]) {
        if self.pending_len > 0 {
            let take = bytes.len().min(8 - self.pending_len);
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&bytes[..take]);
            self.pending_len += take;
            bytes = &bytes[take..];
            if self.pending_len < 8 {
                return;
            }
            self.hasher.write_u64(u64::from_le_bytes(self.pending));
            self.pending_len = 0;
        }
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.hasher
                .write_u64(u64::from_le_bytes(chunk.try_into().expect("chunk of 8")));
        }
        let tail = chunks.remainder();
        self.pending[..tail.len()].copy_from_slice(tail);
        self.pending_len = tail.len();
    }

    /// Finish, returning the digest.
    pub fn finish(mut self) -> u64 {
        if self.pending_len > 0 {
            // Matches FxHasher::write's tail handling for a final short chunk.
            let pending_len = self.pending_len;
            self.hasher.write(&self.pending[..pending_len]);
        }
        self.hasher.finish()
    }
}

// ---------------------------------------------------------------------------
// Typed views over raw bytes
// ---------------------------------------------------------------------------

fn cast_u32(bytes: &[u8]) -> &[u32] {
    debug_assert_eq!(bytes.as_ptr() as usize % 4, 0);
    debug_assert_eq!(bytes.len() % 4, 0);
    // SAFETY: alignment and length are validated at open (section offsets
    // are 8-aligned within a page-aligned mapping; lengths are multiples of
    // the element size); u32 has no invalid bit patterns.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), bytes.len() / 4) }
}

fn cast_u64(bytes: &[u8]) -> &[u64] {
    debug_assert_eq!(bytes.as_ptr() as usize % 8, 0);
    debug_assert_eq!(bytes.len() % 8, 0);
    // SAFETY: as above.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u64>(), bytes.len() / 8) }
}

/// Reinterpret a raw `u32` column as node ids (`NodeId` is
/// `#[repr(transparent)]` over `u32`).
pub(crate) fn as_node_ids(raw: &[u32]) -> &[NodeId] {
    // SAFETY: NodeId is repr(transparent) over u32.
    unsafe { std::slice::from_raw_parts(raw.as_ptr().cast::<NodeId>(), raw.len()) }
}

/// Reinterpret a raw `u32` column as predicate ids.
pub(crate) fn as_predicate_ids(raw: &[u32]) -> &[PredicateId] {
    // SAFETY: PredicateId is repr(transparent) over u32.
    unsafe { std::slice::from_raw_parts(raw.as_ptr().cast::<PredicateId>(), raw.len()) }
}

fn ids_as_u32(ids: &[PredicateId]) -> &[u32] {
    // SAFETY: PredicateId is repr(transparent) over u32.
    unsafe { std::slice::from_raw_parts(ids.as_ptr().cast::<u32>(), ids.len()) }
}

fn node_ids_as_u32(ids: &[NodeId]) -> &[u32] {
    // SAFETY: NodeId is repr(transparent) over u32.
    unsafe { std::slice::from_raw_parts(ids.as_ptr().cast::<u32>(), ids.len()) }
}

// ---------------------------------------------------------------------------
// Term encoding
// ---------------------------------------------------------------------------

const TAG_RESOURCE: u8 = 0;
const TAG_STR: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_YEAR: u8 = 3;

fn encode_term(term: Term) -> (u8, u64) {
    match term {
        Term::Resource(sym) => (TAG_RESOURCE, u64::from(sym)),
        Term::Literal(Literal::Str(sym)) => (TAG_STR, u64::from(sym)),
        Term::Literal(Literal::Int(v)) => (TAG_INT, v as u64),
        Term::Literal(Literal::Year(y)) => (TAG_YEAR, y as i64 as u64),
    }
}

fn decode_term(tag: u8, payload: u64) -> Term {
    match tag {
        TAG_RESOURCE => Term::Resource(payload as u32),
        TAG_STR => Term::Literal(Literal::Str(payload as u32)),
        TAG_INT => Term::Literal(Literal::Int(payload as i64)),
        TAG_YEAR => Term::Literal(Literal::Year(payload as i64 as i32)),
        other => unreachable!("term tag {other} rejected at open"),
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Everything the writer needs, borrowed from the in-memory backend.
pub(crate) struct SnapshotSource<'a> {
    pub strings: &'a Interner,
    pub terms: &'a [Term],
    pub predicate_syms: &'a [u32],
    pub cols: ColsView<'a>,
    pub name_predicates: &'a [PredicateId],
    /// `(lowercased name, nodes)` pairs in any order; the writer sorts.
    pub name_entries: Vec<(&'a str, &'a [NodeId])>,
}

enum Col<'a> {
    U8(&'a [u8]),
    U32(&'a [u32]),
    U64(&'a [u64]),
}

impl Col<'_> {
    fn byte_len(&self) -> usize {
        match self {
            Col::U8(s) => s.len(),
            Col::U32(s) => s.len() * 4,
            Col::U64(s) => s.len() * 8,
        }
    }

    fn elem(&self) -> Elem {
        match self {
            Col::U8(_) => Elem::U8,
            Col::U32(_) => Elem::U32,
            Col::U64(_) => Elem::U64,
        }
    }

    /// Feed the column's bytes to `f` in file order, in bounded chunks
    /// (native-endian reinterpretation, no element-wise encoding).
    fn for_each_chunk(&self, mut f: impl FnMut(&[u8])) {
        match self {
            Col::U8(s) => f(s),
            Col::U32(s) => {
                // SAFETY: plain-old-data reinterpretation for writing.
                let bytes =
                    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), s.len() * 4) };
                f(bytes);
            }
            Col::U64(s) => {
                // SAFETY: as above.
                let bytes =
                    unsafe { std::slice::from_raw_parts(s.as_ptr().cast::<u8>(), s.len() * 8) };
                f(bytes);
            }
        }
    }
}

/// Derived (owned) arrays the writer materializes before laying out the file.
struct DerivedSections {
    string_bytes: Vec<u8>,
    string_offsets: Vec<u64>,
    string_sorted: Vec<u32>,
    term_tags: Vec<u8>,
    term_payloads: Vec<u64>,
    term_sorted: Vec<u32>,
    predicate_sorted: Vec<u32>,
    name_bytes: Vec<u8>,
    name_offsets: Vec<u64>,
    name_node_bounds: Vec<u64>,
    name_node_ids: Vec<u32>,
}

fn derive_sections(src: &SnapshotSource<'_>) -> DerivedSections {
    let string_count = src.strings.len();
    let mut string_bytes = Vec::new();
    let mut string_offsets = Vec::with_capacity(string_count + 1);
    string_offsets.push(0);
    for (_, s) in src.strings.iter() {
        string_bytes.extend_from_slice(s.as_bytes());
        string_offsets.push(string_bytes.len() as u64);
    }
    let mut string_sorted: Vec<u32> = (0..string_count as u32).collect();
    string_sorted.sort_unstable_by_key(|&sym| src.strings.resolve(sym));

    let mut term_tags = Vec::with_capacity(src.terms.len());
    let mut term_payloads = Vec::with_capacity(src.terms.len());
    for &t in src.terms {
        let (tag, payload) = encode_term(t);
        term_tags.push(tag);
        term_payloads.push(payload);
    }
    let mut term_sorted: Vec<u32> = (0..src.terms.len() as u32).collect();
    term_sorted.sort_unstable_by_key(|&i| (term_tags[i as usize], term_payloads[i as usize]));

    let mut predicate_sorted: Vec<u32> = (0..src.predicate_syms.len() as u32).collect();
    predicate_sorted.sort_unstable_by_key(|&i| src.strings.resolve(src.predicate_syms[i as usize]));

    let mut entries = src.name_entries.clone();
    entries.sort_unstable_by_key(|&(name, _)| name);
    let mut name_bytes = Vec::new();
    let mut name_offsets = Vec::with_capacity(entries.len() + 1);
    let mut name_node_bounds = Vec::with_capacity(entries.len() + 1);
    let mut name_node_ids = Vec::new();
    name_offsets.push(0);
    name_node_bounds.push(0);
    for (name, nodes) in entries {
        name_bytes.extend_from_slice(name.as_bytes());
        name_offsets.push(name_bytes.len() as u64);
        name_node_ids.extend_from_slice(node_ids_as_u32(nodes));
        name_node_bounds.push(name_node_ids.len() as u64);
    }

    DerivedSections {
        string_bytes,
        string_offsets,
        string_sorted,
        term_tags,
        term_payloads,
        term_sorted,
        predicate_sorted,
        name_bytes,
        name_offsets,
        name_node_bounds,
        name_node_ids,
    }
}

/// Write a snapshot for `src` to `path` — atomically (same-directory temp
/// file, `fsync`, rename) — and return the Fx-64 digest of the final file
/// bytes (what a `.fxsum` sidecar records).
pub(crate) fn write_source(src: &SnapshotSource<'_>, path: &Path) -> Result<u64> {
    let derived = derive_sections(src);
    let cols: [Col<'_>; SECTION_COUNT] = [
        Col::U8(&derived.string_bytes),
        Col::U64(&derived.string_offsets),
        Col::U32(&derived.string_sorted),
        Col::U8(&derived.term_tags),
        Col::U64(&derived.term_payloads),
        Col::U32(&derived.term_sorted),
        Col::U32(src.predicate_syms),
        Col::U32(&derived.predicate_sorted),
        Col::U32(ids_as_u32(src.name_predicates)),
        Col::U32(src.cols.log_s),
        Col::U32(src.cols.log_p),
        Col::U32(src.cols.log_o),
        Col::U64(src.cols.so_bounds),
        Col::U32(src.cols.so_s),
        Col::U32(src.cols.so_o),
        Col::U64(src.cols.os_bounds),
        Col::U32(src.cols.os_o),
        Col::U32(src.cols.os_s),
        Col::U8(&derived.name_bytes),
        Col::U64(&derived.name_offsets),
        Col::U64(&derived.name_node_bounds),
        Col::U32(&derived.name_node_ids),
    ];
    for (i, col) in cols.iter().enumerate() {
        debug_assert_eq!(col.elem(), ELEMS[i], "section {i} element width");
    }

    // Lay out: every section starts 8-aligned, zero padding between.
    let mut table = [(0u64, 0u64); SECTION_COUNT];
    let mut at = (HEADER_LEN + TABLE_LEN) as u64;
    for (i, col) in cols.iter().enumerate() {
        table[i] = (at, col.byte_len() as u64);
        at += col.byte_len() as u64;
        at = (at + 7) & !7;
    }
    let file_len = at;

    let mut table_bytes = Vec::with_capacity(TABLE_LEN);
    for &(off, len) in &table {
        table_bytes.extend_from_slice(&off.to_ne_bytes());
        table_bytes.extend_from_slice(&len.to_ne_bytes());
    }

    // Pass 1: checksum of everything after the header (table + sections).
    const PAD: [u8; 8] = [0; 8];
    let feed_body = |stream: &mut Fx64Stream| {
        stream.update(&table_bytes);
        for col in &cols {
            col.for_each_chunk(|chunk| stream.update(chunk));
            let pad = (8 - col.byte_len() % 8) % 8;
            stream.update(&PAD[..pad]);
        }
    };
    let mut body = Fx64Stream::default();
    feed_body(&mut body);
    let checksum = body.finish();

    let mut header = [0u8; HEADER_LEN];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&VERSION.to_ne_bytes());
    header[12..16].copy_from_slice(&(SECTION_COUNT as u32).to_ne_bytes());
    header[16..24].copy_from_slice(&file_len.to_ne_bytes());
    header[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8].copy_from_slice(&checksum.to_ne_bytes());

    // Pass 2: digest of the complete final file, for the sidecar convention.
    let mut whole = Fx64Stream::default();
    whole.update(&header);
    feed_body(&mut whole);
    let file_digest = whole.finish();

    // Single sequential write to a temp sibling, fsync, rename into place.
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp_name);
    let result = (|| -> std::io::Result<()> {
        let file = File::create(&tmp)?;
        let mut w = BufWriter::with_capacity(1 << 20, file);
        w.write_all(&header)?;
        w.write_all(&table_bytes)?;
        for col in &cols {
            let mut io_err = None;
            col.for_each_chunk(|chunk| {
                if io_err.is_none() {
                    io_err = w.write_all(chunk).err();
                }
            });
            if let Some(e) = io_err {
                return Err(e);
            }
            let pad = (8 - col.byte_len() % 8) % 8;
            w.write_all(&PAD[..pad])?;
        }
        let file = w.into_inner().map_err(|e| e.into_error())?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result?;
    Ok(file_digest)
}

/// Atomically write already-encoded snapshot `bytes` to `path` (temp +
/// `fsync` + rename) and return their Fx-64 digest. Used when a mapped store
/// re-snapshots: its mapping already *is* the file format.
pub(crate) fn write_bytes(bytes: &[u8], path: &Path) -> Result<u64> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp_name);
    let result = (|| -> std::io::Result<()> {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result?;
    let mut stream = Fx64Stream::default();
    stream.update(bytes);
    Ok(stream.finish())
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// An open, validated, memory-mapped snapshot. All accessors are zero-copy
/// views into the mapping.
#[derive(Debug)]
pub struct Snapshot {
    map: Mmap,
    ranges: [(usize, usize); SECTION_COUNT],
}

impl Snapshot {
    /// Map `path` read-only and validate it end to end: magic, version,
    /// length, checksum, section geometry, cross-section invariants (offset
    /// monotonicity, id ranges, UTF-8). Any violation is a typed
    /// [`KbqaError::Io`] — corruption never panics a loader.
    pub fn open(path: &Path) -> Result<Self> {
        let file =
            File::open(path).map_err(|e| bad(format_args!("open {}: {e}", path.display())))?;
        let map =
            Mmap::map_file(&file).map_err(|e| bad(format_args!("mmap {}: {e}", path.display())))?;
        Self::from_map(map).map_err(|e| match e {
            KbqaError::Io(why) => KbqaError::Io(format!("{why} ({})", path.display())),
            other => other,
        })
    }

    fn from_map(map: Mmap) -> Result<Self> {
        let bytes = map.bytes();
        if bytes.len() < HEADER_LEN + TABLE_LEN {
            return Err(bad("file shorter than header"));
        }
        if bytes[0..8] != MAGIC {
            return Err(bad("bad magic"));
        }
        let version = u32::from_ne_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(bad(format_args!(
                "unsupported version {version} (expected {VERSION})"
            )));
        }
        let section_count = u32::from_ne_bytes(bytes[12..16].try_into().expect("4 bytes"));
        if section_count as usize != SECTION_COUNT {
            return Err(bad(format_args!(
                "unexpected section count {section_count}"
            )));
        }
        let file_len = u64::from_ne_bytes(bytes[16..24].try_into().expect("8 bytes"));
        if file_len != bytes.len() as u64 {
            return Err(bad(format_args!(
                "length mismatch: header says {file_len}, file is {} (truncated?)",
                bytes.len()
            )));
        }
        let stored = u64::from_ne_bytes(
            bytes[CHECKSUM_OFFSET..CHECKSUM_OFFSET + 8]
                .try_into()
                .expect("8 bytes"),
        );
        let mut stream = Fx64Stream::default();
        stream.update(&bytes[HEADER_LEN..]);
        let actual = stream.finish();
        if stored != actual {
            return Err(bad(format_args!(
                "checksum mismatch: header says {stored:016x}, contents hash to {actual:016x}"
            )));
        }

        let mut ranges = [(0usize, 0usize); SECTION_COUNT];
        for (i, range) in ranges.iter_mut().enumerate() {
            let at = HEADER_LEN + i * 16;
            let off = u64::from_ne_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
            let len = u64::from_ne_bytes(bytes[at + 8..at + 16].try_into().expect("8 bytes"));
            let (off, len) = (off as usize, len as usize);
            if off % 8 != 0 {
                return Err(bad(format_args!("section {i} misaligned at {off}")));
            }
            if off.checked_add(len).is_none_or(|end| end > bytes.len()) {
                return Err(bad(format_args!("section {i} out of bounds")));
            }
            if len % ELEMS[i].size() != 0 {
                return Err(bad(format_args!("section {i} has ragged length {len}")));
            }
            *range = (off, len);
        }

        let snap = Self { map, ranges };
        snap.validate_invariants()?;
        Ok(snap)
    }

    /// Cross-section semantic validation; establishes the invariants the
    /// unsafe UTF-8 and slice casts rely on.
    fn validate_invariants(&self) -> Result<()> {
        let string_bytes = self.raw(sec::STRING_BYTES);
        let string_offsets = self.u64s(sec::STRING_OFFSETS);
        let string_sorted = self.u32s(sec::STRING_SORTED);
        let string_count = string_sorted.len();
        check_offsets(
            "string offsets",
            string_offsets,
            string_count,
            string_bytes.len(),
        )?;
        let text = std::str::from_utf8(string_bytes)
            .map_err(|e| bad(format_args!("string bytes not UTF-8: {e}")))?;
        for &off in string_offsets {
            if !text.is_char_boundary(off as usize) {
                return Err(bad("string offset splits a UTF-8 sequence"));
            }
        }
        check_perm("string perm", string_sorted, string_count)?;

        let term_tags = self.raw(sec::TERM_TAGS);
        let term_payloads = self.u64s(sec::TERM_PAYLOADS);
        let term_sorted = self.u32s(sec::TERM_SORTED);
        if term_tags.len() != term_payloads.len() || term_tags.len() != term_sorted.len() {
            return Err(bad("term sections disagree on length"));
        }
        check_perm("term perm", term_sorted, term_tags.len())?;
        for (i, (&tag, &payload)) in term_tags.iter().zip(term_payloads).enumerate() {
            match tag {
                TAG_RESOURCE | TAG_STR => {
                    if payload >= string_count as u64 {
                        return Err(bad(format_args!(
                            "term {i} references string {payload} of {string_count}"
                        )));
                    }
                }
                TAG_INT | TAG_YEAR => {}
                other => return Err(bad(format_args!("term {i} has unknown tag {other}"))),
            }
        }

        let predicate_syms = self.u32s(sec::PREDICATE_SYMS);
        let predicate_sorted = self.u32s(sec::PREDICATE_SORTED);
        let predicate_count = predicate_syms.len();
        check_perm("predicate perm", predicate_sorted, predicate_count)?;
        if predicate_syms.iter().any(|&s| s as usize >= string_count) {
            return Err(bad("predicate references out-of-range string"));
        }
        for &p in self.u32s(sec::NAME_PREDICATES) {
            if p as usize >= predicate_count {
                return Err(bad("name predicate out of range"));
            }
        }

        let node_count = term_tags.len();
        let triple_count = self.u32s(sec::LOG_S).len();
        for (name, section) in [
            ("log p", sec::LOG_P),
            ("log o", sec::LOG_O),
            ("so s", sec::SO_S),
            ("so o", sec::SO_O),
            ("os o", sec::OS_O),
            ("os s", sec::OS_S),
        ] {
            if self.u32s(section).len() != triple_count {
                return Err(bad(format_args!("{name} column length mismatch")));
            }
        }
        for (name, section) in [
            ("log s", sec::LOG_S),
            ("log o", sec::LOG_O),
            ("so s", sec::SO_S),
            ("so o", sec::SO_O),
            ("os o", sec::OS_O),
            ("os s", sec::OS_S),
        ] {
            if self.u32s(section).iter().any(|&v| v as usize >= node_count) {
                return Err(bad(format_args!(
                    "{name} column references out-of-range node"
                )));
            }
        }
        if self
            .u32s(sec::LOG_P)
            .iter()
            .any(|&v| v as usize >= predicate_count)
        {
            return Err(bad("log p column references out-of-range predicate"));
        }
        check_offsets(
            "so bounds",
            self.u64s(sec::SO_BOUNDS),
            predicate_count,
            triple_count,
        )?;
        check_offsets(
            "os bounds",
            self.u64s(sec::OS_BOUNDS),
            predicate_count,
            triple_count,
        )?;

        let name_bytes = self.raw(sec::NAME_BYTES);
        let name_offsets = self.u64s(sec::NAME_OFFSETS);
        let name_bounds = self.u64s(sec::NAME_NODE_BOUNDS);
        let name_ids = self.u32s(sec::NAME_NODE_IDS);
        let name_count = name_offsets.len().saturating_sub(1);
        check_offsets("name offsets", name_offsets, name_count, name_bytes.len())?;
        check_offsets("name node bounds", name_bounds, name_count, name_ids.len())?;
        let names = std::str::from_utf8(name_bytes)
            .map_err(|e| bad(format_args!("name bytes not UTF-8: {e}")))?;
        for &off in name_offsets {
            if !names.is_char_boundary(off as usize) {
                return Err(bad("name offset splits a UTF-8 sequence"));
            }
        }
        if name_ids.iter().any(|&v| v as usize >= node_count) {
            return Err(bad("name index references out-of-range node"));
        }
        Ok(())
    }

    /// The raw mapped file bytes (for sidecar digesting).
    pub fn bytes(&self) -> &[u8] {
        self.map.bytes()
    }

    fn raw(&self, i: usize) -> &[u8] {
        let (off, len) = self.ranges[i];
        &self.map.bytes()[off..off + len]
    }

    fn u32s(&self, i: usize) -> &[u32] {
        cast_u32(self.raw(i))
    }

    fn u64s(&self, i: usize) -> &[u64] {
        cast_u64(self.raw(i))
    }

    /// The mapped dictionary view.
    pub fn dict(&self) -> MappedDict<'_> {
        MappedDict {
            string_bytes: self.raw(sec::STRING_BYTES),
            string_offsets: self.u64s(sec::STRING_OFFSETS),
            string_sorted: self.u32s(sec::STRING_SORTED),
            term_tags: self.raw(sec::TERM_TAGS),
            term_payloads: self.u64s(sec::TERM_PAYLOADS),
            term_sorted: self.u32s(sec::TERM_SORTED),
            predicate_syms: self.u32s(sec::PREDICATE_SYMS),
            predicate_sorted: self.u32s(sec::PREDICATE_SORTED),
        }
    }

    /// The mapped columnar triple view.
    pub fn cols(&self) -> ColsView<'_> {
        ColsView {
            log_s: self.u32s(sec::LOG_S),
            log_p: self.u32s(sec::LOG_P),
            log_o: self.u32s(sec::LOG_O),
            so_bounds: self.u64s(sec::SO_BOUNDS),
            so_s: self.u32s(sec::SO_S),
            so_o: self.u32s(sec::SO_O),
            os_bounds: self.u64s(sec::OS_BOUNDS),
            os_o: self.u32s(sec::OS_O),
            os_s: self.u32s(sec::OS_S),
        }
    }

    /// The configured name predicates.
    pub fn name_predicates(&self) -> &[PredicateId] {
        as_predicate_ids(self.u32s(sec::NAME_PREDICATES))
    }

    /// Number of distinct lowercased names in the name index.
    pub fn name_entry_count(&self) -> usize {
        self.u64s(sec::NAME_OFFSETS).len().saturating_sub(1)
    }

    /// The `i`-th name entry, in sorted name order.
    pub fn name_entry(&self, i: usize) -> (&str, &[NodeId]) {
        let offsets = self.u64s(sec::NAME_OFFSETS);
        let bounds = self.u64s(sec::NAME_NODE_BOUNDS);
        let name_bytes = &self.raw(sec::NAME_BYTES)[offsets[i] as usize..offsets[i + 1] as usize];
        // SAFETY: UTF-8 of the section and offset boundaries validated at open.
        let name = unsafe { std::str::from_utf8_unchecked(name_bytes) };
        let ids = &self.u32s(sec::NAME_NODE_IDS)[bounds[i] as usize..bounds[i + 1] as usize];
        (name, as_node_ids(ids))
    }

    /// Nodes bearing `lower` (an already-lowercased surface name); binary
    /// search over the sorted name section.
    pub fn entities_named(&self, lower: &str) -> &[NodeId] {
        let n = self.name_entry_count();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.name_entry(mid).0 < lower {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < n {
            let (name, ids) = self.name_entry(lo);
            if name == lower {
                return ids;
            }
        }
        &[]
    }

    /// Materialize the owned parts (dictionary, triple log, name
    /// predicates) — the slow path used when a mapped store must be
    /// re-serialized into the legacy JSON form.
    pub fn to_parts(&self) -> (Dictionary, Vec<Triple>, Vec<PredicateId>) {
        let md = self.dict();
        let mut strings = Interner::with_capacity(md.string_count());
        for sym in 0..md.string_count() as u32 {
            strings.intern(md.resolve_sym(sym));
        }
        let terms: Vec<Term> = (0..md.node_count())
            .map(|i| decode_term(md.term_tags[i], md.term_payloads[i]))
            .collect();
        let dict = Dictionary::from_raw_parts(strings, terms, md.predicate_syms.to_vec());
        let cols = self.cols();
        let triples: Vec<Triple> = (0..cols.len()).map(|i| cols.triple_at(i)).collect();
        (dict, triples, self.name_predicates().to_vec())
    }
}

fn check_offsets(what: &str, offsets: &[u64], expect_entries: usize, end: usize) -> Result<()> {
    if offsets.len() != expect_entries + 1 {
        return Err(bad(format_args!(
            "{what}: {} entries, expected {}",
            offsets.len(),
            expect_entries + 1
        )));
    }
    if offsets.first() != Some(&0) || offsets.last() != Some(&(end as u64)) {
        return Err(bad(format_args!("{what}: endpoints out of range")));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(bad(format_args!("{what}: not monotone")));
    }
    Ok(())
}

fn check_perm(what: &str, perm: &[u32], n: usize) -> Result<()> {
    if perm.len() != n {
        return Err(bad(format_args!("{what}: length mismatch")));
    }
    if perm.iter().any(|&v| v as usize >= n) {
        return Err(bad(format_args!("{what}: index out of range")));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Mapped dictionary
// ---------------------------------------------------------------------------

/// Read-only dictionary view over mapped snapshot sections. Every lookup the
/// owned [`Dictionary`] answers through hash maps is answered here by binary
/// search over sorted permutation arrays — nothing was rebuilt at load time.
#[derive(Clone, Copy, Debug)]
pub struct MappedDict<'a> {
    string_bytes: &'a [u8],
    string_offsets: &'a [u64],
    string_sorted: &'a [u32],
    term_tags: &'a [u8],
    term_payloads: &'a [u64],
    term_sorted: &'a [u32],
    predicate_syms: &'a [u32],
    predicate_sorted: &'a [u32],
}

impl<'a> MappedDict<'a> {
    /// Number of interned strings.
    pub fn string_count(&self) -> usize {
        self.string_sorted.len()
    }

    /// Resolve an interned string symbol.
    pub fn resolve_sym(&self, sym: u32) -> &'a str {
        let lo = self.string_offsets[sym as usize] as usize;
        let hi = self.string_offsets[sym as usize + 1] as usize;
        // SAFETY: section UTF-8 and offset boundaries validated at open.
        unsafe { std::str::from_utf8_unchecked(&self.string_bytes[lo..hi]) }
    }

    /// Find the symbol of `s`, if interned.
    pub fn find_sym(&self, s: &str) -> Option<u32> {
        let i = self
            .string_sorted
            .partition_point(|&sym| self.resolve_sym(sym) < s);
        let &sym = self.string_sorted.get(i)?;
        (self.resolve_sym(sym) == s).then_some(sym)
    }

    /// The term behind a node id.
    pub fn node_term(&self, id: NodeId) -> Term {
        decode_term(self.term_tags[id.index()], self.term_payloads[id.index()])
    }

    /// Look up a term's node id.
    pub fn find_term(&self, term: Term) -> Option<NodeId> {
        let key = encode_term(term);
        let i = self.term_sorted.partition_point(|&t| {
            (self.term_tags[t as usize], self.term_payloads[t as usize]) < key
        });
        let &t = self.term_sorted.get(i)?;
        ((self.term_tags[t as usize], self.term_payloads[t as usize]) == key)
            .then_some(NodeId::new(t))
    }

    /// Look up a resource node by IRI.
    pub fn find_resource(&self, iri: &str) -> Option<NodeId> {
        self.find_term(Term::Resource(self.find_sym(iri)?))
    }

    /// Look up a string-literal node.
    pub fn find_str_literal(&self, value: &str) -> Option<NodeId> {
        self.find_term(Term::Literal(Literal::Str(self.find_sym(value)?)))
    }

    /// Look up a predicate id by name.
    pub fn find_predicate(&self, name: &str) -> Option<PredicateId> {
        let i = self
            .predicate_sorted
            .partition_point(|&p| self.resolve_sym(self.predicate_syms[p as usize]) < name);
        let &p = self.predicate_sorted.get(i)?;
        (self.resolve_sym(self.predicate_syms[p as usize]) == name).then_some(PredicateId::new(p))
    }

    /// The name of a predicate id.
    pub fn predicate_name(&self, id: PredicateId) -> &'a str {
        self.resolve_sym(self.predicate_syms[id.index()])
    }

    /// Number of distinct nodes.
    pub fn node_count(&self) -> usize {
        self.term_tags.len()
    }

    /// Number of distinct predicates.
    pub fn predicate_count(&self) -> usize {
        self.predicate_syms.len()
    }
}
