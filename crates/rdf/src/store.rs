//! The triple store: sorted-array indexes over dictionary-encoded triples.
//!
//! Four index orders cover every access pattern KBQA issues:
//!
//! | index | sorted by | answers |
//! |-------|-----------|---------|
//! | SPO   | (s, p, o) | `V(e, p)` value lookups (Eq 6), out-edges |
//! | SOP   | (s, o, p) | "which predicates connect e and v?" (Eq 8) |
//! | POS   | (p, o, s) | per-predicate extents, reverse lookups |
//! | OPS   | (o, p, s) | in-edges, value→entity grounding |
//!
//! Additionally, the store keeps the original insertion order (`log`) and
//! exposes it via [`TripleStore::scan`]: the predicate-expansion BFS of
//! Sec 6.2 is defined in terms of *sequential scans over the on-disk triple
//! file* joined against an in-memory frontier, and the harness counts scan
//! passes through this API to validate the O(k·|K|) claim.

use std::sync::atomic::{AtomicU64, Ordering};

use kbqa_common::hash::FxHashMap;
use serde::{Deserialize, Serialize};

use crate::dictionary::Dictionary;
use crate::term::Term;
use crate::triple::{NodeId, PredicateId, Triple};

/// An immutable, fully indexed RDF store. Construct via
/// [`crate::GraphBuilder`].
#[derive(Debug, Serialize, Deserialize)]
pub struct TripleStore {
    dict: Dictionary,
    /// Insertion ("disk") order.
    log: Vec<Triple>,
    spo: Vec<Triple>,
    sop: Vec<Triple>,
    pos: Vec<Triple>,
    ops: Vec<Triple>,
    /// Predicates whose objects are treated as human-readable names
    /// (`name`, `alias`, …) for entity grounding.
    name_predicates: Vec<PredicateId>,
    /// Lowercased surface name → resource nodes bearing it.
    name_index: FxHashMap<String, Vec<NodeId>>,
    /// Scan-pass telemetry (not persisted; diagnostic only).
    #[serde(skip)]
    scan_passes: AtomicU64,
}

impl TripleStore {
    /// Build a store from interned triples. Deduplicates; `name_predicates`
    /// drive the entity-name index.
    pub(crate) fn build(
        dict: Dictionary,
        mut triples: Vec<Triple>,
        name_predicates: Vec<PredicateId>,
    ) -> Self {
        // Deduplicate while preserving first-seen ("disk") order.
        let mut seen = kbqa_common::hash::FxHashSet::default();
        triples.retain(|t| seen.insert(*t));

        let log = triples;
        let mut spo = log.clone();
        spo.sort_unstable_by_key(Triple::spo_key);
        let mut sop = log.clone();
        sop.sort_unstable_by_key(Triple::sop_key);
        let mut pos = log.clone();
        pos.sort_unstable_by_key(Triple::pos_key);
        let mut ops = log.clone();
        ops.sort_unstable_by_key(Triple::ops_key);

        let mut store = Self {
            dict,
            log,
            spo,
            sop,
            pos,
            ops,
            name_predicates,
            name_index: FxHashMap::default(),
            scan_passes: AtomicU64::new(0),
        };
        store.build_name_index();
        store
    }

    fn build_name_index(&mut self) {
        let mut index: FxHashMap<String, Vec<NodeId>> = FxHashMap::default();
        for &p in &self.name_predicates {
            for t in self.triples_for_predicate(p) {
                if let Some(name) = self.dict.render_str(t.o) {
                    let key = name.to_lowercase();
                    let nodes = index.entry(key).or_default();
                    if !nodes.contains(&t.s) {
                        nodes.push(t.s);
                    }
                }
            }
        }
        self.name_index = index;
    }

    /// The dictionary backing this store.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Total number of stored (distinct) triples.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Sequential scan in insertion order — the "read the KB file once"
    /// primitive of Sec 6.2. Each call counts as one scan pass.
    pub fn scan(&self) -> &[Triple] {
        self.scan_passes.fetch_add(1, Ordering::Relaxed);
        &self.log
    }

    /// How many full scans have been issued (telemetry for the expansion
    /// harness).
    pub fn scan_passes(&self) -> u64 {
        self.scan_passes.load(Ordering::Relaxed)
    }

    /// All triples with subject `s` (SPO range).
    pub fn out_edges(&self, s: NodeId) -> &[Triple] {
        range_by(&self.spo, |t| t.s.cmp(&s))
    }

    /// All triples with object `o` (OPS range).
    pub fn in_edges(&self, o: NodeId) -> &[Triple] {
        range_by(&self.ops, |t| t.o.cmp(&o))
    }

    /// All triples with predicate `p` (POS range).
    pub fn triples_for_predicate(&self, p: PredicateId) -> &[Triple] {
        range_by(&self.pos, |t| t.p.cmp(&p))
    }

    /// `V(e, p)` — objects reachable from `s` via `p` (paper Table 2).
    pub fn objects(&self, s: NodeId, p: PredicateId) -> impl Iterator<Item = NodeId> + '_ {
        range_by(&self.spo, move |t| (t.s, t.p).cmp(&(s, p)))
            .iter()
            .map(|t| t.o)
    }

    /// `|V(e, p)|` without materializing, for `P(v|e,p)` (Eq 6).
    pub fn object_count(&self, s: NodeId, p: PredicateId) -> usize {
        range_by(&self.spo, move |t| (t.s, t.p).cmp(&(s, p))).len()
    }

    /// Subjects `s` with `(s, p, o)` in the store.
    pub fn subjects(&self, p: PredicateId, o: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        range_by(&self.pos, move |t| (t.p, t.o).cmp(&(p, o)))
            .iter()
            .map(|t| t.s)
    }

    /// Predicates directly connecting `s` to `o` — the Eq (8) probe
    /// `∃p, (e, p, v) ∈ K`.
    pub fn predicates_between(
        &self,
        s: NodeId,
        o: NodeId,
    ) -> impl Iterator<Item = PredicateId> + '_ {
        range_by(&self.sop, move |t| (t.s, t.o).cmp(&(s, o)))
            .iter()
            .map(|t| t.p)
    }

    /// Membership test.
    pub fn contains(&self, s: NodeId, p: PredicateId, o: NodeId) -> bool {
        self.spo
            .binary_search_by(|t| t.spo_key().cmp(&(s, p, o)))
            .is_ok()
    }

    /// The configured name predicates.
    pub fn name_predicates(&self) -> &[PredicateId] {
        &self.name_predicates
    }

    /// Resources whose name matches `name` case-insensitively — the KB-side
    /// check of the paper's entity identification ("is it an entity's name in
    /// the knowledge base?").
    pub fn entities_named(&self, name: &str) -> &[NodeId] {
        // Fast path: already lowercase (tokenizer output), no allocation.
        if name.chars().all(|c| !c.is_uppercase()) {
            return self.name_index.get(name).map(Vec::as_slice).unwrap_or(&[]);
        }
        self.name_index
            .get(&name.to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All names of a resource (objects of its name-predicate edges).
    pub fn names_of(&self, node: NodeId) -> Vec<&str> {
        self.names_of_iter(node).collect()
    }

    /// Iterate the names of a resource lazily — the allocation-free variant
    /// of [`TripleStore::names_of`] for hot paths that only need the first
    /// name (answer rendering materializes thousands of surfaces per second).
    pub fn names_of_iter(&self, node: NodeId) -> impl Iterator<Item = &str> + '_ {
        self.name_predicates
            .iter()
            .flat_map(move |&p| range_by(&self.spo, move |t| (t.s, t.p).cmp(&(node, p))))
            .filter_map(|t| self.dict.render_str(t.o))
    }

    /// Human-facing surface form: literals render directly; resources render
    /// their first name, falling back to the IRI.
    pub fn surface(&self, node: NodeId) -> String {
        self.surface_ref(node).into_owned()
    }

    /// Borrowed variant of [`TripleStore::surface`]: textual nodes (string
    /// literals, named resources, IRIs) borrow from the store; only numeric
    /// literals, which must be formatted, allocate.
    pub fn surface_ref(&self, node: NodeId) -> std::borrow::Cow<'_, str> {
        match self.dict.node_term(node) {
            Term::Literal(_) => match self.dict.render_str(node) {
                Some(s) => std::borrow::Cow::Borrowed(s),
                None => std::borrow::Cow::Owned(self.dict.render(node)),
            },
            Term::Resource(_) => match self.names_of_iter(node).next() {
                Some(name) => std::borrow::Cow::Borrowed(name),
                None => match self.dict.render_str(node) {
                    Some(iri) => std::borrow::Cow::Borrowed(iri),
                    None => std::borrow::Cow::Owned(self.dict.render(node)),
                },
            },
        }
    }

    /// Iterate every distinct `(name, nodes)` pair in the name index
    /// (gazetteer construction).
    pub fn name_entries(&self) -> impl Iterator<Item = (&str, &[NodeId])> {
        self.name_index
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Rebuild derived state after deserialization.
    pub fn rebuild_index(&mut self) {
        self.dict.rebuild_index();
        self.build_name_index();
    }
}

/// Binary-search the contiguous run of `sorted` where `cmp` returns `Equal`.
/// `cmp` must be monotone w.r.t. the slice's sort order (compare a prefix of
/// the sort key against a fixed probe).
fn range_by<F>(sorted: &[Triple], cmp: F) -> &[Triple]
where
    F: Fn(&Triple) -> std::cmp::Ordering,
{
    let start = sorted.partition_point(|t| cmp(t) == std::cmp::Ordering::Less);
    let rest = &sorted[start..];
    let len = rest.partition_point(|t| cmp(t) == std::cmp::Ordering::Equal);
    &rest[..len]
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::triple::NodeId;

    /// Build the paper's Fig. 1 toy KB.
    fn toy_kb() -> (crate::TripleStore, ToyIds) {
        let mut b = GraphBuilder::new();
        let obama = b.resource("res/barack_obama");
        let marriage = b.resource("res/marriage_1");
        let michelle = b.resource("res/michelle_obama");
        let honolulu = b.resource("res/honolulu");

        b.name(obama, "Barack Obama");
        b.name(michelle, "Michelle Obama");
        b.name(honolulu, "Honolulu");

        b.fact_year(obama, "dob", 1961);
        b.fact_str(obama, "category", "Person");
        b.fact_str(obama, "category", "Politician");
        b.link(obama, "marriage", marriage);
        b.fact_year(marriage, "date", 1992);
        b.fact_str(marriage, "category", "Event");
        b.link(marriage, "person", michelle);
        b.fact_year(michelle, "dob", 1964);
        b.fact_str(michelle, "category", "Person");
        b.link(obama, "pob", honolulu);
        b.fact_int(honolulu, "population", 390_000);
        b.fact_str(honolulu, "category", "City");

        let ids = ToyIds {
            obama,
            marriage,
            michelle,
            honolulu,
        };
        (b.build(), ids)
    }

    struct ToyIds {
        obama: NodeId,
        marriage: NodeId,
        michelle: NodeId,
        honolulu: NodeId,
    }

    #[test]
    fn objects_returns_values() {
        let (store, ids) = toy_kb();
        let dob = store.dict().find_predicate("dob").unwrap();
        let values: Vec<String> = store
            .objects(ids.obama, dob)
            .map(|o| store.dict().render(o))
            .collect();
        assert_eq!(values, vec!["1961"]);
        assert_eq!(store.object_count(ids.obama, dob), 1);
    }

    #[test]
    fn predicates_between_finds_the_connection() {
        let (store, ids) = toy_kb();
        let pop_val = store
            .dict()
            .find_term(crate::Term::Literal(crate::Literal::Int(390_000)));
        let preds: Vec<&str> = store
            .predicates_between(ids.honolulu, pop_val.unwrap())
            .map(|p| store.dict().predicate_name(p))
            .collect();
        assert_eq!(preds, vec!["population"]);
    }

    #[test]
    fn no_direct_edge_between_obama_and_michelle_name() {
        // The "spouse of" intent is a path, not an edge — exactly the gap
        // predicate expansion closes.
        let (store, ids) = toy_kb();
        let michelle_name = store.dict().find_str_literal("Michelle Obama").unwrap();
        assert_eq!(
            store.predicates_between(ids.obama, michelle_name).count(),
            0
        );
    }

    #[test]
    fn name_grounding_is_case_insensitive() {
        let (store, ids) = toy_kb();
        assert_eq!(store.entities_named("barack obama"), &[ids.obama]);
        assert_eq!(store.entities_named("Barack Obama"), &[ids.obama]);
        assert_eq!(store.entities_named("BARACK OBAMA"), &[ids.obama]);
        assert!(store.entities_named("nobody").is_empty());
    }

    #[test]
    fn surface_prefers_names_for_resources() {
        let (store, ids) = toy_kb();
        assert_eq!(store.surface(ids.michelle), "Michelle Obama");
        // CVT node has no name; falls back to IRI.
        assert_eq!(store.surface(ids.marriage), "res/marriage_1");
    }

    #[test]
    fn surface_ref_matches_surface_and_borrows_text() {
        let (store, ids) = toy_kb();
        for node in [ids.obama, ids.marriage, ids.michelle, ids.honolulu] {
            assert_eq!(store.surface_ref(node).as_ref(), store.surface(node));
        }
        // Named resources and string literals borrow; numeric literals own.
        assert!(matches!(
            store.surface_ref(ids.michelle),
            std::borrow::Cow::Borrowed(_)
        ));
        let pop_val = store
            .dict()
            .find_term(crate::Term::Literal(crate::Literal::Int(390_000)))
            .unwrap();
        assert_eq!(store.surface_ref(pop_val).as_ref(), "390000");
        assert!(matches!(
            store.surface_ref(pop_val),
            std::borrow::Cow::Owned(_)
        ));
    }

    #[test]
    fn names_of_iter_matches_names_of() {
        let (store, ids) = toy_kb();
        for node in [ids.obama, ids.marriage, ids.honolulu] {
            let eager = store.names_of(node);
            let lazy: Vec<&str> = store.names_of_iter(node).collect();
            assert_eq!(eager, lazy);
        }
    }

    #[test]
    fn in_and_out_edges() {
        let (store, ids) = toy_kb();
        // obama: dob, category x2, marriage, pob, name = 6 out-edges.
        assert_eq!(store.out_edges(ids.obama).len(), 6);
        let michelle_in = store.in_edges(ids.michelle);
        assert_eq!(michelle_in.len(), 1);
        assert_eq!(michelle_in[0].s, ids.marriage);
    }

    #[test]
    fn contains_and_dedup() {
        let (store, ids) = toy_kb();
        let dob = store.dict().find_predicate("dob").unwrap();
        let y1961 = store
            .dict()
            .find_term(crate::Term::Literal(crate::Literal::Year(1961)))
            .unwrap();
        assert!(store.contains(ids.obama, dob, y1961));
        assert!(!store.contains(ids.michelle, dob, y1961));
    }

    #[test]
    fn duplicate_triples_are_stored_once() {
        let mut b = GraphBuilder::new();
        let a = b.resource("a");
        b.fact_int(a, "x", 1);
        b.fact_int(a, "x", 1);
        let store = b.build();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn scan_counts_passes() {
        let (store, _) = toy_kb();
        assert_eq!(store.scan_passes(), 0);
        let n = store.scan().len();
        assert_eq!(n, store.len());
        store.scan();
        assert_eq!(store.scan_passes(), 2);
    }

    #[test]
    fn multi_valued_predicates_enumerate_all_values() {
        let (store, ids) = toy_kb();
        let cat = store.dict().find_predicate("category").unwrap();
        let cats: Vec<String> = store
            .objects(ids.obama, cat)
            .map(|o| store.dict().render(o))
            .collect();
        assert_eq!(cats.len(), 2);
        assert!(cats.contains(&"Person".to_owned()));
        assert!(cats.contains(&"Politician".to_owned()));
    }

    #[test]
    fn subjects_reverse_lookup() {
        let (store, ids) = toy_kb();
        let cat = store.dict().find_predicate("category").unwrap();
        let person = store.dict().find_str_literal("Person").unwrap();
        let people: Vec<NodeId> = store.subjects(cat, person).collect();
        assert_eq!(people.len(), 2);
        assert!(people.contains(&ids.obama));
        assert!(people.contains(&ids.michelle));
    }

    #[test]
    fn shared_name_maps_to_multiple_entities() {
        let mut b = GraphBuilder::new();
        let springfield_il = b.resource("res/springfield_il");
        let springfield_ma = b.resource("res/springfield_ma");
        b.name(springfield_il, "Springfield");
        b.name(springfield_ma, "Springfield");
        let store = b.build();
        let hits = store.entities_named("springfield");
        assert_eq!(hits.len(), 2);
    }
}
