//! The triple store: a backend-polymorphic query surface over
//! dictionary-encoded, predicate-partitioned columnar triples.
//!
//! The data plane lives in [`crate::columnar`]: per-predicate `(s, o)` and
//! `(o, s)` sorted runs over parallel `u32` columns, plus the insertion-order
//! log. Every access pattern KBQA issues maps onto one of them:
//!
//! | lookup | run | answers |
//! |--------|-----|---------|
//! | `objects(s, p)` | SO | `V(e, p)` value lookups (Eq 6) — zero-copy slice |
//! | `subjects(p, o)` | OS | reverse lookups, value→entity grounding |
//! | `predicates_between(s, o)` | SO probe per `p` | "which predicates connect e and v?" (Eq 8) |
//! | `out_edges` / `in_edges` | SO / OS across `p` | neighborhood walks |
//! | `scan()` | log | the "read the KB file once" primitive of Sec 6.2 |
//!
//! Storage is behind [`StoreBackend`]: [`BackendKind::InMemory`] owns the
//! columns on the heap, [`BackendKind::Mapped`] serves them straight out of
//! an `mmap`ed [`Snapshot`] — same code paths, pinned equivalent by
//! `rdf/tests/backend_equivalence.rs`. The expansion harness still counts
//! [`TripleStore::scan`] passes to validate the O(k·|K|) claim.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Serialize, Value};

use crate::backend::{BackendKind, InMemoryBackend, MappedBackend, StoreBackend};
use crate::columnar::ColsView;
use crate::dictionary::{DictRef, Dictionary};
use crate::snapshot::{self, Snapshot, SnapshotSource};
use crate::term::Term;
use crate::triple::{NodeId, PredicateId, Triple};

/// An immutable, fully indexed RDF store. Construct via
/// [`crate::GraphBuilder`], deserialization, or [`TripleStore::from_snapshot`].
#[derive(Debug)]
pub struct TripleStore {
    backend: Backend,
    /// Optional direct `(s, p) → SO-run range` index; see
    /// [`TripleStore::build_adjacency_index`]. Derived, never persisted.
    adj: Option<AdjacencyIndex>,
    /// Scan-pass telemetry (not persisted; diagnostic only).
    scan_passes: AtomicU64,
}

/// Direct `(subject, predicate) → objects-run range` index over the SO
/// columns: one hash probe instead of a galloping binary search. The value
/// is a `(start, len)` range into the *global* `so_o` column, so resolving a
/// hit is a bounds-checked slice — byte-identical to what the search returns.
#[derive(Debug, Default)]
struct AdjacencyIndex {
    runs: kbqa_common::hash::FxHashMap<u64, (u32, u32)>,
}

impl AdjacencyIndex {
    /// Map key for `(s, p)`. The packed word is pre-avalanched with
    /// splitmix64 (a bijection — no keys collide that didn't already)
    /// because Fx-hashing a single `u64` is one multiply, whose low bits —
    /// the hashbrown bucket index — depend only on the low bits of the
    /// word. Packed as `s << 32 | p` those low bits are the predicate id
    /// alone, which would drop every entry of a million-triple store into
    /// ~|predicates| buckets and turn O(1) probes into 10µs chain walks.
    #[inline]
    fn key(s: u32, p: PredicateId) -> u64 {
        crate::shard::mix64((u64::from(s) << 32) | u64::from(p.raw()))
    }

    fn build(cols: &ColsView<'_>) -> Self {
        let mut runs = kbqa_common::hash::FxHashMap::default();
        for p in 0..cols.predicate_count() {
            let pid = PredicateId::new(p as u32);
            let base = cols.so_bounds[p] as usize;
            let (run_s, _) = cols.so_run(pid);
            let mut i = 0usize;
            while i < run_s.len() {
                let s = run_s[i];
                let mut j = i + 1;
                while j < run_s.len() && run_s[j] == s {
                    j += 1;
                }
                runs.insert(Self::key(s, pid), ((base + i) as u32, (j - i) as u32));
                i = j;
            }
        }
        Self { runs }
    }

    /// The objects of `(s, p, ·)` — exactly the slice
    /// [`ColsView::objects`] would return, resolved by one probe.
    #[inline]
    fn objects<'a>(&self, cols: &ColsView<'a>, s: u32, p: PredicateId) -> &'a [u32] {
        match self.runs.get(&Self::key(s, p)) {
            Some(&(start, len)) => &cols.so_o[start as usize..start as usize + len as usize],
            None => &[],
        }
    }
}

#[derive(Debug)]
enum Backend {
    InMemory(InMemoryBackend),
    Mapped(MappedBackend),
}

impl TripleStore {
    /// Build a store from interned triples. Deduplicates; `name_predicates`
    /// drive the entity-name index.
    pub(crate) fn build(
        dict: Dictionary,
        triples: Vec<Triple>,
        name_predicates: Vec<PredicateId>,
    ) -> Self {
        Self {
            backend: Backend::InMemory(InMemoryBackend::build(dict, triples, name_predicates)),
            adj: None,
            scan_passes: AtomicU64::new(0),
        }
    }

    /// Serve directly out of an open snapshot — the zero-copy load path.
    pub fn from_snapshot(snap: Snapshot) -> Self {
        Self {
            backend: Backend::Mapped(MappedBackend::new(snap)),
            adj: None,
            scan_passes: AtomicU64::new(0),
        }
    }

    /// Build the direct `(s, p) → run` adjacency index, after which
    /// [`TripleStore::objects_slice`] / [`TripleStore::object_count`]
    /// resolve by one hash probe instead of a galloping binary search —
    /// identical slices, fewer cache misses on large mapped runs.
    ///
    /// The index is derived state: it is never persisted (the zero-copy
    /// snapshot format stays fixed) and is rebuilt by whoever derives the
    /// store — the shard partitioner builds it on every shard because shards
    /// are reconstructed per epoch anyway.
    pub fn build_adjacency_index(&mut self) {
        self.adj = Some(AdjacencyIndex::build(&self.cols()));
    }

    /// Whether [`TripleStore::build_adjacency_index`] has run.
    pub fn has_adjacency_index(&self) -> bool {
        self.adj.is_some()
    }

    /// Materialize the logical content — dictionary, deduplicated triple
    /// log (insertion order), name-predicate configuration — from either
    /// backend. This is the partitioner's input: shard stores are rebuilt
    /// from these parts.
    pub fn to_owned_parts(&self) -> (Dictionary, Vec<Triple>, Vec<PredicateId>) {
        match &self.backend {
            Backend::InMemory(b) => {
                let v = b.cols.view();
                let triples: Vec<Triple> = (0..v.len()).map(|i| v.triple_at(i)).collect();
                (b.dict.clone(), triples, b.name_predicates.clone())
            }
            Backend::Mapped(m) => m.snapshot().to_parts(),
        }
    }

    /// The active storage backend, as the [`StoreBackend`] contract.
    pub fn backend(&self) -> &dyn StoreBackend {
        match &self.backend {
            Backend::InMemory(b) => b,
            Backend::Mapped(m) => m,
        }
    }

    /// Which backend this store runs on (`in_memory` / `mapped`).
    pub fn backend_kind(&self) -> BackendKind {
        self.backend().kind()
    }

    /// Write this store as a snapshot file at `path` (atomic: temp +
    /// `fsync` + rename). Returns the Fx-64 digest of the final file, which
    /// callers record in the `.fxsum` sidecar.
    pub fn write_snapshot(&self, path: &Path) -> kbqa_common::error::Result<u64> {
        match &self.backend {
            Backend::InMemory(b) => {
                let (strings, terms, predicate_syms) = b.dict.raw_parts();
                let src = SnapshotSource {
                    strings,
                    terms,
                    predicate_syms,
                    cols: b.cols.view(),
                    name_predicates: &b.name_predicates,
                    name_entries: b
                        .name_index
                        .iter()
                        .map(|(k, v)| (k.as_str(), v.as_slice()))
                        .collect(),
                };
                snapshot::write_source(&src, path)
            }
            // A mapped store already *is* its snapshot; re-snapshotting is a
            // verbatim byte copy.
            Backend::Mapped(m) => snapshot::write_bytes(m.snapshot().bytes(), path),
        }
    }

    fn cols(&self) -> ColsView<'_> {
        match &self.backend {
            Backend::InMemory(b) => b.cols.view(),
            Backend::Mapped(m) => m.snapshot().cols(),
        }
    }

    /// The dictionary view backing this store.
    pub fn dict(&self) -> DictRef<'_> {
        self.backend().dict()
    }

    /// Total number of stored (distinct) triples.
    pub fn len(&self) -> usize {
        self.cols().len()
    }

    /// Whether the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.cols().is_empty()
    }

    /// Sequential scan in insertion order — the "read the KB file once"
    /// primitive of Sec 6.2. Each call counts as one scan pass.
    pub fn scan(&self) -> impl Iterator<Item = Triple> + '_ {
        self.scan_passes.fetch_add(1, Ordering::Relaxed);
        let v = self.cols();
        (0..v.len()).map(move |i| v.triple_at(i))
    }

    /// How many full scans have been issued (telemetry for the expansion
    /// harness).
    pub fn scan_passes(&self) -> u64 {
        self.scan_passes.load(Ordering::Relaxed)
    }

    /// All triples with subject `s`, ordered by `(p, o)`.
    pub fn out_edges(&self, s: NodeId) -> impl Iterator<Item = Triple> + '_ {
        let v = self.cols();
        (0..v.predicate_count() as u32).flat_map(move |p| {
            let pid = PredicateId::new(p);
            v.objects(s.raw(), pid)
                .iter()
                .map(move |&o| Triple::new(s, pid, NodeId::new(o)))
        })
    }

    /// All triples with object `o`, ordered by `(p, s)`.
    pub fn in_edges(&self, o: NodeId) -> impl Iterator<Item = Triple> + '_ {
        let v = self.cols();
        (0..v.predicate_count() as u32).flat_map(move |p| {
            let pid = PredicateId::new(p);
            v.subjects(pid, o.raw())
                .iter()
                .map(move |&s| Triple::new(NodeId::new(s), pid, o))
        })
    }

    /// All triples with predicate `p`, ordered by `(s, o)`.
    pub fn triples_for_predicate(&self, p: PredicateId) -> PredicateTriples<'_> {
        let (subjects, objects) = self.cols().so_run(p);
        PredicateTriples {
            subjects,
            objects,
            p,
        }
    }

    /// `V(e, p)` — objects reachable from `s` via `p` (paper Table 2),
    /// ascending by id.
    pub fn objects(&self, s: NodeId, p: PredicateId) -> impl Iterator<Item = NodeId> + '_ {
        self.objects_slice(s, p).iter().copied()
    }

    /// `V(e, p)` as a zero-copy slice straight off the SO run — the
    /// allocation-free bulk form for path traversal.
    pub fn objects_slice(&self, s: NodeId, p: PredicateId) -> &[NodeId] {
        let v = self.cols();
        match &self.adj {
            Some(adj) => snapshot::as_node_ids(adj.objects(&v, s.raw(), p)),
            None => snapshot::as_node_ids(v.objects(s.raw(), p)),
        }
    }

    /// `|V(e, p)|` without materializing, for `P(v|e,p)` (Eq 6).
    pub fn object_count(&self, s: NodeId, p: PredicateId) -> usize {
        self.objects_slice(s, p).len()
    }

    /// Subjects `s` with `(s, p, o)` in the store, ascending by id.
    pub fn subjects(&self, p: PredicateId, o: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.subjects_slice(p, o).iter().copied()
    }

    /// The subjects of `(·, p, o)` as a zero-copy slice off the OS run.
    pub fn subjects_slice(&self, p: PredicateId, o: NodeId) -> &[NodeId] {
        snapshot::as_node_ids(self.cols().subjects(p, o.raw()))
    }

    /// Predicates directly connecting `s` to `o` — the Eq (8) probe
    /// `∃p, (e, p, v) ∈ K`.
    pub fn predicates_between(
        &self,
        s: NodeId,
        o: NodeId,
    ) -> impl Iterator<Item = PredicateId> + '_ {
        let v = self.cols();
        (0..v.predicate_count() as u32).filter_map(move |p| {
            let pid = PredicateId::new(p);
            v.contains(s.raw(), pid, o.raw()).then_some(pid)
        })
    }

    /// Membership test.
    pub fn contains(&self, s: NodeId, p: PredicateId, o: NodeId) -> bool {
        self.cols().contains(s.raw(), p, o.raw())
    }

    /// The configured name predicates.
    pub fn name_predicates(&self) -> &[PredicateId] {
        self.backend().name_predicates()
    }

    /// Resources whose name matches `name` case-insensitively — the KB-side
    /// check of the paper's entity identification ("is it an entity's name in
    /// the knowledge base?").
    pub fn entities_named(&self, name: &str) -> &[NodeId] {
        // Fast path: already lowercase (tokenizer output), no allocation.
        if name.chars().all(|c| !c.is_uppercase()) {
            return self.backend().entities_named_lower(name);
        }
        self.backend().entities_named_lower(&name.to_lowercase())
    }

    /// All names of a resource (objects of its name-predicate edges).
    pub fn names_of(&self, node: NodeId) -> Vec<&str> {
        self.names_of_iter(node).collect()
    }

    /// Iterate the names of a resource lazily — the allocation-free variant
    /// of [`TripleStore::names_of`] for hot paths that only need the first
    /// name (answer rendering materializes thousands of surfaces per second).
    pub fn names_of_iter(&self, node: NodeId) -> impl Iterator<Item = &str> + '_ {
        let b = self.backend();
        let v = b.cols();
        let dict = b.dict();
        b.name_predicates()
            .iter()
            .flat_map(move |&p| v.objects(node.raw(), p).iter().copied())
            .filter_map(move |o| dict.render_str(NodeId::new(o)))
    }

    /// Human-facing surface form: literals render directly; resources render
    /// their first name, falling back to the IRI.
    pub fn surface(&self, node: NodeId) -> String {
        self.surface_ref(node).into_owned()
    }

    /// Borrowed variant of [`TripleStore::surface`]: textual nodes (string
    /// literals, named resources, IRIs) borrow from the store; only numeric
    /// literals, which must be formatted, allocate.
    pub fn surface_ref(&self, node: NodeId) -> std::borrow::Cow<'_, str> {
        let dict = self.dict();
        match dict.node_term(node) {
            Term::Literal(_) => match dict.render_str(node) {
                Some(s) => std::borrow::Cow::Borrowed(s),
                None => std::borrow::Cow::Owned(dict.render(node)),
            },
            Term::Resource(_) => match self.names_of_iter(node).next() {
                Some(name) => std::borrow::Cow::Borrowed(name),
                None => match dict.render_str(node) {
                    Some(iri) => std::borrow::Cow::Borrowed(iri),
                    None => std::borrow::Cow::Owned(dict.render(node)),
                },
            },
        }
    }

    /// Iterate every distinct `(name, nodes)` pair in the name index
    /// (gazetteer construction). Order is backend-defined.
    pub fn name_entries(&self) -> impl Iterator<Item = (&str, &[NodeId])> {
        self.backend().name_entries()
    }

    /// Rebuild derived state after deserialization. A mapped store has no
    /// derived state — everything is searched in place — so this is a no-op
    /// there.
    pub fn rebuild_index(&mut self) {
        if let Backend::InMemory(b) = &mut self.backend {
            b.dict.rebuild_index();
            b.rebuild_name_index();
        }
    }
}

/// Iterator over all triples of one predicate, in `(s, o)` order; returned
/// by [`TripleStore::triples_for_predicate`].
#[derive(Clone, Debug)]
pub struct PredicateTriples<'a> {
    subjects: &'a [u32],
    objects: &'a [u32],
    p: PredicateId,
}

impl PredicateTriples<'_> {
    /// Whether the predicate has no (remaining) triples.
    pub fn is_empty(&self) -> bool {
        self.subjects.is_empty()
    }
}

impl Iterator for PredicateTriples<'_> {
    type Item = Triple;

    fn next(&mut self) -> Option<Triple> {
        let (&s, rest_s) = self.subjects.split_first()?;
        let (&o, rest_o) = self.objects.split_first()?;
        self.subjects = rest_s;
        self.objects = rest_o;
        Some(Triple::new(NodeId::new(s), self.p, NodeId::new(o)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.subjects.len(), Some(self.subjects.len()))
    }
}

impl ExactSizeIterator for PredicateTriples<'_> {}

// Persisted (JSON) form: the logical content only — dictionary, deduplicated
// triple log, name-predicate configuration. Derived structures (runs, name
// index, lookup maps) are rebuilt on load. Mapped stores serialize by
// materializing the same logical content, so a JSON roundtrip of either
// backend yields an equivalent in-memory store.
impl Serialize for TripleStore {
    fn to_value(&self) -> Value {
        let (dict_value, triples, name_predicates) = match &self.backend {
            Backend::InMemory(b) => {
                let v = b.cols.view();
                let triples: Vec<Triple> = (0..v.len()).map(|i| v.triple_at(i)).collect();
                (b.dict.to_value(), triples, b.name_predicates.clone())
            }
            Backend::Mapped(m) => {
                let (dict, triples, name_predicates) = m.snapshot().to_parts();
                (dict.to_value(), triples, name_predicates)
            }
        };
        Value::Map(vec![
            ("dict".to_owned(), dict_value),
            ("triples".to_owned(), triples.to_value()),
            ("name_predicates".to_owned(), name_predicates.to_value()),
        ])
    }
}

impl serde::de::Deserialize for TripleStore {
    fn from_value(v: &Value) -> std::result::Result<Self, serde::de::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::de::Error::expected("map", v))?;
        let dict: Dictionary = serde::de::field(map, "dict")?;
        let triples: Vec<Triple> = serde::de::field(map, "triples")?;
        let name_predicates: Vec<PredicateId> = serde::de::field(map, "name_predicates")?;
        let mut store = Self::build(dict, triples, name_predicates);
        store.rebuild_index();
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::triple::NodeId;

    /// Build the paper's Fig. 1 toy KB.
    fn toy_kb() -> (crate::TripleStore, ToyIds) {
        let mut b = GraphBuilder::new();
        let obama = b.resource("res/barack_obama");
        let marriage = b.resource("res/marriage_1");
        let michelle = b.resource("res/michelle_obama");
        let honolulu = b.resource("res/honolulu");

        b.name(obama, "Barack Obama");
        b.name(michelle, "Michelle Obama");
        b.name(honolulu, "Honolulu");

        b.fact_year(obama, "dob", 1961);
        b.fact_str(obama, "category", "Person");
        b.fact_str(obama, "category", "Politician");
        b.link(obama, "marriage", marriage);
        b.fact_year(marriage, "date", 1992);
        b.fact_str(marriage, "category", "Event");
        b.link(marriage, "person", michelle);
        b.fact_year(michelle, "dob", 1964);
        b.fact_str(michelle, "category", "Person");
        b.link(obama, "pob", honolulu);
        b.fact_int(honolulu, "population", 390_000);
        b.fact_str(honolulu, "category", "City");

        let ids = ToyIds {
            obama,
            marriage,
            michelle,
            honolulu,
        };
        (b.build(), ids)
    }

    struct ToyIds {
        obama: NodeId,
        marriage: NodeId,
        michelle: NodeId,
        honolulu: NodeId,
    }

    #[test]
    fn objects_returns_values() {
        let (store, ids) = toy_kb();
        let dob = store.dict().find_predicate("dob").unwrap();
        let values: Vec<String> = store
            .objects(ids.obama, dob)
            .map(|o| store.dict().render(o))
            .collect();
        assert_eq!(values, vec!["1961"]);
        assert_eq!(store.object_count(ids.obama, dob), 1);
        assert_eq!(store.objects_slice(ids.obama, dob).len(), 1);
    }

    #[test]
    fn predicates_between_finds_the_connection() {
        let (store, ids) = toy_kb();
        let pop_val = store
            .dict()
            .find_term(crate::Term::Literal(crate::Literal::Int(390_000)));
        let preds: Vec<&str> = store
            .predicates_between(ids.honolulu, pop_val.unwrap())
            .map(|p| store.dict().predicate_name(p))
            .collect();
        assert_eq!(preds, vec!["population"]);
    }

    #[test]
    fn no_direct_edge_between_obama_and_michelle_name() {
        // The "spouse of" intent is a path, not an edge — exactly the gap
        // predicate expansion closes.
        let (store, ids) = toy_kb();
        let michelle_name = store.dict().find_str_literal("Michelle Obama").unwrap();
        assert_eq!(
            store.predicates_between(ids.obama, michelle_name).count(),
            0
        );
    }

    #[test]
    fn name_grounding_is_case_insensitive() {
        let (store, ids) = toy_kb();
        assert_eq!(store.entities_named("barack obama"), &[ids.obama]);
        assert_eq!(store.entities_named("Barack Obama"), &[ids.obama]);
        assert_eq!(store.entities_named("BARACK OBAMA"), &[ids.obama]);
        assert!(store.entities_named("nobody").is_empty());
    }

    #[test]
    fn surface_prefers_names_for_resources() {
        let (store, ids) = toy_kb();
        assert_eq!(store.surface(ids.michelle), "Michelle Obama");
        // CVT node has no name; falls back to IRI.
        assert_eq!(store.surface(ids.marriage), "res/marriage_1");
    }

    #[test]
    fn surface_ref_matches_surface_and_borrows_text() {
        let (store, ids) = toy_kb();
        for node in [ids.obama, ids.marriage, ids.michelle, ids.honolulu] {
            assert_eq!(store.surface_ref(node).as_ref(), store.surface(node));
        }
        // Named resources and string literals borrow; numeric literals own.
        assert!(matches!(
            store.surface_ref(ids.michelle),
            std::borrow::Cow::Borrowed(_)
        ));
        let pop_val = store
            .dict()
            .find_term(crate::Term::Literal(crate::Literal::Int(390_000)))
            .unwrap();
        assert_eq!(store.surface_ref(pop_val).as_ref(), "390000");
        assert!(matches!(
            store.surface_ref(pop_val),
            std::borrow::Cow::Owned(_)
        ));
    }

    #[test]
    fn names_of_iter_matches_names_of() {
        let (store, ids) = toy_kb();
        for node in [ids.obama, ids.marriage, ids.honolulu] {
            let eager = store.names_of(node);
            let lazy: Vec<&str> = store.names_of_iter(node).collect();
            assert_eq!(eager, lazy);
        }
    }

    #[test]
    fn in_and_out_edges() {
        let (store, ids) = toy_kb();
        // obama: dob, category x2, marriage, pob, name = 6 out-edges.
        assert_eq!(store.out_edges(ids.obama).count(), 6);
        let michelle_in: Vec<_> = store.in_edges(ids.michelle).collect();
        assert_eq!(michelle_in.len(), 1);
        assert_eq!(michelle_in[0].s, ids.marriage);
    }

    #[test]
    fn contains_and_dedup() {
        let (store, ids) = toy_kb();
        let dob = store.dict().find_predicate("dob").unwrap();
        let y1961 = store
            .dict()
            .find_term(crate::Term::Literal(crate::Literal::Year(1961)))
            .unwrap();
        assert!(store.contains(ids.obama, dob, y1961));
        assert!(!store.contains(ids.michelle, dob, y1961));
    }

    #[test]
    fn duplicate_triples_are_stored_once() {
        let mut b = GraphBuilder::new();
        let a = b.resource("a");
        b.fact_int(a, "x", 1);
        b.fact_int(a, "x", 1);
        let store = b.build();
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn scan_counts_passes() {
        let (store, _) = toy_kb();
        assert_eq!(store.scan_passes(), 0);
        let n = store.scan().count();
        assert_eq!(n, store.len());
        let _ = store.scan();
        assert_eq!(store.scan_passes(), 2);
    }

    #[test]
    fn multi_valued_predicates_enumerate_all_values() {
        let (store, ids) = toy_kb();
        let cat = store.dict().find_predicate("category").unwrap();
        let cats: Vec<String> = store
            .objects(ids.obama, cat)
            .map(|o| store.dict().render(o))
            .collect();
        assert_eq!(cats.len(), 2);
        assert!(cats.contains(&"Person".to_owned()));
        assert!(cats.contains(&"Politician".to_owned()));
    }

    #[test]
    fn subjects_reverse_lookup() {
        let (store, ids) = toy_kb();
        let cat = store.dict().find_predicate("category").unwrap();
        let person = store.dict().find_str_literal("Person").unwrap();
        let people: Vec<NodeId> = store.subjects(cat, person).collect();
        assert_eq!(people.len(), 2);
        assert!(people.contains(&ids.obama));
        assert!(people.contains(&ids.michelle));
    }

    #[test]
    fn shared_name_maps_to_multiple_entities() {
        let mut b = GraphBuilder::new();
        let springfield_il = b.resource("res/springfield_il");
        let springfield_ma = b.resource("res/springfield_ma");
        b.name(springfield_il, "Springfield");
        b.name(springfield_ma, "Springfield");
        let store = b.build();
        let hits = store.entities_named("springfield");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn built_stores_run_in_memory() {
        let (store, _) = toy_kb();
        assert_eq!(store.backend_kind(), crate::BackendKind::InMemory);
        assert_eq!(store.backend_kind().as_str(), "in_memory");
    }

    #[test]
    fn triples_for_predicate_is_exact_size() {
        let (store, _) = toy_kb();
        let cat = store.dict().find_predicate("category").unwrap();
        let iter = store.triples_for_predicate(cat);
        assert_eq!(iter.len(), 5);
        assert!(!iter.is_empty());
        assert_eq!(iter.count(), 5);
    }
}
