//! RDF terms: resources and literals.
//!
//! Following the paper's toy KB (Fig. 1), graph nodes are either *resources*
//! (entities like Barack Obama, or anonymous CVT nodes like the `marriage`
//! node) or *literals* (strings like "Michelle Obama", numbers like 390K,
//! years like 1961). Strings are interned in the [`crate::Dictionary`], so a
//! [`Term`] is a small copyable value.

use serde::{Deserialize, Serialize};

/// A literal value attached to the graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Literal {
    /// An interned string literal (symbol into the dictionary's string table).
    Str(u32),
    /// An integer (counts, populations, areas in fixed units).
    Int(i64),
    /// A calendar year — the paper's toy KB stores dates of birth as years.
    Year(i32),
}

impl Literal {
    /// Whether this literal is textual.
    pub fn is_str(&self) -> bool {
        matches!(self, Literal::Str(_))
    }
}

/// A graph node payload.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Term {
    /// A resource, identified by its interned IRI/local-name symbol.
    /// Resources carry no inherent surface form: names are ordinary `name`
    /// edges to string literals, exactly as in the paper's Fig. 1.
    Resource(u32),
    /// A literal node.
    Literal(Literal),
}

impl Term {
    /// Whether the term is a resource.
    pub fn is_resource(&self) -> bool {
        matches!(self, Term::Resource(_))
    }

    /// Whether the term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// The interned symbol, if the term is a resource.
    pub fn resource_sym(&self) -> Option<u32> {
        match self {
            Term::Resource(sym) => Some(*sym),
            Term::Literal(_) => None,
        }
    }

    /// The literal, if the term is one.
    pub fn literal(&self) -> Option<Literal> {
        match self {
            Term::Literal(l) => Some(*l),
            Term::Resource(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_is_small() {
        // Two words max: discriminants + payload. Keeps the dictionary compact.
        assert!(std::mem::size_of::<Term>() <= 24);
    }

    #[test]
    fn accessors() {
        let r = Term::Resource(5);
        assert!(r.is_resource());
        assert!(!r.is_literal());
        assert_eq!(r.resource_sym(), Some(5));
        assert_eq!(r.literal(), None);

        let l = Term::Literal(Literal::Int(390_000));
        assert!(l.is_literal());
        assert_eq!(l.literal(), Some(Literal::Int(390_000)));
        assert_eq!(l.resource_sym(), None);
    }

    #[test]
    fn literal_kinds_are_distinct() {
        assert_ne!(
            Term::Literal(Literal::Int(1961)),
            Term::Literal(Literal::Year(1961))
        );
        assert!(Literal::Str(0).is_str());
        assert!(!Literal::Int(0).is_str());
    }
}
