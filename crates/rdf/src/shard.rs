//! Subject-hash sharding of the triple store.
//!
//! The paper's online promise is BFQ over a billion-triple KB; one process
//! cannot hold that, so the serving plan partitions the store by **subject
//! hash** into N independent shards. [`ShardPlan`] is the pure routing
//! function (`entity → owning shard`), [`partition`] materializes the plan
//! into N self-contained [`TripleStore`]s, and [`ShardStats`] reports how
//! balanced the cut came out.
//!
//! Two properties make the cut *answer-preserving* (pinned by
//! `tests/shard_equivalence.rs`):
//!
//! 1. **Whole-subject ownership.** A shard owns every out-edge of each
//!    subject hashed to it, so `V(e, p)` evaluated on the owner equals the
//!    global lookup bit for bit — the SO run for `(e, p)` is the same set,
//!    sorted the same way.
//! 2. **Bounded out-neighborhood closure.** Expanded predicates traverse up
//!    to [`ShardPlan::closure_depth`] edges from the grounded entity, so each
//!    shard additionally replicates the full out-edge sets of every node
//!    reachable within that many hops of its owned subjects. Any
//!    `objects_via_path` walk of length ≤ `closure_depth` that *starts* on
//!    an owned subject therefore sees exactly the global graph. Longer
//!    paths (a model swap could intern them) fall back to the global store
//!    at the router — correctness never depends on the closure being deep
//!    enough.
//!
//! Shards are derived, rebuilt-per-epoch artifacts — unlike the global
//! mmap snapshot, they are free to carry auxiliary structures the zero-copy
//! format cannot: [`partition`] builds each shard with the direct
//! `(subject, predicate) → run` adjacency index
//! ([`TripleStore::build_adjacency_index`]), replacing the galloping binary
//! search over multi-megabyte mapped runs with one hash probe.

use serde::{Deserialize, Serialize};

use crate::dictionary::Dictionary;
use crate::store::TripleStore;
use crate::triple::{NodeId, Triple};

/// Hard cap on shard count: fan-out is tracked as a `u64` bitmask.
pub const MAX_SHARDS: usize = 64;

/// Default out-neighborhood closure depth. Matches the engine's default
/// maximum expanded-predicate length (`ExpansionConfig::max_len`), so every
/// path the default model can intern resolves shard-locally.
pub const DEFAULT_CLOSURE_DEPTH: usize = 3;

/// The pure sharding function: how many shards, who owns an entity, and how
/// deep the replicated out-neighborhood closure reaches.
///
/// The plan is persisted in the serving-bundle manifest so a warm start maps
/// the same cut it saved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    shards: usize,
    closure_depth: usize,
}

impl ShardPlan {
    /// A plan over `shards` shards (clamped to `1..=`[`MAX_SHARDS`]) with
    /// the default closure depth.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: shards.clamp(1, MAX_SHARDS),
            closure_depth: DEFAULT_CLOSURE_DEPTH,
        }
    }

    /// Override the closure depth (clamped to ≥ 1). Deeper closures
    /// replicate more but let longer expanded predicates resolve
    /// shard-locally.
    pub fn with_closure_depth(mut self, depth: usize) -> Self {
        self.closure_depth = depth.max(1);
        self
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Replicated out-neighborhood depth (in edges).
    pub fn closure_depth(&self) -> usize {
        self.closure_depth
    }

    /// The shard owning `node`. A splitmix64 finalizer over the raw id —
    /// dictionary ids are dense and insertion-ordered, so taking them mod N
    /// directly would alias generation order into shard skew.
    #[inline]
    pub fn owner(&self, node: NodeId) -> usize {
        (mix64(node.raw() as u64) % self.shards as u64) as usize
    }
}

impl Default for ShardPlan {
    fn default() -> Self {
        Self::new(1)
    }
}

/// splitmix64 finalizer: full-avalanche mix of a 64-bit value.
#[inline]
pub(crate) fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Balance report for one shard of a [`partition`] cut.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ShardStat {
    /// Subjects this shard owns (hash says so).
    pub owned_subjects: u64,
    /// Triples whose subject the shard owns.
    pub owned_triples: u64,
    /// Closure-replicated triples (owned elsewhere, mirrored here so
    /// expanded predicates resolve locally).
    pub replicated_triples: u64,
}

impl ShardStat {
    /// Total triples materialized in the shard store.
    pub fn total_triples(&self) -> u64 {
        self.owned_triples + self.replicated_triples
    }
}

/// Shard-local statistics of a full cut — the balance/replication report
/// operators read when sizing `KBQA_SHARDS`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ShardStats {
    /// Per-shard breakdown, indexed by shard id.
    pub shards: Vec<ShardStat>,
}

impl ShardStats {
    /// Largest shard's owned-triple count divided by the mean — 1.0 is a
    /// perfectly balanced cut.
    pub fn skew(&self) -> f64 {
        if self.shards.is_empty() {
            return 1.0;
        }
        let total: u64 = self.shards.iter().map(|s| s.owned_triples).sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.shards.len() as f64;
        let max = self
            .shards
            .iter()
            .map(|s| s.owned_triples)
            .max()
            .unwrap_or(0);
        max as f64 / mean
    }

    /// Fraction of all shard-resident triples that are closure replicas.
    pub fn replication_overhead(&self) -> f64 {
        let owned: u64 = self.shards.iter().map(|s| s.owned_triples).sum();
        let total: u64 = self.shards.iter().map(|s| s.total_triples()).sum();
        if total == 0 {
            return 0.0;
        }
        (total - owned) as f64 / total as f64
    }
}

/// Materialize `plan` against `store`: N self-contained in-memory shard
/// stores (each with its adjacency index built) plus the balance stats.
///
/// Shard stores carry the **full dictionary** (global `NodeId`s must keep
/// meaning shard-locally) but no name index — grounding and answer
/// materialization stay on the global store; shards exist to serve
/// `V(e, p)` lookups.
pub fn partition(store: &TripleStore, plan: &ShardPlan) -> (Vec<TripleStore>, ShardStats) {
    let (dict, triples, _name_predicates) = store.to_owned_parts();
    partition_parts(&dict, &triples, plan)
}

/// [`partition`] over pre-extracted store parts (the persist layer reuses
/// this when it already has the triple log in hand).
pub fn partition_parts(
    dict: &Dictionary,
    triples: &[Triple],
    plan: &ShardPlan,
) -> (Vec<TripleStore>, ShardStats) {
    let node_count = dict.node_count();

    // Subject → contiguous range of triple indices, via one argsort by s.
    let mut by_subject: Vec<u32> = (0..triples.len() as u32).collect();
    by_subject.sort_unstable_by_key(|&i| triples[i as usize].s.raw());
    // `starts[s] .. starts[s + 1]` indexes `by_subject` for subject `s`.
    let mut starts = vec![0u32; node_count + 2];
    for t in triples {
        starts[t.s.index() + 1] += 1;
    }
    for i in 1..starts.len() {
        starts[i] += starts[i - 1];
    }
    let triples_of = |s: u32| -> &[u32] {
        let lo = starts[s as usize] as usize;
        let hi = starts[s as usize + 1] as usize;
        &by_subject[lo..hi]
    };

    // 0 = untouched this shard; stamps are shard id + 1, so one array
    // serves every shard without clearing.
    let mut expanded = vec![0u32; node_count];
    let mut stats = ShardStats::default();
    let mut stores = Vec::with_capacity(plan.shards());

    for shard in 0..plan.shards() {
        let stamp = shard as u32 + 1;
        let mut stat = ShardStat::default();
        let mut shard_triples: Vec<Triple> = Vec::new();
        let mut frontier: Vec<u32> = Vec::new();
        let mut next: Vec<u32> = Vec::new();

        // Level 0: owned subjects.
        for s in 0..node_count as u32 {
            if !triples_of(s).is_empty() && plan.owner(NodeId::new(s)) == shard {
                stat.owned_subjects += 1;
                frontier.push(s);
            }
        }

        for level in 0..plan.closure_depth() {
            if frontier.is_empty() {
                break;
            }
            for &s in &frontier {
                if expanded[s as usize] == stamp {
                    continue;
                }
                expanded[s as usize] = stamp;
                for &ti in triples_of(s) {
                    let t = triples[ti as usize];
                    shard_triples.push(t);
                    if level == 0 {
                        stat.owned_triples += 1;
                    } else {
                        stat.replicated_triples += 1;
                    }
                    if level + 1 < plan.closure_depth() && expanded[t.o.index()] != stamp {
                        next.push(t.o.raw());
                    }
                }
            }
            frontier.clear();
            std::mem::swap(&mut frontier, &mut next);
        }

        let mut shard_store = TripleStore::build(dict.clone(), shard_triples, Vec::new());
        shard_store.build_adjacency_index();
        stores.push(shard_store);
        stats.shards.push(stat);
    }

    (stores, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn world() -> TripleStore {
        let mut b = GraphBuilder::new();
        let capital = b.predicate("capital");
        let mut nodes = Vec::new();
        for i in 0..40 {
            let c = b.resource(&format!("city{i}"));
            b.name(c, &format!("City {i}"));
            b.fact_int(c, "population", 10_000 + i64::from(i));
            nodes.push(c);
        }
        for i in 0..39 {
            b.triple(nodes[i], capital, nodes[i + 1]);
        }
        b.build()
    }

    #[test]
    fn plan_clamps_and_routes_stably() {
        let plan = ShardPlan::new(0);
        assert_eq!(plan.shards(), 1);
        let plan = ShardPlan::new(1000);
        assert_eq!(plan.shards(), MAX_SHARDS);
        let plan = ShardPlan::new(4);
        let n = NodeId::new(17);
        assert_eq!(plan.owner(n), plan.owner(n));
        assert!(plan.owner(n) < 4);
    }

    #[test]
    fn owner_distribution_is_not_degenerate() {
        let plan = ShardPlan::new(4);
        let mut counts = [0usize; 4];
        for i in 0..10_000u32 {
            counts[plan.owner(NodeId::new(i))] += 1;
        }
        for &c in &counts {
            assert!(c > 1_500, "degenerate shard distribution: {counts:?}");
        }
    }

    #[test]
    fn partition_preserves_owned_lookups_exactly() {
        let store = world();
        let plan = ShardPlan::new(4);
        let (shards, stats) = partition(&store, &plan);
        assert_eq!(shards.len(), 4);
        let total_owned: u64 = stats.shards.iter().map(|s| s.owned_triples).sum();
        assert_eq!(total_owned, store.len() as u64);

        let dict = store.dict();
        let pc = dict.predicate_count() as u32;
        for s in store
            .scan()
            .map(|t| t.s)
            .collect::<std::collections::BTreeSet<_>>()
        {
            let shard = &shards[plan.owner(s)];
            for p in 0..pc {
                let pid = crate::PredicateId::new(p);
                assert_eq!(
                    store.objects_slice(s, pid),
                    shard.objects_slice(s, pid),
                    "owned lookup diverged for subject {s:?}"
                );
            }
        }
    }

    #[test]
    fn closure_covers_multi_hop_paths_from_owned_subjects() {
        let store = world();
        let plan = ShardPlan::new(3).with_closure_depth(3);
        let (shards, _) = partition(&store, &plan);
        let capital = store.dict().find_predicate("capital").unwrap();
        let path = crate::ExpandedPredicate::new(vec![capital, capital, capital]);
        let mut ws = crate::path::PathWorkspace::default();
        for t in store.scan().filter(|t| t.p == capital) {
            let shard = &shards[plan.owner(t.s)];
            let global = crate::path::objects_via_path(&store, t.s, &path);
            let mut local = Vec::new();
            crate::path::objects_via_path_into(shard, t.s, &path, &mut ws, &mut local);
            assert_eq!(global, local, "3-hop walk diverged from {:?}", t.s);
        }
    }

    #[test]
    fn stats_report_balance_and_replication() {
        let store = world();
        let (_, stats) = partition(&store, &ShardPlan::new(4));
        assert!(stats.skew() >= 1.0);
        assert!(stats.replication_overhead() >= 0.0);
        assert!(stats.replication_overhead() < 1.0);
    }
}
