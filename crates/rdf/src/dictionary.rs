//! Term dictionary: string/term interning for the store.
//!
//! Classic dictionary encoding: every distinct [`Term`] gets a dense
//! [`NodeId`], every distinct predicate name a dense [`PredicateId`], and the
//! triple arrays then hold only 12-byte id triples. The dictionary also owns
//! the string table shared by resource IRIs and string literals.

use kbqa_common::hash::FxHashMap;
use kbqa_common::interner::Interner;
use serde::{Deserialize, Serialize};

use crate::term::{Literal, Term};
use crate::triple::{NodeId, PredicateId};

/// Bidirectional term ⇄ id and predicate ⇄ id mapping.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Dictionary {
    strings: Interner,
    terms: Vec<Term>,
    #[serde(skip)]
    term_ids: FxHashMap<Term, NodeId>,
    predicates: Vec<u32>,
    #[serde(skip)]
    predicate_ids: FxHashMap<u32, PredicateId>,
}

impl Dictionary {
    /// Create an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a resource by its IRI/local name.
    pub fn resource(&mut self, iri: &str) -> NodeId {
        let sym = self.strings.intern(iri);
        self.term(Term::Resource(sym))
    }

    /// Intern a string literal.
    pub fn str_literal(&mut self, value: &str) -> NodeId {
        let sym = self.strings.intern(value);
        self.term(Term::Literal(Literal::Str(sym)))
    }

    /// Intern an integer literal.
    pub fn int_literal(&mut self, value: i64) -> NodeId {
        self.term(Term::Literal(Literal::Int(value)))
    }

    /// Intern a year literal.
    pub fn year_literal(&mut self, year: i32) -> NodeId {
        self.term(Term::Literal(Literal::Year(year)))
    }

    /// Intern an arbitrary term.
    pub fn term(&mut self, term: Term) -> NodeId {
        if let Some(&id) = self.term_ids.get(&term) {
            return id;
        }
        let id = NodeId::new(u32::try_from(self.terms.len()).expect("node id overflow"));
        self.terms.push(term);
        self.term_ids.insert(term, id);
        id
    }

    /// Intern a predicate name.
    pub fn predicate(&mut self, name: &str) -> PredicateId {
        let sym = self.strings.intern(name);
        if let Some(&id) = self.predicate_ids.get(&sym) {
            return id;
        }
        let id =
            PredicateId::new(u32::try_from(self.predicates.len()).expect("predicate overflow"));
        self.predicates.push(sym);
        self.predicate_ids.insert(sym, id);
        id
    }

    /// Look up a resource id without interning.
    pub fn find_resource(&self, iri: &str) -> Option<NodeId> {
        let sym = self.strings.get(iri)?;
        self.term_ids.get(&Term::Resource(sym)).copied()
    }

    /// Look up a string-literal node without interning.
    pub fn find_str_literal(&self, value: &str) -> Option<NodeId> {
        let sym = self.strings.get(value)?;
        self.term_ids
            .get(&Term::Literal(Literal::Str(sym)))
            .copied()
    }

    /// Look up an arbitrary term without interning.
    pub fn find_term(&self, term: Term) -> Option<NodeId> {
        self.term_ids.get(&term).copied()
    }

    /// Look up a predicate id by name without interning.
    pub fn find_predicate(&self, name: &str) -> Option<PredicateId> {
        let sym = self.strings.get(name)?;
        self.predicate_ids.get(&sym).copied()
    }

    /// The term behind a node id.
    pub fn node_term(&self, id: NodeId) -> Term {
        self.terms[id.index()]
    }

    /// The name of a predicate id.
    pub fn predicate_name(&self, id: PredicateId) -> &str {
        self.strings.resolve(self.predicates[id.index()])
    }

    /// Render a node's surface form: literals render their value; resources
    /// render their IRI (callers wanting the *human* name of an entity must
    /// go through the store's name index, since names are graph edges).
    pub fn render(&self, id: NodeId) -> String {
        match self.node_term(id) {
            Term::Resource(sym) => self.strings.resolve(sym).to_owned(),
            Term::Literal(Literal::Str(sym)) => self.strings.resolve(sym).to_owned(),
            Term::Literal(Literal::Int(v)) => v.to_string(),
            Term::Literal(Literal::Year(y)) => y.to_string(),
        }
    }

    /// Borrowed fast path of [`render`](Self::render) for textual nodes.
    pub fn render_str(&self, id: NodeId) -> Option<&str> {
        match self.node_term(id) {
            Term::Resource(sym) | Term::Literal(Literal::Str(sym)) => {
                Some(self.strings.resolve(sym))
            }
            _ => None,
        }
    }

    /// Number of distinct nodes.
    pub fn node_count(&self) -> usize {
        self.terms.len()
    }

    /// Number of distinct predicates.
    pub fn predicate_count(&self) -> usize {
        self.predicates.len()
    }

    /// Iterate all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.terms.len()).map(|i| NodeId::new(i as u32))
    }

    /// Iterate all predicate ids.
    pub fn predicates(&self) -> impl Iterator<Item = PredicateId> + '_ {
        (0..self.predicates.len()).map(|i| PredicateId::new(i as u32))
    }

    /// Rebuild derived lookup maps after deserialization.
    pub fn rebuild_index(&mut self) {
        self.strings.rebuild_index();
        self.term_ids = self
            .terms
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, NodeId::new(i as u32)))
            .collect();
        self.predicate_ids = self
            .predicates
            .iter()
            .enumerate()
            .map(|(i, &sym)| (sym, PredicateId::new(i as u32)))
            .collect();
    }

    /// Access the shared string interner (for tokenizer reuse).
    pub fn strings(&self) -> &Interner {
        &self.strings
    }

    /// Mutable access to the shared string interner.
    pub fn strings_mut(&mut self) -> &mut Interner {
        &mut self.strings
    }

    /// Borrow the raw parts the snapshot writer serializes.
    pub(crate) fn raw_parts(&self) -> (&Interner, &[Term], &[u32]) {
        (&self.strings, &self.terms, &self.predicates)
    }

    /// Reassemble a dictionary from snapshot parts, rebuilding lookup maps.
    pub(crate) fn from_raw_parts(
        strings: Interner,
        terms: Vec<Term>,
        predicates: Vec<u32>,
    ) -> Self {
        let mut dict = Self {
            strings,
            terms,
            term_ids: FxHashMap::default(),
            predicates,
            predicate_ids: FxHashMap::default(),
        };
        dict.rebuild_index();
        dict
    }
}

/// A backend-polymorphic, copyable dictionary handle.
///
/// [`crate::TripleStore::dict`] hands out one of these instead of
/// `&Dictionary` so the same call sites work whether the store owns its
/// dictionary ([`DictRef::Owned`], hash-map lookups) or maps it from a
/// snapshot ([`DictRef::Mapped`], binary search over sorted permutation
/// sections). The read API mirrors [`Dictionary`]'s exactly; returned `&str`
/// borrows carry the store's lifetime, not the handle's.
#[derive(Clone, Copy, Debug)]
pub enum DictRef<'a> {
    /// Borrowed in-memory dictionary.
    Owned(&'a Dictionary),
    /// Zero-copy view over mapped snapshot sections.
    Mapped(crate::snapshot::MappedDict<'a>),
}

impl<'a> DictRef<'a> {
    /// Look up a resource id by IRI.
    pub fn find_resource(&self, iri: &str) -> Option<NodeId> {
        match self {
            Self::Owned(d) => d.find_resource(iri),
            Self::Mapped(d) => d.find_resource(iri),
        }
    }

    /// Look up a string-literal node.
    pub fn find_str_literal(&self, value: &str) -> Option<NodeId> {
        match self {
            Self::Owned(d) => d.find_str_literal(value),
            Self::Mapped(d) => d.find_str_literal(value),
        }
    }

    /// Look up an arbitrary term.
    pub fn find_term(&self, term: Term) -> Option<NodeId> {
        match self {
            Self::Owned(d) => d.find_term(term),
            Self::Mapped(d) => d.find_term(term),
        }
    }

    /// Look up a predicate id by name.
    pub fn find_predicate(&self, name: &str) -> Option<PredicateId> {
        match self {
            Self::Owned(d) => d.find_predicate(name),
            Self::Mapped(d) => d.find_predicate(name),
        }
    }

    /// The term behind a node id.
    pub fn node_term(&self, id: NodeId) -> Term {
        match self {
            Self::Owned(d) => d.node_term(id),
            Self::Mapped(d) => d.node_term(id),
        }
    }

    /// The name of a predicate id.
    pub fn predicate_name(&self, id: PredicateId) -> &'a str {
        match self {
            Self::Owned(d) => d.strings.resolve(d.predicates[id.index()]),
            Self::Mapped(d) => d.predicate_name(id),
        }
    }

    /// Resolve an interned string symbol (IRI/literal text).
    pub fn resolve_sym(&self, sym: u32) -> &'a str {
        match self {
            Self::Owned(d) => d.strings.resolve(sym),
            Self::Mapped(d) => d.resolve_sym(sym),
        }
    }

    /// Render a node's surface form; see [`Dictionary::render`].
    pub fn render(&self, id: NodeId) -> String {
        match self.node_term(id) {
            Term::Resource(sym) | Term::Literal(Literal::Str(sym)) => {
                self.resolve_sym(sym).to_owned()
            }
            Term::Literal(Literal::Int(v)) => v.to_string(),
            Term::Literal(Literal::Year(y)) => y.to_string(),
        }
    }

    /// Borrowed fast path of [`DictRef::render`] for textual nodes.
    pub fn render_str(&self, id: NodeId) -> Option<&'a str> {
        match self.node_term(id) {
            Term::Resource(sym) | Term::Literal(Literal::Str(sym)) => Some(self.resolve_sym(sym)),
            _ => None,
        }
    }

    /// Number of distinct nodes.
    pub fn node_count(&self) -> usize {
        match self {
            Self::Owned(d) => d.node_count(),
            Self::Mapped(d) => d.node_count(),
        }
    }

    /// Number of distinct predicates.
    pub fn predicate_count(&self) -> usize {
        match self {
            Self::Owned(d) => d.predicate_count(),
            Self::Mapped(d) => d.predicate_count(),
        }
    }

    /// Iterate all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + 'a {
        (0..self.node_count()).map(|i| NodeId::new(i as u32))
    }

    /// Iterate all predicate ids.
    pub fn predicates(&self) -> impl Iterator<Item = PredicateId> + 'a {
        (0..self.predicate_count()).map(|i| PredicateId::new(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_across_kinds() {
        let mut dict = Dictionary::new();
        let a = dict.resource("barack_obama");
        let b = dict.resource("barack_obama");
        assert_eq!(a, b);

        // A resource and a string literal with the same spelling are
        // *different* nodes.
        let lit = dict.str_literal("barack_obama");
        assert_ne!(a, lit);
    }

    #[test]
    fn literal_kinds_do_not_collide() {
        let mut dict = Dictionary::new();
        let int_node = dict.int_literal(1961);
        let year_node = dict.year_literal(1961);
        assert_ne!(int_node, year_node);
        assert_eq!(dict.render(int_node), "1961");
        assert_eq!(dict.render(year_node), "1961");
    }

    #[test]
    fn predicate_interning() {
        let mut dict = Dictionary::new();
        let p1 = dict.predicate("population");
        let p2 = dict.predicate("population");
        let p3 = dict.predicate("dob");
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        assert_eq!(dict.predicate_name(p1), "population");
        assert_eq!(dict.find_predicate("dob"), Some(p3));
        assert_eq!(dict.find_predicate("missing"), None);
    }

    #[test]
    fn find_does_not_intern() {
        let dict = Dictionary::new();
        assert_eq!(dict.find_resource("nobody"), None);
        assert_eq!(dict.find_str_literal("nothing"), None);
    }

    #[test]
    fn render_produces_surface_forms() {
        let mut dict = Dictionary::new();
        let r = dict.resource("honolulu");
        let s = dict.str_literal("Honolulu");
        let i = dict.int_literal(390_000);
        assert_eq!(dict.render(r), "honolulu");
        assert_eq!(dict.render(s), "Honolulu");
        assert_eq!(dict.render(i), "390000");
        assert_eq!(dict.render_str(r), Some("honolulu"));
        assert_eq!(dict.render_str(i), None);
    }

    #[test]
    fn rebuild_index_restores_lookups() {
        let mut dict = Dictionary::new();
        let r = dict.resource("fudan");
        let p = dict.predicate("founded");
        let mut stripped = Dictionary {
            strings: dict.strings.clone(),
            terms: dict.terms.clone(),
            term_ids: Default::default(),
            predicates: dict.predicates.clone(),
            predicate_ids: Default::default(),
        };
        stripped.rebuild_index();
        assert_eq!(stripped.find_resource("fudan"), Some(r));
        assert_eq!(stripped.find_predicate("founded"), Some(p));
    }

    #[test]
    fn node_and_predicate_iteration_is_dense() {
        let mut dict = Dictionary::new();
        dict.resource("a");
        dict.resource("b");
        dict.predicate("p");
        assert_eq!(dict.nodes().count(), 2);
        assert_eq!(dict.predicates().count(), 1);
        assert_eq!(dict.node_count(), 2);
        assert_eq!(dict.predicate_count(), 1);
    }
}
