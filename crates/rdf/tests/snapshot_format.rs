//! On-disk snapshot format: round-trip integrity, hostile-input rejection,
//! and a golden fixture pinning the byte layout.
//!
//! Every corruption case must surface as a typed `KbqaError::Io` naming the
//! snapshot — never a panic, never a silently-wrong store. The golden
//! fixture (`tests/fixtures/golden.snap`) is the committed output of
//! `golden_store()`; if the writer's byte layout changes, the fixture test
//! fails and the format version must be bumped deliberately.

use kbqa_common::error::KbqaError;
use kbqa_rdf::{GraphBuilder, Snapshot, TripleStore};

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("kbqa-snapfmt-{tag}-{}.snap", std::process::id()))
}

/// Small but representative store: every term kind, shared names, a CVT
/// chain, multi-valued predicates.
fn golden_store() -> TripleStore {
    let mut b = GraphBuilder::new();
    let obama = b.resource("res/barack_obama");
    let marriage = b.resource("res/marriage_1");
    let michelle = b.resource("res/michelle_obama");
    let honolulu = b.resource("res/honolulu");
    b.name(obama, "Barack Obama");
    b.name(michelle, "Michelle Obama");
    b.name(honolulu, "Honolulu");
    b.alias(obama, "Obama");
    b.alias(michelle, "Obama");
    b.fact_year(obama, "dob", 1961);
    b.fact_str(obama, "category", "Person");
    b.fact_str(obama, "category", "Politician");
    b.link(obama, "marriage", marriage);
    b.fact_year(marriage, "date", 1992);
    b.link(marriage, "person", michelle);
    b.fact_int(honolulu, "population", 390_000);
    b.link(obama, "pob", honolulu);
    b.build()
}

fn expect_snapshot_error(result: Result<Snapshot, KbqaError>, what: &str) {
    match result {
        Err(KbqaError::Io(message)) => assert!(
            message.contains("snapshot"),
            "{what}: error must name the snapshot: {message}"
        ),
        Ok(_) => panic!("{what}: corrupt snapshot must not open"),
        Err(other) => panic!("{what}: expected Io error, got {other:?}"),
    }
}

#[test]
fn truncated_files_are_rejected_at_every_length() {
    let path = scratch("trunc");
    let store = golden_store();
    store.write_snapshot(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let probe = scratch("trunc-probe");
    // Every prefix that drops at least one byte must fail — including the
    // empty file and a header-only file.
    for len in [
        0,
        1,
        8,
        31,
        32,
        100,
        bytes.len() / 2,
        bytes.len() - 9,
        bytes.len() - 1,
    ] {
        std::fs::write(&probe, &bytes[..len]).unwrap();
        expect_snapshot_error(Snapshot::open(&probe), &format!("prefix of {len} bytes"));
    }
    std::fs::remove_file(&probe).ok();
}

#[test]
fn flipped_bytes_are_rejected_everywhere() {
    let path = scratch("flip");
    let store = golden_store();
    store.write_snapshot(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let probe = scratch("flip-probe");
    // Magic, version, checksum field, section table, and body positions.
    let positions = [0usize, 9, 24, 40, bytes.len() / 2, bytes.len() - 2];
    for &pos in &positions {
        let mut evil = bytes.clone();
        evil[pos] ^= 0x5a;
        std::fs::write(&probe, &evil).unwrap();
        expect_snapshot_error(Snapshot::open(&probe), &format!("byte {pos} flipped"));
    }
    std::fs::remove_file(&probe).ok();
}

#[test]
fn appended_garbage_is_rejected() {
    let path = scratch("append");
    golden_store().write_snapshot(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(b"trailing junk");
    std::fs::write(&path, &bytes).unwrap();
    expect_snapshot_error(Snapshot::open(&path), "appended garbage");
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_file_is_a_typed_error() {
    let result = Snapshot::open(std::path::Path::new("/nonexistent/kbqa/na.snap"));
    assert!(matches!(result, Err(KbqaError::Io(_))));
}

#[test]
fn wrong_magic_is_rejected_before_anything_else() {
    let path = scratch("magic");
    std::fs::write(&path, b"NOTASNAPxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx").unwrap();
    expect_snapshot_error(Snapshot::open(&path), "wrong magic");
    std::fs::remove_file(&path).ok();
}

/// The committed fixture must keep opening and reading identically, and the
/// writer must keep producing exactly those bytes for the same store. The
/// format is native-endian, so the byte-level pin only applies on
/// little-endian hosts (all current CI targets).
#[cfg(target_endian = "little")]
#[test]
fn golden_fixture_pins_the_format() {
    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden.snap");
    let store = golden_store();

    if std::env::var_os("KBQA_REGEN_GOLDEN").is_some() {
        store.write_snapshot(&fixture).unwrap();
        // Strip the sidecar-less temp artifacts; the fixture itself is the
        // only committed file.
        eprintln!("regenerated {}", fixture.display());
    }

    // 1. Today's writer reproduces the committed bytes exactly.
    let path = scratch("golden");
    store.write_snapshot(&path).unwrap();
    let fresh = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let committed = std::fs::read(&fixture)
        .expect("golden fixture missing — run with KBQA_REGEN_GOLDEN=1 to create it");
    assert_eq!(
        fresh, committed,
        "snapshot byte layout changed; bump the format version and \
         regenerate the fixture deliberately (KBQA_REGEN_GOLDEN=1)"
    );

    // 2. The committed fixture opens and reads equivalently to the source.
    let mapped = TripleStore::from_snapshot(Snapshot::open(&fixture).unwrap());
    assert_eq!(mapped.len(), store.len());
    let scan_a: Vec<_> = store.scan().collect();
    let scan_b: Vec<_> = mapped.scan().collect();
    assert_eq!(scan_a, scan_b);
    assert_eq!(
        mapped.entities_named("obama").len(),
        store.entities_named("obama").len()
    );
}
