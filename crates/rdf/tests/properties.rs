//! Property tests for the RDF substrate: N-Triples round-trips, path
//! traversal consistency, and index/scan agreement on arbitrary graphs.

use proptest::prelude::*;

use kbqa_rdf::path::objects_via_path;
use kbqa_rdf::{ntriples, ExpandedPredicate, GraphBuilder, NodeId, TripleStore};

/// Build an arbitrary small store from edge/fact descriptions.
fn arbitrary_store(
    links: &[(u8, u8, u8)],
    facts: &[(u8, u8, i64)],
    names: &[(u8, String)],
) -> TripleStore {
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..8).map(|i| b.resource(&format!("n{i}"))).collect();
    let preds = ["p0", "p1", "p2"];
    for &(s, p, o) in links {
        let pid = b.predicate(preds[(p % 3) as usize]);
        b.triple(nodes[(s % 8) as usize], pid, nodes[(o % 8) as usize]);
    }
    for &(s, p, v) in facts {
        b.fact_int(nodes[(s % 8) as usize], preds[(p % 3) as usize], v);
    }
    for (s, name) in names {
        b.name(nodes[(*s % 8) as usize], name);
    }
    b.build()
}

proptest! {
    /// Export → import → export is a fixed point (modulo line order).
    #[test]
    fn ntriples_roundtrip_is_stable(
        links in proptest::collection::vec((0u8..8, 0u8..3, 0u8..8), 0..30),
        facts in proptest::collection::vec((0u8..8, 0u8..3, -1000i64..1000), 0..15),
        names in proptest::collection::vec((0u8..8, "[A-Za-z ]{1,12}"), 0..6),
    ) {
        let store = arbitrary_store(&links, &facts, &names);
        let mut first = Vec::new();
        ntriples::export(&store, &mut first).unwrap();
        let restored = ntriples::import(first.as_slice()).unwrap();
        prop_assert_eq!(restored.len(), store.len());
        let mut second = Vec::new();
        ntriples::export(&restored, &mut second).unwrap();
        let mut a: Vec<&str> = std::str::from_utf8(&first).unwrap().lines().collect();
        let mut b: Vec<&str> = std::str::from_utf8(&second).unwrap().lines().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Two-edge path traversal equals the manual two-hop join.
    #[test]
    fn path_traversal_matches_manual_join(
        links in proptest::collection::vec((0u8..8, 0u8..3, 0u8..8), 1..40),
    ) {
        let store = arbitrary_store(&links, &[], &[]);
        let p0 = store.dict().find_predicate("p0");
        let p1 = store.dict().find_predicate("p1");
        let (Some(p0), Some(p1)) = (p0, p1) else { return Ok(()); };
        let path = ExpandedPredicate::new(vec![p0, p1]);
        for s in store.dict().nodes() {
            let via_path = {
                let mut v = objects_via_path(&store, s, &path);
                v.sort_unstable();
                v
            };
            let manual = {
                let mut v: Vec<NodeId> = store
                    .objects(s, p0)
                    .flat_map(|mid| store.objects(mid, p1).collect::<Vec<_>>())
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            prop_assert_eq!(via_path, manual);
        }
    }

    /// The scan covers exactly the store's triples, and every scanned triple
    /// is query-visible through all point lookups.
    #[test]
    fn scan_and_indexes_agree(
        links in proptest::collection::vec((0u8..8, 0u8..3, 0u8..8), 1..40),
    ) {
        let store = arbitrary_store(&links, &[], &[]);
        let scanned: Vec<_> = store.scan().collect();
        prop_assert_eq!(scanned.len(), store.len());
        for t in scanned {
            prop_assert!(store.contains(t.s, t.p, t.o));
            prop_assert!(store.objects(t.s, t.p).any(|o| o == t.o));
            prop_assert!(store.predicates_between(t.s, t.o).any(|p| p == t.p));
        }
    }

    /// Surface names ground back to their entities case-insensitively.
    #[test]
    fn names_ground_back(
        names in proptest::collection::vec((0u8..8, "[A-Za-z]{2,10}( [A-Za-z]{2,10})?"), 1..6),
    ) {
        let store = arbitrary_store(&[], &[], &names);
        for (i, name) in &names {
            let hits = store.entities_named(&name.to_lowercase());
            prop_assert!(!hits.is_empty(), "name {name:?} of node {i} did not ground");
        }
    }
}
