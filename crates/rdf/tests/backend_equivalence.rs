//! Backend equivalence: every read API must return identical results from
//! the in-memory columnar store and from a mapped snapshot of it. The
//! snapshot path exercises the full pipeline — write, checksum, mmap,
//! validation — on arbitrary generated graphs, so any divergence between
//! the two `StoreBackend` implementations fails here first.

use proptest::prelude::*;

use kbqa_rdf::path::{objects_via_path, ExpandedPredicate};
use kbqa_rdf::query::{evaluate, Pattern, PatternTerm};
use kbqa_rdf::{ntriples, stats, BackendKind, GraphBuilder, NodeId, TripleStore};

/// Deterministic scratch path per test case.
fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("kbqa-eqv-{tag}-{}.snap", std::process::id()))
}

/// Round-trip a store through a snapshot file, returning the mapped twin.
fn mapped_twin(store: &TripleStore, tag: &str) -> TripleStore {
    let path = scratch(tag);
    store.write_snapshot(&path).expect("write snapshot");
    let snap = kbqa_rdf::Snapshot::open(&path).expect("open snapshot");
    std::fs::remove_file(&path).ok();
    let twin = TripleStore::from_snapshot(snap);
    assert_eq!(twin.backend_kind(), BackendKind::Mapped);
    twin
}

/// Build an arbitrary store from edge/fact/name descriptions.
fn arbitrary_store(
    links: &[(u8, u8, u8)],
    facts: &[(u8, u8, i64)],
    names: &[(u8, String)],
) -> TripleStore {
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..8).map(|i| b.resource(&format!("n{i}"))).collect();
    let preds = ["p0", "p1", "p2"];
    for &(s, p, o) in links {
        let pid = b.predicate(preds[(p % 3) as usize]);
        b.triple(nodes[(s % 8) as usize], pid, nodes[(o % 8) as usize]);
    }
    for &(s, p, v) in facts {
        b.fact_int(nodes[(s % 8) as usize], preds[(p % 3) as usize], v);
    }
    for (s, name) in names {
        b.name(nodes[(*s % 8) as usize], name);
    }
    b.build()
}

/// Assert that every read surface agrees between the two stores.
fn assert_equivalent(a: &TripleStore, b: &TripleStore) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.is_empty(), b.is_empty());

    // Scan order (the insertion log) is part of the contract.
    let scan_a: Vec<_> = a.scan().collect();
    let scan_b: Vec<_> = b.scan().collect();
    assert_eq!(scan_a, scan_b, "scan order must survive the snapshot");

    let dict_a = a.dict();
    let dict_b = b.dict();
    assert_eq!(dict_a.node_count(), dict_b.node_count());
    assert_eq!(dict_a.predicate_count(), dict_b.predicate_count());
    for node in dict_a.nodes() {
        assert_eq!(dict_a.node_term(node), dict_b.node_term(node));
        assert_eq!(dict_a.render(node), dict_b.render(node));
    }
    for p in dict_a.predicates() {
        assert_eq!(dict_a.predicate_name(p), dict_b.predicate_name(p));
    }

    // Point lookups and per-predicate surfaces.
    for node in dict_a.nodes() {
        let out_a: Vec<_> = a.out_edges(node).collect();
        let out_b: Vec<_> = b.out_edges(node).collect();
        assert_eq!(out_a, out_b);
        let in_a: Vec<_> = a.in_edges(node).collect();
        let in_b: Vec<_> = b.in_edges(node).collect();
        assert_eq!(in_a, in_b);
        for p in dict_a.predicates() {
            assert_eq!(a.objects_slice(node, p), b.objects_slice(node, p));
            assert_eq!(a.subjects_slice(p, node), b.subjects_slice(p, node));
        }
        for other in dict_a.nodes() {
            let pa: Vec<_> = a.predicates_between(node, other).collect();
            let pb: Vec<_> = b.predicates_between(node, other).collect();
            assert_eq!(pa, pb);
        }
    }
    for p in dict_a.predicates() {
        let ta: Vec<_> = a.triples_for_predicate(p).collect();
        let tb: Vec<_> = b.triples_for_predicate(p).collect();
        assert_eq!(ta, tb);
    }

    // Name grounding (entity linking surface).
    let names_a: Vec<_> = a
        .name_entries()
        .map(|(n, ids)| (n.to_owned(), ids.to_vec()))
        .collect();
    let names_b: Vec<_> = b
        .name_entries()
        .map(|(n, ids)| (n.to_owned(), ids.to_vec()))
        .collect();
    // Entry iteration order is backend-specific (hash map vs sorted);
    // compare as sets and then the lookup results directly.
    let mut sa = names_a.clone();
    let mut sb = names_b.clone();
    sa.sort();
    sb.sort();
    assert_eq!(sa, sb, "name entries must agree");
    for (name, _) in &names_a {
        assert_eq!(a.entities_named(name), b.entities_named(name), "{name:?}");
    }

    // Aggregate + per-predicate statistics.
    assert_eq!(stats::StoreStats::of(a), stats::StoreStats::of(b));
    assert_eq!(stats::per_predicate(a), stats::per_predicate(b));

    // N-Triples export is byte-identical (scan order + dictionary render).
    let (mut xa, mut xb) = (Vec::new(), Vec::new());
    ntriples::export(a, &mut xa).unwrap();
    ntriples::export(b, &mut xb).unwrap();
    assert_eq!(xa, xb, "exports must be byte-identical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary graphs read identically from both backends.
    #[test]
    fn random_worlds_read_identically(
        links in proptest::collection::vec((0u8..8, 0u8..3, 0u8..8), 0..40),
        facts in proptest::collection::vec((0u8..8, 0u8..3, -1000i64..1000), 0..15),
        names in proptest::collection::vec((0u8..8, "[A-Za-z ]{1,12}"), 0..6),
    ) {
        let store = arbitrary_store(&links, &facts, &names);
        let twin = mapped_twin(&store, "prop");
        assert_equivalent(&store, &twin);
    }

    /// Query evaluation and path traversal agree on both backends.
    #[test]
    fn queries_and_paths_agree(
        links in proptest::collection::vec((0u8..8, 0u8..3, 0u8..8), 1..40),
    ) {
        let store = arbitrary_store(&links, &[], &[]);
        let twin = mapped_twin(&store, "query");
        for pname in ["p0", "p1", "p2"] {
            let Some(p) = store.dict().find_predicate(pname) else { continue };
            prop_assert_eq!(twin.dict().find_predicate(pname), Some(p));
            let qa = evaluate(&store, &[Pattern::new(PatternTerm::Var("s"), p, PatternTerm::Var("o"))]);
            let qb = evaluate(&twin, &[Pattern::new(PatternTerm::Var("s"), p, PatternTerm::Var("o"))]);
            let ka: Vec<_> = qa.iter().map(|bnd| (bnd.get("s"), bnd.get("o"))).collect();
            let kb: Vec<_> = qb.iter().map(|bnd| (bnd.get("s"), bnd.get("o"))).collect();
            prop_assert_eq!(ka, kb);
        }
        let (Some(p0), Some(p1)) = (store.dict().find_predicate("p0"), store.dict().find_predicate("p1")) else {
            return Ok(());
        };
        let path = ExpandedPredicate::new(vec![p0, p1]);
        for s in store.dict().nodes() {
            prop_assert_eq!(
                objects_via_path(&store, s, &path),
                objects_via_path(&twin, s, &path)
            );
        }
    }

    /// A re-snapshot of a mapped store is byte-identical to the original
    /// snapshot file (the format is a fixed point).
    #[test]
    fn resnapshot_is_byte_identical(
        links in proptest::collection::vec((0u8..8, 0u8..3, 0u8..8), 0..25),
        names in proptest::collection::vec((0u8..8, "[A-Za-z]{1,8}"), 0..4),
    ) {
        let store = arbitrary_store(&links, &[], &names);
        let p1 = scratch("fix1");
        let p2 = scratch("fix2");
        store.write_snapshot(&p1).unwrap();
        let mapped = TripleStore::from_snapshot(kbqa_rdf::Snapshot::open(&p1).unwrap());
        mapped.write_snapshot(&p2).unwrap();
        let (b1, b2) = (std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
        prop_assert_eq!(b1, b2);
    }
}

#[test]
fn empty_store_round_trips() {
    let store = GraphBuilder::new().build();
    let twin = mapped_twin(&store, "empty");
    assert_equivalent(&store, &twin);
}

#[test]
fn rebuilt_in_memory_twin_from_snapshot_parts_matches() {
    // Mapped → JSON → in-memory must also agree (the legacy fallback path).
    let mut b = GraphBuilder::new();
    let a = b.resource("a");
    let c = b.resource("c");
    b.name(a, "Alpha");
    b.link(a, "knows", c);
    b.fact_year(c, "dob", 1999);
    let store = b.build();
    let twin = mapped_twin(&store, "parts");
    let json = serde_json::to_string(&twin).unwrap();
    let mut rebuilt: TripleStore = serde_json::from_str(&json).unwrap();
    rebuilt.rebuild_index();
    assert_eq!(rebuilt.backend_kind(), BackendKind::InMemory);
    assert_equivalent(&store, &rebuilt);
}
