//! Property tests for conceptualization: distributions normalize, context
//! reweighting never invents concepts, and priors are respected in the
//! no-signal limit.

use proptest::prelude::*;

use kbqa_rdf::NodeId;
use kbqa_taxonomy::{Conceptualizer, NetworkBuilder};

/// Build a network from (entity, concept, weight) triples plus context
/// evidence (concept, word, count).
fn build(memberships: &[(u8, u8, f64)], evidence: &[(u8, String, f64)]) -> Conceptualizer {
    let mut b = NetworkBuilder::new();
    let concepts: Vec<_> = (0..6).map(|i| b.concept(&format!("c{i}"))).collect();
    for &(e, c, w) in memberships {
        b.is_a(
            NodeId::new(u32::from(e % 8)),
            concepts[(c % 6) as usize],
            w.max(1e-6),
        );
    }
    for (c, word, count) in evidence {
        b.context_evidence(concepts[(*c % 6) as usize], word, count.max(1e-6));
    }
    Conceptualizer::new(b.build())
}

proptest! {
    /// Conceptualization output is a normalized, descending distribution
    /// over exactly the entity's prior concepts.
    #[test]
    fn output_is_a_distribution(
        memberships in proptest::collection::vec((0u8..8, 0u8..6, 0.01f64..10.0), 1..20),
        evidence in proptest::collection::vec((0u8..6, "[a-z]{2,6}", 0.1f64..10.0), 0..20),
        context in proptest::collection::vec("[a-z]{2,6}", 0..6),
    ) {
        let conceptualizer = build(&memberships, &evidence);
        for e in 0..8u32 {
            let entity = NodeId::new(e);
            let prior = conceptualizer.prior(entity);
            let dist = conceptualizer.conceptualize(
                entity,
                &context.iter().map(String::as_str).collect::<Vec<_>>(),
            );
            prop_assert_eq!(dist.len(), prior.len(), "concept set changed");
            if !dist.is_empty() {
                let total: f64 = dist.iter().map(|(_, p)| p).sum();
                prop_assert!((total - 1.0).abs() < 1e-6, "mass {total}");
                for w in dist.entries.windows(2) {
                    prop_assert!(w[0].1 >= w[1].1 - 1e-12);
                }
                for (_, p) in dist.iter() {
                    prop_assert!(p > 0.0, "zero-probability concept survived");
                }
            }
        }
    }

    /// With no signal-bearing context words, the output equals the prior.
    #[test]
    fn no_signal_reduces_to_prior(
        memberships in proptest::collection::vec((0u8..8, 0u8..6, 0.01f64..10.0), 1..20),
        evidence in proptest::collection::vec((0u8..6, "[a-z]{2,6}", 0.1f64..10.0), 0..20),
    ) {
        let conceptualizer = build(&memberships, &evidence);
        // Digits never appear in evidence words ([a-z] only).
        let context = ["123", "456"];
        for e in 0..8u32 {
            let entity = NodeId::new(e);
            let prior = conceptualizer.prior(entity);
            let dist = conceptualizer.conceptualize(entity, &context);
            for (c, p) in prior.iter() {
                prop_assert!((dist.probability(c) - p).abs() < 1e-9);
            }
        }
    }

    /// Context likelihoods are valid probabilities and sensitive to
    /// observed evidence.
    #[test]
    fn context_likelihood_bounds(
        evidence in proptest::collection::vec((0u8..6, "[a-z]{2,6}", 0.1f64..10.0), 1..20),
    ) {
        let conceptualizer = build(&[(0, 0, 1.0)], &evidence);
        let network = conceptualizer.network();
        for c in network.concepts() {
            for (_, word, _) in &evidence {
                let p = network.context_likelihood(c, word, 0.1);
                prop_assert!(p > 0.0 && p <= 1.0, "likelihood {p}");
            }
        }
    }
}
