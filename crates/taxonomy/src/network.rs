//! The isA network: concepts, membership edges, context evidence.
//!
//! Mirrors the slice of Probase that KBQA consumes: for each entity a
//! weighted list of concepts (the `P(c|e)` prior), and for each concept a
//! bag of context words with counts (the evidence that lets context sharpen
//! the prior). Both are populated by the world generator or learned from a
//! corpus; the structure is agnostic to the source.

use kbqa_common::hash::FxHashMap;
use kbqa_common::interner::Interner;
use serde::{Deserialize, Serialize};

use kbqa_rdf::NodeId;

use crate::concept::ConceptId;

/// Immutable isA network. Construct via [`NetworkBuilder`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ConceptNetwork {
    concept_names: Interner,
    /// entity node → [(concept, normalized P(c|e))], sorted by descending weight.
    memberships: FxHashMap<NodeId, Vec<(ConceptId, f64)>>,
    /// concept → (context word → count).
    context_counts: Vec<FxHashMap<u32, f64>>,
    /// concept → Σ context counts (cached normalizer).
    context_totals: Vec<f64>,
    /// Shared vocabulary of context words.
    context_vocab: Interner,
}

impl ConceptNetwork {
    /// Number of distinct concepts.
    pub fn concept_count(&self) -> usize {
        self.concept_names.len()
    }

    /// Resolve a concept's name.
    pub fn concept_name(&self, c: ConceptId) -> &str {
        self.concept_names.resolve(c.raw())
    }

    /// Look up a concept by name.
    pub fn find_concept(&self, name: &str) -> Option<ConceptId> {
        self.concept_names.get(name).map(ConceptId::new)
    }

    /// The `P(c|e)` prior for an entity: normalized, sorted descending.
    /// Empty when the entity is not covered by the taxonomy.
    pub fn concepts_of(&self, entity: NodeId) -> &[(ConceptId, f64)] {
        self.memberships
            .get(&entity)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of entities with at least one concept.
    pub fn covered_entities(&self) -> usize {
        self.memberships.len()
    }

    /// Smoothed `P(word | concept)` with add-α smoothing over the shared
    /// context vocabulary — the naive-Bayes likelihood used by the
    /// conceptualizer.
    pub fn context_likelihood(&self, c: ConceptId, word: &str, alpha: f64) -> f64 {
        let vocab = self.context_vocab.len().max(1) as f64;
        let total = self.context_totals[c.index()];
        let count = self
            .context_vocab
            .get(word)
            .and_then(|sym| self.context_counts[c.index()].get(&sym))
            .copied()
            .unwrap_or(0.0);
        (count + alpha) / (total + alpha * vocab)
    }

    /// Whether the word appears in any concept's context evidence (words that
    /// never do carry no disambiguation signal and can be skipped).
    pub fn is_context_word(&self, word: &str) -> bool {
        self.context_vocab.get(word).is_some()
    }

    /// Iterate all concept ids.
    pub fn concepts(&self) -> impl Iterator<Item = ConceptId> + '_ {
        (0..self.concept_names.len()).map(|i| ConceptId::new(i as u32))
    }

    /// Rebuild interner lookup tables after deserialization.
    pub fn rebuild_index(&mut self) {
        self.concept_names.rebuild_index();
        self.context_vocab.rebuild_index();
    }
}

/// Mutable builder for [`ConceptNetwork`].
#[derive(Clone, Debug, Default)]
pub struct NetworkBuilder {
    concept_names: Interner,
    memberships: FxHashMap<NodeId, Vec<(ConceptId, f64)>>,
    context_counts: Vec<FxHashMap<u32, f64>>,
    context_vocab: Interner,
}

impl NetworkBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a concept by name.
    pub fn concept(&mut self, name: &str) -> ConceptId {
        let sym = self.concept_names.intern(name);
        while self.context_counts.len() <= sym as usize {
            self.context_counts.push(FxHashMap::default());
        }
        ConceptId::new(sym)
    }

    /// Assert `entity isA concept` with the given (unnormalized) weight.
    /// Repeated assertions accumulate weight.
    pub fn is_a(&mut self, entity: NodeId, concept: ConceptId, weight: f64) {
        assert!(weight > 0.0, "isA weight must be positive");
        let entry = self.memberships.entry(entity).or_default();
        if let Some(slot) = entry.iter_mut().find(|(c, _)| *c == concept) {
            slot.1 += weight;
        } else {
            entry.push((concept, weight));
        }
    }

    /// Record that `word` co-occurs with mentions of `concept` instances
    /// (`count` times). This is the evidence behind context-aware scoring.
    pub fn context_evidence(&mut self, concept: ConceptId, word: &str, count: f64) {
        assert!(count > 0.0, "context count must be positive");
        let sym = self.context_vocab.intern(word);
        *self.context_counts[concept.index()]
            .entry(sym)
            .or_insert(0.0) += count;
    }

    /// Freeze: normalize memberships to probability distributions and cache
    /// context totals.
    pub fn build(self) -> ConceptNetwork {
        let mut memberships = self.memberships;
        for weights in memberships.values_mut() {
            let total: f64 = weights.iter().map(|(_, w)| w).sum();
            for (_, w) in weights.iter_mut() {
                *w /= total;
            }
            // Descending weight, concept id as tiebreak for determinism.
            weights.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        let context_totals = self
            .context_counts
            .iter()
            .map(|m| m.values().sum())
            .collect();
        ConceptNetwork {
            concept_names: self.concept_names,
            memberships,
            context_counts: self.context_counts,
            context_totals,
            context_vocab: self.context_vocab,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn membership_normalizes_and_sorts() {
        let mut b = NetworkBuilder::new();
        let person = b.concept("person");
        let politician = b.concept("politician");
        b.is_a(node(0), person, 3.0);
        b.is_a(node(0), politician, 1.0);
        let net = b.build();
        let concepts = net.concepts_of(node(0));
        assert_eq!(concepts.len(), 2);
        assert_eq!(concepts[0].0, person);
        assert!((concepts[0].1 - 0.75).abs() < 1e-12);
        assert!((concepts[1].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn repeated_is_a_accumulates() {
        let mut b = NetworkBuilder::new();
        let city = b.concept("city");
        b.is_a(node(1), city, 1.0);
        b.is_a(node(1), city, 2.0);
        let net = b.build();
        assert_eq!(net.concepts_of(node(1)), &[(city, 1.0)]);
    }

    #[test]
    fn uncovered_entity_has_no_concepts() {
        let net = NetworkBuilder::new().build();
        assert!(net.concepts_of(node(9)).is_empty());
        assert_eq!(net.covered_entities(), 0);
    }

    #[test]
    fn concept_lookup_roundtrip() {
        let mut b = NetworkBuilder::new();
        let city = b.concept("city");
        let again = b.concept("city");
        assert_eq!(city, again);
        let net = b.build();
        assert_eq!(net.concept_name(city), "city");
        assert_eq!(net.find_concept("city"), Some(city));
        assert_eq!(net.find_concept("galaxy"), None);
        assert_eq!(net.concept_count(), 1);
    }

    #[test]
    fn context_likelihood_prefers_observed_words() {
        let mut b = NetworkBuilder::new();
        let company = b.concept("company");
        let fruit = b.concept("fruit");
        b.context_evidence(company, "headquarter", 10.0);
        b.context_evidence(company, "ceo", 8.0);
        b.context_evidence(fruit, "eat", 12.0);
        let net = b.build();
        let alpha = 0.1;
        assert!(
            net.context_likelihood(company, "headquarter", alpha)
                > net.context_likelihood(fruit, "headquarter", alpha)
        );
        assert!(
            net.context_likelihood(fruit, "eat", alpha)
                > net.context_likelihood(company, "eat", alpha)
        );
    }

    #[test]
    fn smoothing_never_returns_zero() {
        let mut b = NetworkBuilder::new();
        let c = b.concept("anything");
        b.context_evidence(c, "seen", 1.0);
        let net = b.build();
        assert!(net.context_likelihood(c, "unseen", 0.5) > 0.0);
    }

    #[test]
    fn context_word_detection() {
        let mut b = NetworkBuilder::new();
        let c = b.concept("city");
        b.context_evidence(c, "population", 5.0);
        let net = b.build();
        assert!(net.is_context_word("population"));
        assert!(!net.is_context_word("xylophone"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_is_rejected() {
        let mut b = NetworkBuilder::new();
        let c = b.concept("x");
        b.is_a(node(0), c, 0.0);
    }
}
