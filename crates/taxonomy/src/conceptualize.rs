//! Context-aware conceptualization: `P(c | e, q)`.
//!
//! Paper Sec 3.2, Eq (5): the template distribution `P(t|q,e)` *is* the
//! concept distribution `P(c|q,e)` of the mentioned entity in its question
//! context. We reproduce the mechanism of Song et al. \[25\] — a naive-Bayes
//! combination of the isA prior with per-concept context likelihoods:
//!
//! ```text
//! P(c | e, ctx) ∝ P(c|e) · Π_{w ∈ ctx ∩ signal} P(w | c)
//! ```
//!
//! computed in log space and renormalized. Words with no context evidence in
//! any concept carry no signal and are skipped, so unrelated stopwords do not
//! wash out the prior.

use serde::{Deserialize, Serialize};

use kbqa_rdf::NodeId;

use crate::concept::ConceptId;
use crate::network::ConceptNetwork;

/// A normalized distribution over concepts for one entity-in-context.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ConceptDistribution {
    /// `(concept, probability)` sorted by descending probability.
    pub entries: Vec<(ConceptId, f64)>,
}

impl ConceptDistribution {
    /// The most probable concept, if any.
    pub fn top(&self) -> Option<(ConceptId, f64)> {
        self.entries.first().copied()
    }

    /// Probability of a specific concept (0 when absent).
    pub fn probability(&self, c: ConceptId) -> f64 {
        self.entries
            .iter()
            .find(|(cc, _)| *cc == c)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }

    /// Number of candidate concepts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the distribution is empty (entity unknown to the taxonomy).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(concept, probability)`.
    pub fn iter(&self) -> impl Iterator<Item = (ConceptId, f64)> + '_ {
        self.entries.iter().copied()
    }
}

/// Conceptualization engine over a [`ConceptNetwork`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Conceptualizer {
    network: ConceptNetwork,
    /// Add-α smoothing for context likelihoods.
    alpha: f64,
    /// Cap on context words consulted per mention (cost control; the paper
    /// treats concepts-per-entity as a constant, Sec 3.3).
    max_context_words: usize,
}

impl Conceptualizer {
    /// Default smoothing (α = 0.1) and a 16-word context window.
    pub fn new(network: ConceptNetwork) -> Self {
        Self {
            network,
            alpha: 0.1,
            max_context_words: 16,
        }
    }

    /// Override the smoothing constant.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        self.alpha = alpha;
        self
    }

    /// The underlying network.
    pub fn network(&self) -> &ConceptNetwork {
        &self.network
    }

    /// Rebuild the network's derived interner indexes after
    /// deserialization (see [`ConceptNetwork::rebuild_index`]).
    pub fn rebuild_index(&mut self) {
        self.network.rebuild_index();
    }

    /// Plain prior conceptualization: `P(c|e)` ignoring context.
    pub fn prior(&self, entity: NodeId) -> ConceptDistribution {
        ConceptDistribution {
            entries: self.network.concepts_of(entity).to_vec(),
        }
    }

    /// Context-aware conceptualization, Eq (5): the entity's isA prior
    /// reweighted by the likelihood of the surrounding words under each
    /// candidate concept.
    ///
    /// `context` should contain the question's tokens *excluding* the entity
    /// mention itself (the mention is being replaced by the concept slot).
    pub fn conceptualize(&self, entity: NodeId, context: &[&str]) -> ConceptDistribution {
        let mut entries = Vec::new();
        self.conceptualize_into(entity, context.iter().copied(), &mut entries);
        ConceptDistribution { entries }
    }

    /// [`Conceptualizer::conceptualize`] into a caller-owned buffer (cleared
    /// first): the identical distribution — same floating-point operation
    /// order, same descending sort — with no heap allocation in the steady
    /// state. Context words stream through; only signal-bearing words (in
    /// context order, capped) participate, exactly as in the owned variant.
    pub fn conceptualize_into<'a>(
        &self,
        entity: NodeId,
        context: impl IntoIterator<Item = &'a str>,
        out: &mut Vec<(ConceptId, f64)>,
    ) {
        out.clear();
        let prior = self.network.concepts_of(entity);
        if prior.is_empty() {
            return;
        }
        if prior.len() == 1 {
            out.push((prior[0].0, 1.0));
            return;
        }

        // Log-space scores, reweighted by each signal word as it streams by.
        out.extend(prior.iter().map(|&(c, p)| (c, p.ln())));
        let mut signal_seen = 0usize;
        for word in context {
            if signal_seen >= self.max_context_words {
                break;
            }
            if !self.network.is_context_word(word) {
                continue;
            }
            signal_seen += 1;
            for (c, score) in out.iter_mut() {
                *score += self.network.context_likelihood(*c, word, self.alpha).ln();
            }
        }

        // Log-space normalize.
        let max = out
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::NEG_INFINITY, f64::max);
        for (_, s) in out.iter_mut() {
            *s = (*s - max).exp();
        }
        let total: f64 = out.iter().map(|(_, p)| p).sum();
        for (_, p) in out.iter_mut() {
            *p /= total;
        }
        out.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;

    fn node(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// The paper's apple example: "$company vs $fruit" resolved by context.
    fn apple_network() -> (ConceptNetwork, ConceptId, ConceptId) {
        let mut b = NetworkBuilder::new();
        let company = b.concept("company");
        let fruit = b.concept("fruit");
        // "apple" is more often the fruit in raw isA counts…
        b.is_a(node(0), fruit, 6.0);
        b.is_a(node(0), company, 4.0);
        // …but corporate context words pull strongly to company.
        b.context_evidence(company, "headquarter", 20.0);
        b.context_evidence(company, "ceo", 15.0);
        b.context_evidence(company, "founded", 10.0);
        b.context_evidence(fruit, "eat", 20.0);
        b.context_evidence(fruit, "grow", 10.0);
        (b.build(), company, fruit)
    }

    #[test]
    fn prior_prefers_fruit() {
        let (net, _company, fruit) = apple_network();
        let c = Conceptualizer::new(net);
        let dist = c.prior(node(0));
        assert_eq!(dist.top().unwrap().0, fruit);
    }

    #[test]
    fn corporate_context_flips_to_company() {
        let (net, company, _fruit) = apple_network();
        let c = Conceptualizer::new(net);
        let dist = c.conceptualize(node(0), &["what", "is", "the", "headquarter", "of"]);
        assert_eq!(dist.top().unwrap().0, company);
        // Distribution is normalized.
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn culinary_context_stays_fruit() {
        let (net, _company, fruit) = apple_network();
        let c = Conceptualizer::new(net);
        let dist = c.conceptualize(node(0), &["how", "do", "i", "eat", "an"]);
        assert_eq!(dist.top().unwrap().0, fruit);
    }

    #[test]
    fn no_signal_context_reduces_to_prior() {
        let (net, company, fruit) = apple_network();
        let c = Conceptualizer::new(net.clone());
        let dist = c.conceptualize(node(0), &["zz", "qq"]);
        let prior = c.prior(node(0));
        assert!((dist.probability(fruit) - prior.probability(fruit)).abs() < 1e-9);
        assert!((dist.probability(company) - prior.probability(company)).abs() < 1e-9);
    }

    #[test]
    fn unknown_entity_yields_empty_distribution() {
        let (net, _, _) = apple_network();
        let c = Conceptualizer::new(net);
        let dist = c.conceptualize(node(99), &["anything"]);
        assert!(dist.is_empty());
        assert_eq!(dist.top(), None);
    }

    #[test]
    fn single_concept_entity_is_certain() {
        let mut b = NetworkBuilder::new();
        let city = b.concept("city");
        b.is_a(node(5), city, 2.0);
        let c = Conceptualizer::new(b.build());
        let dist = c.conceptualize(node(5), &["population"]);
        assert_eq!(dist.entries, vec![(city, 1.0)]);
    }

    #[test]
    fn probability_of_absent_concept_is_zero() {
        let (net, company, _) = apple_network();
        let c = Conceptualizer::new(net);
        let dist = c.conceptualize(node(99), &[]);
        assert_eq!(dist.probability(company), 0.0);
    }

    #[test]
    fn conceptualize_into_is_bit_identical_and_reusable() {
        let (net, _, _) = apple_network();
        let c = Conceptualizer::new(net);
        let mut buf: Vec<(ConceptId, f64)> = Vec::new();
        let contexts: [&[&str]; 4] = [
            &["what", "is", "the", "headquarter", "of"],
            &["how", "do", "i", "eat", "an"],
            &["zz", "qq"],
            &[],
        ];
        for context in contexts {
            for entity in [node(0), node(5), node(99)] {
                let owned = c.conceptualize(entity, context);
                c.conceptualize_into(entity, context.iter().copied(), &mut buf);
                assert_eq!(buf.len(), owned.entries.len());
                for (a, b) in buf.iter().zip(&owned.entries) {
                    assert_eq!(a.0, b.0);
                    assert_eq!(
                        a.1.to_bits(),
                        b.1.to_bits(),
                        "probabilities must be bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn distribution_is_sorted_descending() {
        let (net, _, _) = apple_network();
        let c = Conceptualizer::new(net);
        let dist = c.conceptualize(node(0), &["headquarter"]);
        for pair in dist.entries.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }
}
