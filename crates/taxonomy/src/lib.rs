#![warn(missing_docs)]

//! Probase-style taxonomy and conceptualization substrate.
//!
//! The paper derives templates by *conceptualizing* the entity in a question:
//! `Honolulu` → `$city`, so `How many people are there in Honolulu?` becomes
//! `How many people are there in $city?`. The concept distribution
//! `P(c|e, q)` comes from Probase's context-aware conceptualization
//! ([25, 32] in the paper) — an isA network with probabilistic entity→concept
//! membership, sharpened by the words surrounding the mention (so *apple* in
//! "headquarter of apple" maps to `$company`, not `$fruit`).
//!
//! Probase itself is proprietary-scale web data; this crate rebuilds the two
//! pieces KBQA actually consumes:
//!
//! * [`network::ConceptNetwork`] — concepts, weighted isA edges keyed by KB
//!   node, and per-concept context-term evidence;
//! * [`conceptualize::Conceptualizer`] — smoothed naive-Bayes scoring of
//!   `P(c | e, context)` (Sec 3.2, Eq 5 of the paper).

pub mod concept;
pub mod conceptualize;
pub mod network;

pub use concept::ConceptId;
pub use conceptualize::{ConceptDistribution, Conceptualizer};
pub use network::{ConceptNetwork, NetworkBuilder};
