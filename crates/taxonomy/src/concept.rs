//! Concept identity.

use kbqa_common::define_id;

define_id!(
    /// A concept (category) in the isA network, e.g. `city`, `person`,
    /// `politician`. Dense, assigned by the [`crate::ConceptNetwork`].
    pub struct ConceptId
);

/// Render a concept name as a template slot, e.g. `city` → `$city`.
pub fn slot_form(concept_name: &str) -> String {
    let mut s = String::with_capacity(concept_name.len() + 1);
    s.push('$');
    // Multi-word concepts become underscore-joined slots: `$movie_director`.
    for part in concept_name.split_whitespace() {
        if s.len() > 1 {
            s.push('_');
        }
        s.push_str(part);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_form_simple() {
        assert_eq!(slot_form("city"), "$city");
        assert_eq!(slot_form("person"), "$person");
    }

    #[test]
    fn slot_form_multiword() {
        assert_eq!(slot_form("movie director"), "$movie_director");
    }
}
