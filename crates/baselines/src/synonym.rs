//! Synonym-based QA (paper Sec 1.2 category 3; DEANNA \[33\] stand-in).
//!
//! Extends keyword matching with a learned synonym lexicon: the question's
//! content phrase is compared against each predicate's BOA patterns by token
//! overlap, so `what is the total number of people in X` can reach
//! `population` *if* some declarative sentence produced a phrase like
//! `number of people` — but `how many people are there in X?` stays out of
//! reach, reproducing the paper's Table 1 case ⓐ failure.

use kbqa_common::hash::FxHashSet;
use kbqa_core::engine::Answer;
use kbqa_core::service::{QaRequest, QaResponse, QaSystem, Refusal};
use kbqa_nlp::token::{is_question_word, is_stopword};
use kbqa_nlp::{tokenize, GazetteerNer};
use kbqa_rdf::TripleStore;

use crate::bootstrap::BoaLexicon;

/// Minimum phrase-overlap similarity to accept a predicate.
const MIN_SIMILARITY: f64 = 0.34;

/// The synonym-based system.
pub struct SynonymQa<'a> {
    store: &'a TripleStore,
    ner: GazetteerNer,
    lexicon: &'a BoaLexicon,
    catalog: &'a kbqa_core::PredicateCatalog,
}

impl<'a> SynonymQa<'a> {
    /// Build over a store and a learned lexicon (see
    /// [`crate::bootstrap::learn_boa`]). `catalog` must be the catalog the
    /// lexicon's predicate ids refer to.
    pub fn new(
        store: &'a TripleStore,
        lexicon: &'a BoaLexicon,
        catalog: &'a kbqa_core::PredicateCatalog,
    ) -> Self {
        Self {
            store,
            ner: GazetteerNer::from_store(store),
            lexicon,
            catalog,
        }
    }

    /// Weighted token-overlap similarity between the question phrase and a
    /// synonym pattern (Jaccard over content tokens).
    fn similarity(question_tokens: &FxHashSet<&str>, pattern: &str) -> f64 {
        let pattern_tokens: FxHashSet<&str> =
            pattern.split(' ').filter(|w| !is_stopword(w)).collect();
        if pattern_tokens.is_empty() {
            return 0.0;
        }
        let hits = pattern_tokens
            .iter()
            .filter(|t| question_tokens.contains(*t))
            .count();
        let union = pattern_tokens.len() + question_tokens.len() - hits;
        if union == 0 {
            0.0
        } else {
            hits as f64 / union as f64
        }
    }
}

impl QaSystem for SynonymQa<'_> {
    fn name(&self) -> &str {
        "SynonymQA"
    }

    fn answer(&self, request: &QaRequest) -> QaResponse {
        let tokens = tokenize(&request.question);
        let mentions = self.ner.find_longest_mentions(&tokens);
        let Some(mention) = mentions.first() else {
            return QaResponse::refused(Refusal::NoEntityGrounded);
        };
        let Some(&entity) = mention.nodes.first() else {
            return QaResponse::refused(Refusal::NoEntityGrounded);
        };

        let content: FxHashSet<&str> = tokens
            .tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| *i < mention.start || *i >= mention.end)
            .map(|(_, t)| t.text.as_str())
            .filter(|w| !is_stopword(w) && !is_question_word(w))
            .collect();
        if content.is_empty() {
            return QaResponse::refused(Refusal::NoTemplateMatched);
        }

        // Score every lexicon predicate applicable to this entity.
        let mut best: Option<(f64, kbqa_core::PredId)> = None;
        for (&pred, patterns) in &self.lexicon.patterns {
            let path = self.catalog.resolve(pred);
            // Cheap applicability probe before scoring.
            if kbqa_rdf::path::objects_via_path(self.store, entity, path).is_empty() {
                continue;
            }
            let score = patterns
                .keys()
                .map(|p| Self::similarity(&content, p))
                .fold(0.0, f64::max);
            if score >= MIN_SIMILARITY && best.map(|(s, _)| score > s).unwrap_or(true) {
                best = Some((score, pred));
            }
        }
        let Some((score, pred)) = best else {
            // Nothing in the lexicon cleared the similarity bar — the
            // synonym system's θ analogue.
            return QaResponse::refused(Refusal::NoPredicateAboveTheta);
        };
        let path = self.catalog.resolve(pred);
        let entity_surface = self.store.surface(entity);
        let rendered_path = path.render(self.store);
        let answers: Vec<Answer> = kbqa_rdf::path::objects_via_path(self.store, entity, path)
            .into_iter()
            .map(|o| {
                let mut a = Answer::ranked(self.store.surface(o), score).with_provenance(
                    entity_surface.clone(),
                    "synonym-lexicon",
                    rendered_path.clone(),
                );
                a.node = Some(o);
                a
            })
            .collect();
        if answers.is_empty() {
            QaResponse::refused(Refusal::EmptyValueSet)
        } else {
            QaResponse::from_answers(answers)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::learn_boa;
    use kbqa_core::expansion::{expand, ExpansionConfig};
    use kbqa_rdf::{GraphBuilder, NodeId};

    fn fixture() -> (TripleStore, kbqa_core::expansion::ExpansionResult) {
        let mut b = GraphBuilder::new();
        let honolulu = b.resource("honolulu");
        let marriage = b.resource("m1");
        let obama = b.resource("obama");
        let michelle = b.resource("michelle");
        b.name(honolulu, "Honolulu");
        b.name(obama, "Barack Obama");
        b.name(michelle, "Michelle Obama");
        b.fact_int(honolulu, "population", 390_000);
        b.link(obama, "marriage", marriage);
        b.link(marriage, "person", michelle);
        let store = b.build();
        let sources: kbqa_common::hash::FxHashSet<NodeId> = [honolulu, obama].into_iter().collect();
        let expansion = expand(&store, &sources, &ExpansionConfig::default());
        (store, expansion)
    }

    #[test]
    fn synonym_phrase_reaches_predicate_without_its_name() {
        let (store, expansion) = fixture();
        let ner = GazetteerNer::from_store(&store);
        let (lexicon, _) = learn_boa(
            &store,
            &ner,
            &expansion,
            [
                "Honolulu number of people 390000",
                "Honolulu is married to Michelle Obama", // wrong subject form, ignored
                "Barack Obama is married to Michelle Obama",
            ],
        );
        let qa = SynonymQa::new(&store, &lexicon, &expansion.catalog);
        // "number of people" was learned as a synonym of population.
        let a = qa.answer_text("what is the total number of people in Honolulu");
        assert_eq!(a.top(), Some("390000"));
        // Spouse through the expanded predicate's synonym "is married to".
        let a = qa.answer_text("who is married to Barack Obama");
        assert_eq!(a.top(), Some("Michelle Obama"));
        assert_eq!(a.answers[0].predicate, "marriage→person→name");
    }

    #[test]
    fn fails_on_phrasings_absent_from_declarative_text() {
        let (store, expansion) = fixture();
        let ner = GazetteerNer::from_store(&store);
        let (lexicon, _) = learn_boa(
            &store,
            &ner,
            &expansion,
            ["Honolulu has a population of 390000"],
        );
        let qa = SynonymQa::new(&store, &lexicon, &expansion.catalog);
        // The paper's case ⓐ: nothing in "how many people are there"
        // overlaps "has a population of".
        let response = qa.answer_text("how many people are there in Honolulu");
        assert_eq!(response.refusal, Some(Refusal::NoPredicateAboveTheta));
        assert_eq!(qa.name(), "SynonymQA");
    }

    #[test]
    fn refuses_without_entity_or_content() {
        let (store, expansion) = fixture();
        let ner = GazetteerNer::from_store(&store);
        let (lexicon, _) = learn_boa(
            &store,
            &ner,
            &expansion,
            ["Honolulu has a population of 390000"],
        );
        let qa = SynonymQa::new(&store, &lexicon, &expansion.catalog);
        let response = qa.answer_text("what about Atlantis");
        assert_eq!(response.refusal, Some(Refusal::NoEntityGrounded));
        let response = qa.answer_text("Honolulu");
        assert_eq!(response.refusal, Some(Refusal::NoTemplateMatched));
    }
}
