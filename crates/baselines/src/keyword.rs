//! Keyword-based QA (paper Sec 1.2 category 2, after Unger & Cimiano \[29\]).
//!
//! Grounds the question entity, then scores that entity's *direct*
//! predicates by lexical overlap between the question's content keywords and
//! the predicate's name. Handles `what is the population of X?` (the word
//! `population` appears) but — the paper's running point — has no way to map
//! `how many people are there in X?` onto `population`.

use kbqa_core::engine::Answer;
use kbqa_core::service::{QaRequest, QaResponse, QaSystem, Refusal};
use kbqa_nlp::token::{is_question_word, is_stopword};
use kbqa_nlp::{tokenize, GazetteerNer};
use kbqa_rdf::TripleStore;

/// The keyword-matching system.
pub struct KeywordQa<'a> {
    store: &'a TripleStore,
    ner: GazetteerNer,
}

impl<'a> KeywordQa<'a> {
    /// Build over a store.
    pub fn new(store: &'a TripleStore) -> Self {
        Self {
            store,
            ner: GazetteerNer::from_store(store),
        }
    }
}

impl QaSystem for KeywordQa<'_> {
    fn name(&self) -> &str {
        "KeywordQA"
    }

    fn answer(&self, request: &QaRequest) -> QaResponse {
        let tokens = tokenize(&request.question);
        let mentions = self.ner.find_longest_mentions(&tokens);
        let Some(mention) = mentions.first() else {
            return QaResponse::refused(Refusal::NoEntityGrounded);
        };
        let Some(&entity) = mention.nodes.first() else {
            return QaResponse::refused(Refusal::NoEntityGrounded);
        };

        // Content keywords: outside the mention, not stopwords/wh-words.
        let keywords: Vec<&str> = tokens
            .tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| *i < mention.start || *i >= mention.end)
            .map(|(_, t)| t.text.as_str())
            .filter(|w| !is_stopword(w) && !is_question_word(w))
            .collect();
        if keywords.is_empty() {
            // No content words at all — nothing to match a predicate with.
            return QaResponse::refused(Refusal::NoTemplateMatched);
        }

        // Score each direct predicate of the entity by keyword overlap with
        // its name tokens.
        let mut best: Option<(f64, kbqa_rdf::PredicateId)> = None;
        let mut seen = Vec::new();
        for t in self.store.out_edges(entity) {
            if seen.contains(&t.p) {
                continue;
            }
            seen.push(t.p);
            let name = self.store.dict().predicate_name(t.p);
            let name_tokens: Vec<&str> = name.split(['_', ' ']).collect();
            let hits = name_tokens
                .iter()
                .filter(|nt| keywords.contains(nt))
                .count();
            if hits == 0 {
                continue;
            }
            let score = hits as f64 / name_tokens.len() as f64;
            if best.map(|(s, _)| score > s).unwrap_or(true) {
                best = Some((score, t.p));
            }
        }
        let Some((score, predicate)) = best else {
            // No predicate name overlapped the keywords — the lexical
            // analogue of no predicate clearing θ.
            return QaResponse::refused(Refusal::NoPredicateAboveTheta);
        };
        let entity_surface = self.store.surface(entity);
        let predicate_name = self.store.dict().predicate_name(predicate).to_owned();
        let template = format!("keywords:{}", keywords.join(" "));
        let answers: Vec<Answer> = self
            .store
            .objects(entity, predicate)
            .map(|o| {
                let mut a = Answer::ranked(self.store.surface(o), score).with_provenance(
                    entity_surface.clone(),
                    template.clone(),
                    predicate_name.clone(),
                );
                a.node = Some(o);
                a
            })
            .collect();
        if answers.is_empty() {
            QaResponse::refused(Refusal::EmptyValueSet)
        } else {
            QaResponse::from_answers(answers)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_rdf::GraphBuilder;

    fn store() -> TripleStore {
        let mut b = GraphBuilder::new();
        let honolulu = b.resource("honolulu");
        let tokyo = b.resource("tokyo");
        b.name(honolulu, "Honolulu");
        b.name(tokyo, "Tokyo");
        b.fact_int(honolulu, "population", 390_000);
        b.fact_int(honolulu, "area", 177);
        b.fact_int(tokyo, "population", 13_960_000);
        b.build()
    }

    #[test]
    fn matches_predicate_named_in_question() {
        let store = store();
        let qa = KeywordQa::new(&store);
        let a = qa.answer_text("what is the population of Honolulu");
        assert_eq!(a.top(), Some("390000"));
        assert_eq!(a.answers[0].entity, "Honolulu");
        assert_eq!(a.answers[0].predicate, "population");
        let a = qa.answer_text("tell me the area of Honolulu");
        assert_eq!(a.top(), Some("177"));
    }

    #[test]
    fn fails_on_paraphrases_without_lexical_overlap() {
        // The paper's core criticism of keyword systems — and the refusal
        // names the predicate-matching stage.
        let store = store();
        let qa = KeywordQa::new(&store);
        let response = qa.answer_text("how many people are there in Honolulu");
        assert_eq!(response.refusal, Some(Refusal::NoPredicateAboveTheta));
        let response = qa.answer_text("what is the total number of people in Honolulu");
        assert!(!response.answered());
    }

    #[test]
    fn requires_a_grounded_entity() {
        let store = store();
        let qa = KeywordQa::new(&store);
        let response = qa.answer_text("what is the population of Atlantis");
        assert_eq!(response.refusal, Some(Refusal::NoEntityGrounded));
        assert_eq!(qa.name(), "KeywordQA");
    }

    #[test]
    fn keyword_only_questions_refused() {
        let store = store();
        let qa = KeywordQa::new(&store);
        let response = qa.answer_text("Honolulu?");
        assert_eq!(response.refusal, Some(Refusal::NoTemplateMatched));
    }
}
