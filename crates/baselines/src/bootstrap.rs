//! BOA-style bootstrapping (paper Sec 1.2/Sec 8; Table 12 comparator).
//!
//! Bootstrapping \[14, 28\] learns, for each predicate, the *text patterns
//! between subject and object* occurring in web documents: from
//! `"Honolulu has a population of 390000"` it extracts the pattern
//! `has a population of` as a synonym surface for `population`. The learned
//! lexicon doubles as (a) the synonym inventory of [`crate::SynonymQa`] and
//! (b) the coverage comparator of Table 12 (patterns ≈ templates,
//! relations ≈ predicates).
//!
//! KB connections between the subject and object are resolved through the
//! expansion index from [`kbqa_core::expansion`], so multi-edge relations
//! (`marriage→person→name`) participate exactly as in the KBQA learner.

use kbqa_common::hash::FxHashMap;
use serde::{Deserialize, Serialize};

use kbqa_core::catalog::PredId;
use kbqa_core::expansion::ExpansionResult;
use kbqa_nlp::{tokenize, GazetteerNer};
use kbqa_rdf::TripleStore;

/// A learned synonym lexicon: predicate → weighted surface patterns.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BoaLexicon {
    /// predicate → (pattern tokens joined by space → count).
    pub patterns: FxHashMap<PredId, FxHashMap<String, u32>>,
}

impl BoaLexicon {
    /// Distinct `(predicate, pattern)` pairs — the "templates" column of
    /// Table 12.
    pub fn pattern_count(&self) -> usize {
        self.patterns.values().map(|m| m.len()).sum()
    }

    /// Predicates with at least one pattern — Table 12's "predicates".
    pub fn predicate_count(&self) -> usize {
        self.patterns.len()
    }

    /// Patterns of one predicate, sorted by descending count.
    pub fn patterns_of(&self, pred: PredId) -> Vec<(&str, u32)> {
        let mut v: Vec<(&str, u32)> = self
            .patterns
            .get(&pred)
            .map(|m| m.iter().map(|(s, &c)| (s.as_str(), c)).collect())
            .unwrap_or_default();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Iterate `(predicate, pattern, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (PredId, &str, u32)> {
        self.patterns
            .iter()
            .flat_map(|(&p, m)| m.iter().map(move |(s, &c)| (p, s.as_str(), c)))
    }
}

/// Aggregate coverage statistics (Table 12 row).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoaStats {
    /// Sentences consumed.
    pub sentences: usize,
    /// Distinct (predicate, pattern) pairs learned.
    pub templates: usize,
    /// Distinct predicates covered.
    pub predicates: usize,
}

/// Learn a lexicon from declarative sentences.
///
/// For each sentence: ground the longest entity mention, locate any KB value
/// of that entity elsewhere in the sentence (via the expansion index), and
/// record the token sequence *between* the two as a pattern for each
/// connecting predicate.
pub fn learn_boa<'s>(
    store: &TripleStore,
    ner: &GazetteerNer,
    expansion: &ExpansionResult,
    sentences: impl IntoIterator<Item = &'s str>,
) -> (BoaLexicon, BoaStats) {
    let mut lexicon = BoaLexicon::default();
    let mut stats = BoaStats::default();
    for sentence in sentences {
        stats.sentences += 1;
        let tokens = tokenize(sentence);
        let words = tokens.words();
        let mentions = ner.find_longest_mentions(&tokens);
        for mention in &mentions {
            for &entity in &mention.nodes {
                let Some(neighbors) = expansion.by_subject.get(&entity) else {
                    continue;
                };
                for &(pred, object) in neighbors {
                    let surface = store.surface(object);
                    let object_tokens = tokenize(&surface);
                    if object_tokens.is_empty() {
                        continue;
                    }
                    let object_words = object_tokens.words();
                    // Locate the object after the mention (BOA's canonical
                    // subject-pattern-object shape).
                    let Some(obj_pos) = find_subsequence(&words, &object_words, mention.end) else {
                        continue;
                    };
                    let between = words[mention.end..obj_pos].join(" ");
                    if between.is_empty() {
                        continue;
                    }
                    *lexicon
                        .patterns
                        .entry(pred)
                        .or_default()
                        .entry(between)
                        .or_insert(0) += 1;
                }
            }
        }
    }
    stats.templates = lexicon.pattern_count();
    stats.predicates = lexicon.predicate_count();
    (lexicon, stats)
}

/// First position ≥ `from` where `needle` occurs contiguously in `haystack`.
fn find_subsequence(haystack: &[&str], needle: &[&str], from: usize) -> Option<usize> {
    if needle.is_empty() || from >= haystack.len() {
        return None;
    }
    (from..=haystack.len().saturating_sub(needle.len()))
        .find(|&i| &haystack[i..i + needle.len()] == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_common::hash::FxHashSet;
    use kbqa_core::expansion::{expand, ExpansionConfig};
    use kbqa_rdf::{GraphBuilder, NodeId};

    fn fixture() -> (TripleStore, GazetteerNer, ExpansionResult, NodeId) {
        let mut b = GraphBuilder::new();
        let honolulu = b.resource("honolulu");
        b.name(honolulu, "Honolulu");
        b.fact_int(honolulu, "population", 390_000);
        b.fact_int(honolulu, "area", 177);
        let store = b.build();
        let ner = GazetteerNer::from_store(&store);
        let sources: FxHashSet<NodeId> = [honolulu].into_iter().collect();
        let expansion = expand(&store, &sources, &ExpansionConfig::default());
        (store, ner, expansion, honolulu)
    }

    #[test]
    fn learns_between_patterns() {
        let (store, ner, expansion, _) = fixture();
        let sentences = [
            "Honolulu has a population of 390000",
            "Honolulu has a population of 390000",
            "the area of Honolulu is 177", // object before subject → skipped
            "Honolulu covers an area of 177",
        ];
        let (lexicon, stats) = learn_boa(&store, &ner, &expansion, sentences);
        assert_eq!(stats.sentences, 4);
        assert_eq!(stats.predicates, 2);
        let pop = store.dict().find_predicate("population").unwrap();
        let pop_pred = expansion
            .catalog
            .get(&kbqa_rdf::ExpandedPredicate::single(pop))
            .unwrap();
        let patterns = lexicon.patterns_of(pop_pred);
        assert_eq!(patterns[0], ("has a population of", 2));
    }

    #[test]
    fn no_patterns_from_unrelated_text() {
        let (store, ner, expansion, _) = fixture();
        let (lexicon, stats) = learn_boa(
            &store,
            &ner,
            &expansion,
            ["the weather is nice today", "Honolulu is lovely"],
        );
        assert_eq!(lexicon.pattern_count(), 0);
        assert_eq!(stats.templates, 0);
    }

    #[test]
    fn find_subsequence_works() {
        let hay = ["a", "b", "c", "b"];
        assert_eq!(find_subsequence(&hay, &["b"], 0), Some(1));
        assert_eq!(find_subsequence(&hay, &["b"], 2), Some(3));
        assert_eq!(find_subsequence(&hay, &["b", "c"], 0), Some(1));
        assert_eq!(find_subsequence(&hay, &["z"], 0), None);
        assert_eq!(find_subsequence(&hay, &[], 0), None);
    }

    #[test]
    fn iter_and_counts_are_consistent() {
        let (store, ner, expansion, _) = fixture();
        let (lexicon, stats) = learn_boa(
            &store,
            &ner,
            &expansion,
            ["Honolulu has a population of 390000"],
        );
        assert_eq!(lexicon.iter().count(), stats.templates);
    }
}
