#![warn(missing_docs)]

//! Baseline QA systems for the KBQA reproduction.
//!
//! The paper (Sec 1.2, Sec 8) organizes prior knowledge-base QA into three
//! families by how they identify the predicate; each family is rebuilt here
//! behind the shared [`kbqa_core::QaSystem`] trait so every evaluation
//! harness treats KBQA and the baselines identically:
//!
//! * [`rule::RuleBasedQa`] — canned syntactic rules ("What is the `<x>` of
//!   `<entity>`?" → predicate `<x>`), after Ou et al. High precision,
//!   minimal recall.
//! * [`keyword::KeywordQa`] — maps content keywords onto predicate names by
//!   lexical overlap. Cannot bridge `how many people …` → `population`.
//! * [`synonym::SynonymQa`] — DEANNA-style: scores predicates through a
//!   synonym lexicon learned from declarative text; broader than keywords
//!   but still phrase-bound.
//! * [`bootstrap`] — the BOA-style pattern learner producing that lexicon,
//!   and the coverage comparator for Table 12.

pub mod bootstrap;
pub mod keyword;
pub mod rule;
pub mod synonym;

pub use bootstrap::{learn_boa, BoaLexicon, BoaStats};
pub use keyword::KeywordQa;
pub use rule::RuleBasedQa;
pub use synonym::SynonymQa;
