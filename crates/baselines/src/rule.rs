//! Rule-based QA (paper Sec 1.2 category 1, after Ou et al. \[23\]).
//!
//! Understands a small set of canned question forms and maps the slot
//! word(s) directly onto a predicate name:
//!
//! * `what/who is the <x> of <entity>` → predicate `<x>`
//! * `what is <entity> 's <x>` → predicate `<x>`
//!
//! Exactly as the paper argues, this yields high precision (the rule is
//! explicit) and low recall (anything off-pattern is refused).

use kbqa_core::engine::Answer;
use kbqa_core::service::{QaRequest, QaResponse, QaSystem, Refusal};
use kbqa_nlp::{tokenize, GazetteerNer};
use kbqa_rdf::TripleStore;

/// The rule-based system.
pub struct RuleBasedQa<'a> {
    store: &'a TripleStore,
    ner: GazetteerNer,
}

impl<'a> RuleBasedQa<'a> {
    /// Build over a store (the gazetteer grounds the entity slot).
    pub fn new(store: &'a TripleStore) -> Self {
        Self {
            store,
            ner: GazetteerNer::from_store(store),
        }
    }

    /// Try the canned forms; return the predicate word and entity window.
    fn parse(&self, words: &[&str]) -> Option<(String, usize, usize)> {
        let n = words.len();
        // Form 1: (what|who) is the <x> of <entity...>
        if n >= 6 && matches!(words[0], "what" | "who") && words[1] == "is" && words[2] == "the" {
            if let Some(of_pos) = words.iter().position(|&w| w == "of") {
                if of_pos > 3 && of_pos + 1 < n {
                    let pred = words[3..of_pos].join("_");
                    return Some((pred, of_pos + 1, n));
                }
            }
        }
        // Form 2: what is <entity...> 's <x...>
        if n >= 5 && words[0] == "what" && words[1] == "is" {
            if let Some(pos_pos) = words.iter().position(|&w| w == "'s") {
                if pos_pos > 2 && pos_pos + 1 < n {
                    let pred = words[pos_pos + 1..].join("_");
                    return Some((pred, 2, pos_pos));
                }
            }
        }
        None
    }
}

impl QaSystem for RuleBasedQa<'_> {
    fn name(&self) -> &str {
        "RuleQA"
    }

    fn answer(&self, request: &QaRequest) -> QaResponse {
        let tokens = tokenize(&request.question);
        let words = tokens.words();
        let Some((pred_word, ent_start, ent_end)) = self.parse(&words) else {
            // Off-pattern phrasing: no canned rule (template) applies.
            return QaResponse::refused(Refusal::NoTemplateMatched);
        };
        let Some(predicate) = self.store.dict().find_predicate(&pred_word) else {
            // Rule matched but the slot word names no KB predicate.
            return QaResponse::refused(Refusal::NoPredicateAboveTheta);
        };
        let mention = tokens.join(ent_start, ent_end);
        let entities = self.ner.ground(&mention);
        let Some(&entity) = entities.first() else {
            return QaResponse::refused(Refusal::NoEntityGrounded);
        };
        let entity_surface = self.store.surface(entity);
        let template = format!("rule:what is the {pred_word} of $e");
        let answers: Vec<Answer> = self
            .store
            .objects(entity, predicate)
            .map(|o| {
                let mut a = Answer::ranked(self.store.surface(o), 1.0).with_provenance(
                    entity_surface.clone(),
                    template.clone(),
                    pred_word.clone(),
                );
                a.node = Some(o);
                a
            })
            .collect();
        if answers.is_empty() {
            QaResponse::refused(Refusal::EmptyValueSet)
        } else {
            QaResponse::from_answers(answers)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_rdf::GraphBuilder;

    fn store() -> TripleStore {
        let mut b = GraphBuilder::new();
        let honolulu = b.resource("honolulu");
        let mayor = b.resource("mayor1");
        b.name(honolulu, "Honolulu");
        b.name(mayor, "Rick Blangiardi");
        b.fact_int(honolulu, "population", 390_000);
        b.link(honolulu, "mayor", mayor);
        b.build()
    }

    #[test]
    fn answers_canned_what_is_the_x_of() {
        let store = store();
        let qa = RuleBasedQa::new(&store);
        let a = qa.answer_text("What is the population of Honolulu?");
        assert_eq!(a.top(), Some("390000"));
        assert_eq!(a.answers[0].predicate, "population");
    }

    #[test]
    fn entity_valued_predicates_render_names() {
        let store = store();
        let qa = RuleBasedQa::new(&store);
        let a = qa.answer_text("Who is the mayor of Honolulu?");
        assert_eq!(a.top(), Some("Rick Blangiardi"));
    }

    #[test]
    fn possessive_form() {
        let store = store();
        let qa = RuleBasedQa::new(&store);
        let a = qa.answer_text("What is Honolulu's population?");
        assert_eq!(a.top(), Some("390000"));
    }

    #[test]
    fn off_pattern_questions_are_refused() {
        let store = store();
        let qa = RuleBasedQa::new(&store);
        // The paper's motivating case: no rule matches this phrasing.
        let response = qa.answer_text("How many people are there in Honolulu?");
        assert_eq!(response.refusal, Some(Refusal::NoTemplateMatched));
        assert!(!qa.answer_text("population please").answered());
    }

    #[test]
    fn unknown_predicate_or_entity_refused() {
        let store = store();
        let qa = RuleBasedQa::new(&store);
        let response = qa.answer_text("What is the altitude of Honolulu?");
        assert_eq!(response.refusal, Some(Refusal::NoPredicateAboveTheta));
        let response = qa.answer_text("What is the population of Atlantis?");
        assert_eq!(response.refusal, Some(Refusal::NoEntityGrounded));
        assert_eq!(qa.name(), "RuleQA");
    }
}
