//! Rule-based QA (paper Sec 1.2 category 1, after Ou et al. \[23\]).
//!
//! Understands a small set of canned question forms and maps the slot
//! word(s) directly onto a predicate name:
//!
//! * `what/who is the <x> of <entity>` → predicate `<x>`
//! * `what is <entity> 's <x>` → predicate `<x>`
//!
//! Exactly as the paper argues, this yields high precision (the rule is
//! explicit) and low recall (anything off-pattern is refused).

use kbqa_core::engine::{QaSystem, SystemAnswer};
use kbqa_nlp::{tokenize, GazetteerNer};
use kbqa_rdf::TripleStore;

/// The rule-based system.
pub struct RuleBasedQa<'a> {
    store: &'a TripleStore,
    ner: GazetteerNer,
}

impl<'a> RuleBasedQa<'a> {
    /// Build over a store (the gazetteer grounds the entity slot).
    pub fn new(store: &'a TripleStore) -> Self {
        Self {
            store,
            ner: GazetteerNer::from_store(store),
        }
    }

    /// Try the canned forms; return the predicate word and entity window.
    fn parse(&self, words: &[&str]) -> Option<(String, usize, usize)> {
        let n = words.len();
        // Form 1: (what|who) is the <x> of <entity...>
        if n >= 6
            && matches!(words[0], "what" | "who")
            && words[1] == "is"
            && words[2] == "the"
        {
            if let Some(of_pos) = words.iter().position(|&w| w == "of") {
                if of_pos > 3 && of_pos + 1 < n {
                    let pred = words[3..of_pos].join("_");
                    return Some((pred, of_pos + 1, n));
                }
            }
        }
        // Form 2: what is <entity...> 's <x...>
        if n >= 5 && words[0] == "what" && words[1] == "is" {
            if let Some(pos_pos) = words.iter().position(|&w| w == "'s") {
                if pos_pos > 2 && pos_pos + 1 < n {
                    let pred = words[pos_pos + 1..].join("_");
                    return Some((pred, 2, pos_pos));
                }
            }
        }
        None
    }
}

impl QaSystem for RuleBasedQa<'_> {
    fn name(&self) -> &str {
        "RuleQA"
    }

    fn answer(&self, question: &str) -> Option<SystemAnswer> {
        let tokens = tokenize(question);
        let words = tokens.words();
        let (pred_word, ent_start, ent_end) = self.parse(&words)?;
        let predicate = self.store.dict().find_predicate(&pred_word)?;
        let mention = tokens.join(ent_start, ent_end);
        let entities = self.ner.ground(&mention);
        let entity = *entities.first()?;
        let values: Vec<(String, f64)> = self
            .store
            .objects(entity, predicate)
            .map(|o| (self.store.surface(o), 1.0))
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(SystemAnswer { values })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_rdf::GraphBuilder;

    fn store() -> TripleStore {
        let mut b = GraphBuilder::new();
        let honolulu = b.resource("honolulu");
        let mayor = b.resource("mayor1");
        b.name(honolulu, "Honolulu");
        b.name(mayor, "Rick Blangiardi");
        b.fact_int(honolulu, "population", 390_000);
        b.link(honolulu, "mayor", mayor);
        b.build()
    }

    #[test]
    fn answers_canned_what_is_the_x_of() {
        let store = store();
        let qa = RuleBasedQa::new(&store);
        let a = qa.answer("What is the population of Honolulu?").unwrap();
        assert_eq!(a.top(), Some("390000"));
    }

    #[test]
    fn entity_valued_predicates_render_names() {
        let store = store();
        let qa = RuleBasedQa::new(&store);
        let a = qa.answer("Who is the mayor of Honolulu?").unwrap();
        assert_eq!(a.top(), Some("Rick Blangiardi"));
    }

    #[test]
    fn possessive_form() {
        let store = store();
        let qa = RuleBasedQa::new(&store);
        let a = qa.answer("What is Honolulu's population?").unwrap();
        assert_eq!(a.top(), Some("390000"));
    }

    #[test]
    fn off_pattern_questions_are_refused() {
        let store = store();
        let qa = RuleBasedQa::new(&store);
        // The paper's motivating case: no rule matches this phrasing.
        assert!(qa.answer("How many people are there in Honolulu?").is_none());
        assert!(qa.answer("population please").is_none());
    }

    #[test]
    fn unknown_predicate_or_entity_refused() {
        let store = store();
        let qa = RuleBasedQa::new(&store);
        assert!(qa.answer("What is the altitude of Honolulu?").is_none());
        assert!(qa.answer("What is the population of Atlantis?").is_none());
        assert_eq!(qa.name(), "RuleQA");
    }
}
