//! The per-request lap timer that lives inside the engine's scratch space.
//!
//! `StageTrace` uses a *lap* model rather than start/stop pairs: the engine
//! marks each stage **boundary**, and the time since the previous mark is
//! attributed to the stage that just ended. That halves the clock reads of
//! a start/stop design (one `Instant::now()` per boundary, ~12–18 per
//! traced request) and keeps the bookkeeping to an add into a fixed
//! `[u64; 8]` — no heap allocation, ever.
//!
//! Cost model, measured against the ~1.7 µs zero-alloc kernel:
//!
//! - **disarmed** (no sink installed, or the sampler skipped this request):
//!   every [`lap`](StageTrace::lap) is a single predicted branch — the CI
//!   perf gate and the kernel benchmarks run in this mode and are
//!   unaffected;
//! - **armed**: ~25 ns per boundary for the monotonic clock read, which is
//!   why services sample kernel-granularity tracing 1-in-N by default;
//! - **compiled out** (`stage-timers` feature disabled): every method body
//!   is behind `cfg!(feature = "stage-timers")`, so the whole mechanism
//!   constant-folds to no-ops and even the branch disappears.

use std::time::Instant;

use crate::stage::{Stage, StageBreakdown, StageStats};

/// A wait-free, allocation-free per-request stage timer. Embed one in each
/// reusable scratch space; it is `Send` and costs 80 bytes.
#[derive(Clone, Debug)]
pub struct StageTrace {
    active: bool,
    last: Instant,
    accum_ns: [u64; Stage::COUNT],
}

impl Default for StageTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl StageTrace {
    /// A disarmed trace.
    pub fn new() -> Self {
        Self {
            active: false,
            last: Instant::now(),
            accum_ns: [0; Stage::COUNT],
        }
    }

    /// Whether laps are currently being recorded.
    #[inline]
    pub fn is_active(&self) -> bool {
        cfg!(feature = "stage-timers") && self.active
    }

    /// Arm (or disarm) the trace for one request. Arming resets the
    /// accumulators and starts the first lap.
    #[inline]
    pub fn begin(&mut self, arm: bool) {
        if !cfg!(feature = "stage-timers") {
            return;
        }
        self.active = arm;
        if arm {
            self.accum_ns = [0; Stage::COUNT];
            self.last = Instant::now();
        }
    }

    /// Mark a stage boundary: attribute time since the previous mark to
    /// `stage`. A disarmed trace returns after one predicted branch.
    #[inline]
    pub fn lap(&mut self, stage: Stage) {
        if !cfg!(feature = "stage-timers") || !self.active {
            return;
        }
        let now = Instant::now();
        self.accum_ns[stage as usize] +=
            u64::try_from(now.duration_since(self.last).as_nanos()).unwrap_or(u64::MAX);
        self.last = now;
    }

    /// Reset the lap clock without attributing the elapsed interval to any
    /// stage (for skipping untimed gaps, e.g. queue wait between kernel
    /// exit and serialization).
    #[inline]
    pub fn skip(&mut self) {
        if !cfg!(feature = "stage-timers") || !self.active {
            return;
        }
        self.last = Instant::now();
    }

    /// Disarm and return the accumulated breakdown without flushing it to
    /// any sink. `None` if the trace was not armed.
    #[inline]
    pub fn take(&mut self) -> Option<StageBreakdown> {
        if !self.is_active() {
            return None;
        }
        self.active = false;
        Some(StageBreakdown::from_ns(&self.accum_ns))
    }

    /// Disarm, flush one observation per stage into `stats`, and return
    /// the per-request breakdown. `None` (and no flush) if the trace was
    /// not armed. Flushing is atomics-only — no allocation.
    #[inline]
    pub fn finish(&mut self, stats: &StageStats) -> Option<StageBreakdown> {
        let breakdown = self.take()?;
        stats.record_breakdown(&breakdown);
        Some(breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_trace_records_nothing() {
        let stats = StageStats::new();
        let mut trace = StageTrace::new();
        trace.lap(Stage::Parse);
        trace.lap(Stage::ValueLookup);
        assert!(trace.finish(&stats).is_none());
        assert_eq!(stats.traced_requests(), 0);
        assert_eq!(stats.snapshot().stages[0].latency.count, 0);
    }

    #[cfg(feature = "stage-timers")]
    #[test]
    fn armed_trace_attributes_laps_and_flushes() {
        let stats = StageStats::new();
        let mut trace = StageTrace::new();
        trace.begin(true);
        assert!(trace.is_active());
        std::thread::sleep(std::time::Duration::from_millis(2));
        trace.lap(Stage::NerGrounding);
        trace.lap(Stage::RankTopK); // ~0 elapsed since previous lap
        let breakdown = trace.finish(&stats).expect("armed trace yields breakdown");
        assert!(!trace.is_active());
        assert!(
            breakdown.ner_grounding_us >= 1_000,
            "2ms sleep must be attributed to the lap that ended it, got {breakdown:?}"
        );
        assert_eq!(stats.traced_requests(), 1);
        assert_eq!(stats.histogram(Stage::NerGrounding).snapshot().count, 1);
        // A finished trace is disarmed: further laps/finishes are no-ops.
        trace.lap(Stage::Parse);
        assert!(trace.finish(&stats).is_none());
        assert_eq!(stats.traced_requests(), 1);
    }

    #[cfg(feature = "stage-timers")]
    #[test]
    fn skip_discards_the_gap() {
        let mut trace = StageTrace::new();
        trace.begin(true);
        std::thread::sleep(std::time::Duration::from_millis(2));
        trace.skip(); // the sleep is not attributed to anything
        trace.lap(Stage::Serialize);
        let b = trace.take().unwrap();
        assert!(
            b.serialize_us < 2_000,
            "skipped gap leaked into the next lap: {b:?}"
        );
    }

    #[cfg(feature = "stage-timers")]
    #[test]
    fn begin_rearms_cleanly_between_requests() {
        let stats = StageStats::new();
        let mut trace = StageTrace::new();
        trace.begin(true);
        std::thread::sleep(std::time::Duration::from_millis(1));
        trace.lap(Stage::Parse);
        trace.finish(&stats);
        trace.begin(true);
        trace.lap(Stage::Parse);
        let b = trace.take().unwrap();
        assert!(
            b.parse_us < 1_000,
            "re-arm must reset accumulators, got {b:?}"
        );
        // begin(false) disarms.
        trace.begin(false);
        assert!(!trace.is_active());
    }

    #[cfg(not(feature = "stage-timers"))]
    #[test]
    fn compiled_out_trace_is_inert() {
        let stats = StageStats::new();
        let mut trace = StageTrace::new();
        trace.begin(true);
        trace.lap(Stage::Parse);
        assert!(!trace.is_active());
        assert!(trace.finish(&stats).is_none());
    }
}
