//! Fixed-bucket latency histograms with wait-free recording.
//!
//! Moved here from `kbqa-server::metrics` (which re-exports these types for
//! compatibility) so the engine, bench binaries, and server all record into
//! the same shape. Recording is `fetch_add` on relaxed atomics; snapshots
//! are taken field-by-field without stopping writers, so a snapshot racing
//! live traffic can be off by in-flight increments — fine for operational
//! counters, which only ever move forward.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Upper bounds (µs, inclusive) of the fixed latency buckets; an implicit
/// overflow bucket catches everything slower. Spans 50 µs (cache hit) to
/// 250 ms (pathological decomposition) in roughly ×2–×2.5 steps.
pub const BUCKET_BOUNDS_US: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
];

/// A fixed-bucket latency histogram with wait-free recording.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    /// One counter per bound plus the overflow bucket.
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&self, elapsed: Duration) {
        self.record_us(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Record one observation already expressed in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US.partition_point(|&bound| bound < us);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// A point-in-time copy, with derived mean and quantile estimates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let total_us = self.total_us.load(Ordering::Relaxed);
        let buckets = counts
            .iter()
            .enumerate()
            .map(|(i, &n)| BucketCount {
                le_us: BUCKET_BOUNDS_US.get(i).copied(),
                count: n,
            })
            .collect();
        HistogramSnapshot {
            count,
            total_us,
            mean_us: if count == 0 {
                0.0
            } else {
                total_us as f64 / count as f64
            },
            p50_us: quantile_upper_bound(&counts, count, 0.50),
            p95_us: quantile_upper_bound(&counts, count, 0.95),
            p99_us: quantile_upper_bound(&counts, count, 0.99),
            buckets,
        }
    }
}

/// The bucket upper bound containing the `q`-quantile observation. An
/// estimate from above: the true value lies at or below it. Observations in
/// the overflow bucket report the largest finite bound (the histogram cannot
/// resolve past it).
fn quantile_upper_bound(counts: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = ((q * count as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &n) in counts.iter().enumerate() {
        seen += n;
        if seen >= target {
            return BUCKET_BOUNDS_US
                .get(i)
                .copied()
                .unwrap_or(BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]);
        }
    }
    BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]
}

/// One histogram bucket in a snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound in µs; `None` is the overflow bucket.
    pub le_us: Option<u64>,
    /// Observations in this bucket.
    pub count: u64,
}

/// A serializable view of a [`LatencyHistogram`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, µs.
    pub total_us: u64,
    /// Mean observation, µs.
    pub mean_us: f64,
    /// Median estimate (bucket upper bound), µs.
    pub p50_us: u64,
    /// 95th percentile estimate (bucket upper bound), µs.
    pub p95_us: u64,
    /// 99th percentile estimate (bucket upper bound), µs.
    pub p99_us: u64,
    /// Per-bucket counts, in bound order.
    pub buckets: Vec<BucketCount>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_observations_by_bound() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(10)); // → le 50
        h.record(Duration::from_micros(50)); // boundary is inclusive → le 50
        h.record(Duration::from_micros(51)); // → le 100
        h.record(Duration::from_millis(300)); // → overflow
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(
            snap.buckets[0],
            BucketCount {
                le_us: Some(50),
                count: 2
            }
        );
        assert_eq!(snap.buckets[1].count, 1);
        let overflow = snap.buckets.last().unwrap();
        assert_eq!(overflow.le_us, None);
        assert_eq!(overflow.count, 1);
    }

    #[test]
    fn quantiles_are_upper_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(80)); // le 100
        }
        h.record(Duration::from_micros(40_000)); // le 50_000
        let snap = h.snapshot();
        assert_eq!(snap.p50_us, 100);
        assert_eq!(snap.p95_us, 100);
        assert_eq!(snap.p99_us, 100);
        // The single slow observation only surfaces past p99.
        assert_eq!(quantile_upper_bound(&[0; 0], 0, 0.5), 0);
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.mean_us, 0.0);
        assert_eq!(snap.p99_us, 0);
        assert!(snap.buckets.iter().all(|b| b.count == 0));
    }

    /// Satellite: exact-boundary and overflow behavior of the quantile
    /// estimator. Each bound is inclusive (`partition_point(bound < us)`),
    /// `bound + 1` spills into the next bucket, and `u64::MAX`-µs
    /// observations land in the overflow bucket, whose quantile estimate
    /// saturates at the largest finite bound.
    #[test]
    fn quantile_estimation_at_bucket_boundaries() {
        for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
            let h = LatencyHistogram::new();
            h.record(Duration::from_micros(bound));
            let snap = h.snapshot();
            assert_eq!(
                snap.buckets[i].count, 1,
                "exactly-on-bound observation {bound}µs must land in its own bucket"
            );
            assert_eq!(snap.p50_us, bound);
            assert_eq!(snap.p95_us, bound);
            assert_eq!(snap.p99_us, bound);

            let h = LatencyHistogram::new();
            h.record(Duration::from_micros(bound + 1));
            let snap = h.snapshot();
            let expected = BUCKET_BOUNDS_US
                .get(i + 1)
                .copied()
                .unwrap_or(BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1]);
            assert_eq!(
                snap.buckets[i + 1].count,
                1,
                "{bound}+1µs must spill into the next bucket"
            );
            assert_eq!(snap.p50_us, expected);
            assert_eq!(snap.p99_us, expected);
        }
    }

    #[test]
    fn overflow_bucket_saturates_quantiles_at_largest_finite_bound() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(u64::MAX));
        h.record_us(u64::MAX);
        let snap = h.snapshot();
        let last_finite = BUCKET_BOUNDS_US[BUCKET_BOUNDS_US.len() - 1];
        assert_eq!(snap.buckets.last().unwrap().count, 2);
        assert_eq!(snap.p50_us, last_finite);
        assert_eq!(snap.p95_us, last_finite);
        assert_eq!(snap.p99_us, last_finite);
        assert_eq!(snap.count, 2);
    }

    /// A mixed population: 50 fast + 45 medium + 5 slow observations.
    /// p50 must sit in the fast bucket, p95 in the medium one, p99 in the
    /// slow one — pinning that `target = ceil(q·count).max(1)` walks the
    /// cumulative counts correctly at the 50/95/99 cut points.
    #[test]
    fn quantiles_split_mixed_population_by_bucket() {
        let h = LatencyHistogram::new();
        for _ in 0..50 {
            h.record_us(40); // le 50
        }
        for _ in 0..45 {
            h.record_us(400); // le 500
        }
        for _ in 0..5 {
            h.record_us(9_000); // le 10_000
        }
        let snap = h.snapshot();
        assert_eq!(snap.p50_us, 50);
        assert_eq!(snap.p95_us, 500);
        assert_eq!(snap.p99_us, 10_000);
    }
}
