//! Prometheus text exposition (format version 0.0.4) and a line-format
//! validator.
//!
//! [`PromWriter`] renders counters, gauges, and histograms into the
//! classic `# HELP` / `# TYPE` / sample-line layout. Histograms follow the
//! Prometheus contract exactly: `_bucket` samples carry **cumulative**
//! counts (our [`HistogramSnapshot`] stores per-bucket counts, so the
//! writer converts), `le` bounds are rendered in **seconds**, and every
//! histogram ends with a `+Inf` bucket, `_sum`, and `_count`.
//!
//! [`validate_exposition`] is the small hand-rolled checker the test suite
//! (and CI) runs against `GET /metrics?format=prometheus`: metric-name and
//! label syntax, float parsing, `TYPE`-before-samples ordering, bucket
//! monotonicity, and `_sum`/`_count` presence per histogram series.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;

/// Incremental renderer for one exposition document.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and take the rendered text.
    pub fn finish(self) -> String {
        self.out
    }

    /// Emit the `# HELP` / `# TYPE` header for a metric family.
    pub fn family(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emit one sample line with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {}", render_value(value));
    }

    /// A complete single-sample counter family.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.family(name, help, "counter");
        self.sample(name, &[], value as f64);
    }

    /// A complete single-sample gauge family.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.family(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// Histogram samples for one series: cumulative `_bucket`s with `le`
    /// in seconds, then `_sum` (seconds) and `_count`. Emit
    /// [`family`](Self::family) with kind `histogram` once per metric name
    /// before the first series.
    pub fn histogram_series(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        snapshot: &HistogramSnapshot,
    ) {
        let bucket_name = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for bucket in &snapshot.buckets {
            cumulative += bucket.count;
            let le = match bucket.le_us {
                Some(us) => render_value(us as f64 / 1e6),
                None => "+Inf".to_string(),
            };
            let mut with_le: Vec<(&str, &str)> = Vec::with_capacity(labels.len() + 1);
            with_le.extend_from_slice(labels);
            with_le.push(("le", le.as_str()));
            self.sample(&bucket_name, &with_le, cumulative as f64);
        }
        self.sample(
            &format!("{name}_sum"),
            labels,
            snapshot.total_us as f64 / 1e6,
        );
        self.sample(&format!("{name}_count"), labels, snapshot.count as f64);
    }

    /// A complete histogram family with a single unlabeled series.
    pub fn histogram(&mut self, name: &str, help: &str, snapshot: &HistogramSnapshot) {
        self.family(name, help, "histogram");
        self.histogram_series(name, &[], snapshot);
    }
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a value the way Prometheus clients expect: integral values
/// without a fractional part, everything else via shortest-roundtrip
/// float formatting (Rust's `Display` never uses exponent notation).
fn render_value(value: f64) -> String {
    if value == value.trunc() && value.is_finite() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample line.
struct Sample {
    name: String,
    /// Label pairs in appearance order.
    labels: Vec<(String, String)>,
    value: f64,
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let err = |msg: &str| format!("line {lineno}: {msg}: `{line}`");
    let (name_and_labels, rest) = match line.find(['{', ' ']) {
        Some(i) if line.as_bytes()[i] == b'{' => {
            let close = line[i..]
                .find('}')
                .map(|j| i + j)
                .ok_or_else(|| err("unterminated label set"))?;
            (&line[..=close], line[close + 1..].trim_start())
        }
        Some(i) => (&line[..i], line[i + 1..].trim_start()),
        None => return Err(err("sample line has no value")),
    };
    let (name, labels) = match name_and_labels.find('{') {
        Some(i) => {
            let name = &name_and_labels[..i];
            let body = &name_and_labels[i + 1..name_and_labels.len() - 1];
            (name, parse_labels(body).map_err(|m| err(&m))?)
        }
        None => (name_and_labels, Vec::new()),
    };
    if !valid_metric_name(name) {
        return Err(err("invalid metric name"));
    }
    // Value, optionally followed by a timestamp.
    let mut parts = rest.split_whitespace();
    let value_str = parts.next().ok_or_else(|| err("missing value"))?;
    let value = value_str
        .parse::<f64>()
        .map_err(|_| err("unparseable value"))?;
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| err("unparseable timestamp"))?;
    }
    if parts.next().is_some() {
        return Err(err("trailing tokens after timestamp"));
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| "label without `=`".to_string())?;
        let key = &rest[..eq];
        if !valid_label_name(key) {
            return Err(format!("invalid label name `{key}`"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err("label value not quoted".to_string());
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    _ => return Err("bad escape in label value".to_string()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| "unterminated label value".to_string())?;
        labels.push((key.to_string(), value));
        rest = &rest[end + 1..];
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped;
        } else if !rest.is_empty() {
            return Err("labels not comma-separated".to_string());
        }
    }
    Ok(labels)
}

/// The family a sample belongs to: histogram suffixes fold into their base
/// name when the base is a declared histogram.
fn family_of<'a>(name: &'a str, types: &HashMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

/// Validate a Prometheus text-format (0.0.4) document. Returns the first
/// violation found: syntax (names, labels, values), a sample appearing
/// before its family's `# TYPE`, non-cumulative histogram buckets, a
/// histogram series missing `+Inf`/`_sum`/`_count`, or a `_count` that
/// disagrees with the `+Inf` bucket.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut types: HashMap<String, String> = HashMap::new();
    // Per histogram series (family + non-le labels): buckets seen, in order.
    let mut series_buckets: HashMap<String, Vec<(f64, f64)>> = HashMap::new();
    let mut series_sum: HashMap<String, f64> = HashMap::new();
    let mut series_count: HashMap<String, f64> = HashMap::new();

    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("").trim();
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: TYPE for invalid name `{name}`"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown metric type `{kind}`"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {lineno}: duplicate TYPE for `{name}`"));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: HELP for invalid name `{name}`"));
                }
            }
            continue;
        }
        let sample = parse_sample(line, lineno)?;
        let family = family_of(&sample.name, &types);
        let family_type = types
            .get(family)
            .ok_or_else(|| {
                format!(
                    "line {lineno}: sample `{}` precedes its # TYPE",
                    sample.name
                )
            })?
            .clone();
        if family_type == "histogram" {
            let series_key = |labels: &[(String, String)]| {
                let mut rest: Vec<String> = labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                rest.sort();
                format!("{family}|{}", rest.join(","))
            };
            if sample.name.ends_with("_bucket") {
                let le = sample
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .ok_or_else(|| format!("line {lineno}: histogram bucket without `le`"))?;
                let le_value =
                    le.1.parse::<f64>()
                        .map_err(|_| format!("line {lineno}: unparseable `le` `{}`", le.1))?;
                series_buckets
                    .entry(series_key(&sample.labels))
                    .or_default()
                    .push((le_value, sample.value));
            } else if sample.name.ends_with("_sum") {
                series_sum.insert(series_key(&sample.labels), sample.value);
            } else if sample.name.ends_with("_count") {
                series_count.insert(series_key(&sample.labels), sample.value);
            } else {
                return Err(format!(
                    "line {lineno}: bare sample `{}` for histogram family `{family}`",
                    sample.name
                ));
            }
        }
    }

    for (key, buckets) in &series_buckets {
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_count = 0.0f64;
        for &(le, count) in buckets {
            if le <= prev_le {
                return Err(format!(
                    "histogram series `{key}`: `le` bounds not increasing"
                ));
            }
            if count < prev_count {
                return Err(format!(
                    "histogram series `{key}`: bucket counts not cumulative"
                ));
            }
            prev_le = le;
            prev_count = count;
        }
        let last = buckets.last().expect("series has at least one bucket");
        if last.0 != f64::INFINITY {
            return Err(format!("histogram series `{key}`: missing `+Inf` bucket"));
        }
        let count = series_count
            .get(key)
            .ok_or_else(|| format!("histogram series `{key}`: missing `_count`"))?;
        if !series_sum.contains_key(key) {
            return Err(format!("histogram series `{key}`: missing `_sum`"));
        }
        if *count != last.1 {
            return Err(format!(
                "histogram series `{key}`: `_count` {count} != `+Inf` bucket {}",
                last.1
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::LatencyHistogram;
    use std::time::Duration;

    #[test]
    fn writer_produces_valid_exposition() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(40));
        h.record(Duration::from_micros(700));
        h.record(Duration::from_millis(400)); // overflow bucket
        let mut w = PromWriter::new();
        w.counter("kbqa_requests_total", "Parsed HTTP requests.", 17);
        w.gauge("kbqa_open_connections", "Open connections.", 3.0);
        w.family(
            "kbqa_stage_latency_seconds",
            "Per-stage latency.",
            "histogram",
        );
        w.histogram_series(
            "kbqa_stage_latency_seconds",
            &[("stage", "parse")],
            &h.snapshot(),
        );
        w.histogram_series(
            "kbqa_stage_latency_seconds",
            &[("stage", "value_lookup")],
            &LatencyHistogram::new().snapshot(),
        );
        w.histogram(
            "kbqa_answer_latency_seconds",
            "Answer latency.",
            &h.snapshot(),
        );
        let text = w.finish();
        validate_exposition(&text).unwrap();
        // Buckets are cumulative: the +Inf bucket equals the count.
        assert!(text.contains("kbqa_stage_latency_seconds_bucket{stage=\"parse\",le=\"+Inf\"} 3"));
        // Bounds render in seconds.
        assert!(text.contains("le=\"0.00005\""));
        assert!(text.contains("kbqa_stage_latency_seconds_count{stage=\"parse\"} 3"));
        assert!(text.contains("kbqa_requests_total 17"));
    }

    #[test]
    fn validator_rejects_samples_before_type() {
        let text = "kbqa_requests_total 1\n# TYPE kbqa_requests_total counter\n";
        assert!(validate_exposition(text).unwrap_err().contains("precedes"));
    }

    #[test]
    fn validator_rejects_non_cumulative_buckets() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"0.1\"} 5
h_bucket{le=\"+Inf\"} 3
h_sum 1
h_count 3
";
        assert!(validate_exposition(text)
            .unwrap_err()
            .contains("not cumulative"));
    }

    #[test]
    fn validator_rejects_missing_inf_bucket_and_count_mismatch() {
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_exposition(no_inf).unwrap_err().contains("+Inf"));
        let mismatch = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 5
h_sum 1
h_count 4
";
        assert!(validate_exposition(mismatch).unwrap_err().contains("!="));
    }

    #[test]
    fn validator_rejects_bad_names_and_labels() {
        assert!(validate_exposition("# TYPE 9bad counter\n9bad 1\n").is_err());
        assert!(validate_exposition("# TYPE ok counter\nok{9bad=\"x\"} 1\n")
            .unwrap_err()
            .contains("label"));
        assert!(validate_exposition("# TYPE ok counter\nok{a=\"x} 1\n").is_err());
        assert!(validate_exposition("# TYPE ok counter\nok notanumber\n")
            .unwrap_err()
            .contains("value"));
    }

    #[test]
    fn validator_accepts_escapes_and_timestamps() {
        let text = "# TYPE ok counter\nok{q=\"say \\\"hi\\\"\\n\\\\\"} 2 1700000000\n";
        validate_exposition(text).unwrap();
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.family("m", "help", "counter");
        w.sample("m", &[("q", "a\"b\\c\nd")], 1.0);
        let text = w.finish();
        assert!(text.contains("m{q=\"a\\\"b\\\\c\\nd\"} 1"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn integral_values_render_without_fraction() {
        assert_eq!(render_value(3.0), "3");
        assert_eq!(render_value(0.25), "0.25");
        assert_eq!(render_value(0.00005), "0.00005");
    }
}
