//! The fixed pipeline-stage taxonomy and its per-stage statistics.
//!
//! Stages mirror the BFQ answering pipeline (paper Eq. 7) plus the serving
//! edges around it: request parse on the way in, serialization on the way
//! out. The set is a closed enum — stage-attributed telemetry lives in
//! fixed-size arrays indexed by discriminant, so recording never allocates
//! and never hashes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::histogram::{HistogramSnapshot, LatencyHistogram};

/// One stage of the answering pipeline, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Tokenization and request decode.
    Parse = 0,
    /// Entity mention detection + grounding to KB entities.
    NerGrounding = 1,
    /// Entity → concept lookup through the taxonomy (isA).
    Conceptualize = 2,
    /// Question-form + concept-slot → template resolution.
    TemplateMatch = 3,
    /// Template → predicate distribution scoring (θ guard).
    PredicateScore = 4,
    /// KB object lookup / path traversal for scored predicates.
    ValueLookup = 5,
    /// Contribution aggregation, top-k selection, answer materialization.
    RankTopK = 6,
    /// Response serialization to the wire format.
    Serialize = 7,
}

impl Stage {
    /// Number of stages (array dimension for stage-indexed storage).
    pub const COUNT: usize = 8;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Parse,
        Stage::NerGrounding,
        Stage::Conceptualize,
        Stage::TemplateMatch,
        Stage::PredicateScore,
        Stage::ValueLookup,
        Stage::RankTopK,
        Stage::Serialize,
    ];

    /// Stable snake_case name, used as the Prometheus `stage` label value
    /// and as the frame name in folded-stack dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::NerGrounding => "ner_grounding",
            Stage::Conceptualize => "conceptualize",
            Stage::TemplateMatch => "template_match",
            Stage::PredicateScore => "predicate_score",
            Stage::ValueLookup => "value_lookup",
            Stage::RankTopK => "rank_topk",
            Stage::Serialize => "serialize",
        }
    }
}

/// Per-stage microseconds for one request — the structured form carried on
/// explained responses and slow-query records. Named fields (not a map) so
/// the vendored serde renders a flat, stable JSON object.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageBreakdown {
    /// µs in [`Stage::Parse`].
    #[serde(default)]
    pub parse_us: u64,
    /// µs in [`Stage::NerGrounding`].
    #[serde(default)]
    pub ner_grounding_us: u64,
    /// µs in [`Stage::Conceptualize`].
    #[serde(default)]
    pub conceptualize_us: u64,
    /// µs in [`Stage::TemplateMatch`].
    #[serde(default)]
    pub template_match_us: u64,
    /// µs in [`Stage::PredicateScore`].
    #[serde(default)]
    pub predicate_score_us: u64,
    /// µs in [`Stage::ValueLookup`].
    #[serde(default)]
    pub value_lookup_us: u64,
    /// µs in [`Stage::RankTopK`].
    #[serde(default)]
    pub rank_topk_us: u64,
    /// µs in [`Stage::Serialize`].
    #[serde(default)]
    pub serialize_us: u64,
}

impl StageBreakdown {
    /// Build from a nanosecond accumulator array (as kept by `StageTrace`),
    /// rounding each stage to whole microseconds.
    pub fn from_ns(accum_ns: &[u64; Stage::COUNT]) -> Self {
        let mut b = StageBreakdown::default();
        for stage in Stage::ALL {
            b.set(stage, accum_ns[stage as usize] / 1_000);
        }
        b
    }

    /// The µs recorded for `stage`.
    pub fn get(&self, stage: Stage) -> u64 {
        match stage {
            Stage::Parse => self.parse_us,
            Stage::NerGrounding => self.ner_grounding_us,
            Stage::Conceptualize => self.conceptualize_us,
            Stage::TemplateMatch => self.template_match_us,
            Stage::PredicateScore => self.predicate_score_us,
            Stage::ValueLookup => self.value_lookup_us,
            Stage::RankTopK => self.rank_topk_us,
            Stage::Serialize => self.serialize_us,
        }
    }

    /// Set the µs recorded for `stage`.
    pub fn set(&mut self, stage: Stage, us: u64) {
        match stage {
            Stage::Parse => self.parse_us = us,
            Stage::NerGrounding => self.ner_grounding_us = us,
            Stage::Conceptualize => self.conceptualize_us = us,
            Stage::TemplateMatch => self.template_match_us = us,
            Stage::PredicateScore => self.predicate_score_us = us,
            Stage::ValueLookup => self.value_lookup_us = us,
            Stage::RankTopK => self.rank_topk_us = us,
            Stage::Serialize => self.serialize_us = us,
        }
    }

    /// Sum across all stages, µs.
    pub fn total_us(&self) -> u64 {
        Stage::ALL.iter().map(|&s| self.get(s)).sum()
    }
}

/// Per-stage latency histograms shared by every traced request. One
/// instance per service/server, recording is wait-free.
#[derive(Debug, Default)]
pub struct StageStats {
    histograms: [LatencyHistogram; Stage::COUNT],
    traced_requests: AtomicU64,
}

impl StageStats {
    /// Fresh, all-zero stage statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `us` microseconds spent in `stage`.
    pub fn record_us(&self, stage: Stage, us: u64) {
        self.histograms[stage as usize].record_us(us);
    }

    /// Record a whole per-request engine breakdown (one observation per
    /// engine stage) and count the request as traced. Engine stages the
    /// request skipped (a refusal short-circuits the pipeline) still record
    /// a 0µs observation so per-stage counts stay comparable.
    /// [`Stage::Serialize`] is deliberately excluded: the engine never
    /// serializes, so the serving layer records it directly via
    /// [`StageStats::record_us`] once the response bytes exist.
    pub fn record_breakdown(&self, breakdown: &StageBreakdown) {
        for stage in Stage::ALL {
            if stage != Stage::Serialize {
                self.record_us(stage, breakdown.get(stage));
            }
        }
        self.traced_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// The histogram for one stage.
    pub fn histogram(&self, stage: Stage) -> &LatencyHistogram {
        &self.histograms[stage as usize]
    }

    /// How many requests have flushed a breakdown here.
    pub fn traced_requests(&self) -> u64 {
        self.traced_requests.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every stage histogram.
    pub fn snapshot(&self) -> StageStatsSnapshot {
        StageStatsSnapshot {
            traced_requests: self.traced_requests(),
            stages: Stage::ALL
                .iter()
                .map(|&stage| StageLatencySnapshot {
                    stage: stage.as_str().to_string(),
                    latency: self.histogram(stage).snapshot(),
                })
                .collect(),
        }
    }
}

/// One stage's histogram in a [`StageStatsSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageLatencySnapshot {
    /// Stage name ([`Stage::as_str`]).
    pub stage: String,
    /// The stage's latency histogram.
    pub latency: HistogramSnapshot,
}

/// A serializable view of [`StageStats`], embedded in the server's
/// `/metrics` JSON snapshot.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StageStatsSnapshot {
    /// Requests that flushed a per-stage breakdown (sampled subset of all
    /// requests when `sample_every > 1`).
    pub traced_requests: u64,
    /// Per-stage histograms, in pipeline order.
    pub stages: Vec<StageLatencySnapshot>,
}

/// The tracing sink a service installs to activate stage timing.
///
/// Tracing is *pull*-gated: a `ScratchSpace`'s `StageTrace` only arms when
/// the owning service holds an `Observability` and [`should_trace`]
/// (sampled 1-in-N, wait-free) or the request asked for `explain` timings.
/// Engines driven without a sink — kernel benchmarks, equivalence tests,
/// the CI perf gate — never arm a trace and pay nothing.
///
/// [`should_trace`]: Observability::should_trace
#[derive(Debug)]
pub struct Observability {
    stats: Arc<StageStats>,
    sample_every: u64,
    counter: AtomicU64,
}

impl Observability {
    /// A sink recording into `stats`, arming every `sample_every`-th
    /// request (clamped to ≥ 1).
    pub fn new(stats: Arc<StageStats>, sample_every: u64) -> Self {
        Self {
            stats,
            sample_every: sample_every.max(1),
            counter: AtomicU64::new(0),
        }
    }

    /// A sink that traces every request (`sample_every = 1`).
    pub fn always(stats: Arc<StageStats>) -> Self {
        Self::new(stats, 1)
    }

    /// The shared per-stage histograms this sink records into.
    pub fn stats(&self) -> &Arc<StageStats> {
        &self.stats
    }

    /// The configured sampling period.
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Whether the next request should arm its trace. Wait-free: one
    /// relaxed `fetch_add` when sampling, no atomics at all when tracing
    /// every request.
    pub fn should_trace(&self) -> bool {
        self.sample_every == 1
            || self
                .counter
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(self.sample_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_unique_and_ordered() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), Stage::COUNT);
        assert_eq!(names[0], "parse");
        assert_eq!(names[Stage::COUNT - 1], "serialize");
        for (i, &stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage as usize, i);
        }
    }

    #[test]
    fn breakdown_get_set_roundtrip() {
        let mut b = StageBreakdown::default();
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            b.set(stage, (i as u64 + 1) * 10);
        }
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(b.get(stage), (i as u64 + 1) * 10);
        }
        assert_eq!(b.total_us(), (1..=8).map(|i| i * 10).sum::<u64>());
        let json = serde_json::to_string(&b).unwrap();
        let restored: StageBreakdown = serde_json::from_str(&json).unwrap();
        assert_eq!(b, restored);
    }

    #[test]
    fn breakdown_from_ns_rounds_down_to_us() {
        let mut accum = [0u64; Stage::COUNT];
        accum[Stage::Parse as usize] = 1_999; // 1.999µs → 1
        accum[Stage::ValueLookup as usize] = 42_000;
        let b = StageBreakdown::from_ns(&accum);
        assert_eq!(b.parse_us, 1);
        assert_eq!(b.value_lookup_us, 42);
        assert_eq!(b.ner_grounding_us, 0);
    }

    #[test]
    fn stage_stats_records_and_snapshots() {
        let stats = StageStats::new();
        let mut b = StageBreakdown::default();
        b.set(Stage::ValueLookup, 120);
        stats.record_breakdown(&b);
        stats.record_us(Stage::Serialize, 45);
        assert_eq!(stats.traced_requests(), 1);
        let snap = stats.snapshot();
        assert_eq!(snap.stages.len(), Stage::COUNT);
        let lookup = snap
            .stages
            .iter()
            .find(|s| s.stage == "value_lookup")
            .unwrap();
        assert_eq!(lookup.latency.count, 1);
        assert_eq!(lookup.latency.total_us, 120);
        let ser = snap.stages.iter().find(|s| s.stage == "serialize").unwrap();
        // Only the direct record: the breakdown never touches `serialize`.
        assert_eq!(ser.latency.count, 1);
        assert_eq!(ser.latency.total_us, 45);
        let json = serde_json::to_string(&snap).unwrap();
        let restored: StageStatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, restored);
    }

    #[test]
    fn sampling_arms_one_in_n() {
        let obs = Observability::new(Arc::new(StageStats::new()), 4);
        let armed = (0..16).filter(|_| obs.should_trace()).count();
        assert_eq!(armed, 4);
        let every = Observability::always(Arc::new(StageStats::new()));
        assert!((0..10).all(|_| every.should_trace()));
        // sample_every = 0 clamps to 1 rather than dividing by zero.
        let clamped = Observability::new(Arc::new(StageStats::new()), 0);
        assert!(clamped.should_trace());
    }
}
