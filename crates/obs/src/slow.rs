//! Capture of the N slowest requests, served at `GET /debug/slow`.
//!
//! The log is a fixed array of slots, each pairing an atomic latency tag
//! with a mutex-held record. The **hot path** (every request) only touches
//! the atomic floor gate: one relaxed load and a compare. Requests slower
//! than the floor take the slow path — scan the slot tags for the current
//! minimum, lock that one slot, re-check, replace. Record construction is
//! lazy (a closure), so fast requests never even build the `SlowQuery`.
//!
//! The floor is maintained best-effort: concurrent replacements can leave
//! it momentarily stale, which only means a borderline request takes the
//! slow path and discovers it doesn't qualify. The invariant that matters —
//! the log converges on the N slowest requests seen — holds because every
//! replacement happens under a slot lock with a re-check.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::stage::StageBreakdown;

/// One captured request, everything an operator needs to see why it was
/// slow without replaying it.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowQuery {
    /// Server-assigned request ID (monotonic per process).
    pub request_id: u64,
    /// The question text as received.
    pub question: String,
    /// End-to-end latency, µs.
    pub total_us: u64,
    /// Per-stage attribution. All-zero when the request wasn't armed for
    /// tracing (it still qualifies for the log by total latency).
    #[serde(default)]
    pub stages: StageBreakdown,
    /// Refusal cause display string, `None` when answered.
    #[serde(default)]
    pub refusal: Option<String>,
    /// Whether the answer came from the cache.
    #[serde(default)]
    pub cache_hit: bool,
    /// Model epoch that served the request.
    #[serde(default)]
    pub model_epoch: u64,
    /// Store backend kind (`"memory"` / `"mmap"`).
    #[serde(default)]
    pub store_backend: String,
    /// Whether a stage trace was armed for this request.
    #[serde(default)]
    pub traced: bool,
}

/// Empty-slot sentinel for the per-slot latency tag.
const EMPTY: u64 = 0;

struct Slot {
    /// The resident record's `total_us`, or [`EMPTY`]. Written under the
    /// slot lock, read lock-free by the replacement scan.
    total_us: AtomicU64,
    data: Mutex<Option<SlowQuery>>,
}

/// A fixed-capacity, lowest-out log of the slowest requests.
pub struct SlowQueryLog {
    slots: Vec<Slot>,
    /// Smallest resident `total_us` (or [`EMPTY`] while slots remain
    /// free): the hot-path admission gate.
    floor: AtomicU64,
}

impl SlowQueryLog {
    /// A log retaining the `capacity` slowest requests (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity)
                .map(|_| Slot {
                    total_us: AtomicU64::new(EMPTY),
                    data: Mutex::new(None),
                })
                .collect(),
            floor: AtomicU64::new(EMPTY),
        }
    }

    /// Slots in the log.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Offer a request. Returns whether it was admitted. `make` is only
    /// called when the request beats the floor, so the per-request cost
    /// for fast traffic is one atomic load and a compare.
    pub fn offer(&self, total_us: u64, make: impl FnOnce() -> SlowQuery) -> bool {
        // `total_us == 0` ties with the empty sentinel; such a request can
        // never beat the floor, which is fine — a 0µs request is not slow.
        if total_us <= self.floor.load(Ordering::Relaxed) {
            return false;
        }
        // Slow path: find the currently-cheapest slot.
        let victim = self
            .slots
            .iter()
            .min_by_key(|slot| slot.total_us.load(Ordering::Relaxed))
            .expect("log has at least one slot");
        let mut data = victim.data.lock().expect("slow-log slot poisoned");
        // Re-check under the lock: a racing offer may have upgraded this
        // slot past us.
        if total_us <= victim.total_us.load(Ordering::Relaxed) {
            return false;
        }
        let mut record = make();
        record.total_us = total_us;
        *data = Some(record);
        victim.total_us.store(total_us, Ordering::Relaxed);
        drop(data);
        // Recompute the floor from the slot tags (best-effort).
        let new_floor = self
            .slots
            .iter()
            .map(|slot| slot.total_us.load(Ordering::Relaxed))
            .min()
            .unwrap_or(EMPTY);
        self.floor.store(new_floor, Ordering::Relaxed);
        true
    }

    /// Every resident record, slowest first.
    pub fn snapshot(&self) -> Vec<SlowQuery> {
        let mut out: Vec<SlowQuery> = self
            .slots
            .iter()
            .filter_map(|slot| slot.data.lock().expect("slow-log slot poisoned").clone())
            .collect();
        out.sort_by_key(|record| std::cmp::Reverse(record.total_us));
        out
    }
}

impl std::fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowQueryLog")
            .field("capacity", &self.slots.len())
            .field("floor_us", &self.floor.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: u64) -> SlowQuery {
        SlowQuery {
            request_id: id,
            question: format!("q{id}"),
            ..SlowQuery::default()
        }
    }

    #[test]
    fn keeps_the_n_slowest() {
        let log = SlowQueryLog::new(3);
        for (id, us) in [(1, 100), (2, 50), (3, 300), (4, 10), (5, 200), (6, 250)] {
            log.offer(us, || q(id));
        }
        let snap = log.snapshot();
        let ids: Vec<u64> = snap.iter().map(|s| s.request_id).collect();
        assert_eq!(ids, vec![3, 6, 5], "slowest-first: 300, 250, 200");
        assert_eq!(snap[0].total_us, 300);
    }

    #[test]
    fn floor_gate_skips_construction_for_fast_requests() {
        let log = SlowQueryLog::new(2);
        assert!(log.offer(100, || q(1)));
        assert!(log.offer(200, || q(2)));
        // Now the floor is 100; a 40µs request must not even build a record.
        let admitted = log.offer(40, || panic!("record built for a fast request"));
        assert!(!admitted);
        // A tying request does not displace the resident one.
        assert!(!log.offer(100, || q(9)));
    }

    #[test]
    fn zero_latency_requests_are_never_admitted() {
        let log = SlowQueryLog::new(1);
        assert!(!log.offer(0, || q(1)));
        assert!(log.snapshot().is_empty());
    }

    #[test]
    fn concurrent_offers_converge_on_the_max() {
        use std::sync::Arc;
        let log = Arc::new(SlowQueryLog::new(4));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    for i in 1..=500u64 {
                        log.offer(t * 500 + i, || q(t));
                    }
                });
            }
        });
        let snap = log.snapshot();
        assert_eq!(snap.len(), 4);
        // The global maximum (thread 7, i=500 → 4000) must survive.
        assert_eq!(snap[0].total_us, 4000);
        assert!(snap.iter().all(|s| s.total_us > 3000));
    }

    #[test]
    fn record_roundtrips_through_json() {
        let mut record = q(7);
        record.total_us = 1234;
        record.stages.value_lookup_us = 900;
        record.refusal = Some("no entity grounded".to_string());
        record.store_backend = "mmap".to_string();
        record.traced = true;
        let json = serde_json::to_string(&record).unwrap();
        let restored: SlowQuery = serde_json::from_str(&json).unwrap();
        assert_eq!(record, restored);
    }
}
