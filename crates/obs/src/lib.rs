#![warn(missing_docs)]

//! Pipeline-depth observability for the KBQA stack.
//!
//! The paper's claim is *online* BFQ answering, and operating an online
//! system means attributing every microsecond and every refusal to a
//! pipeline stage. This crate is the shared telemetry core the engine,
//! server, and bench binaries all report through:
//!
//! - [`Stage`] — the fixed eight-stage pipeline taxonomy (parse →
//!   NER/grounding → conceptualize → template-match → predicate-score →
//!   value-lookup → rank/top-k → serialize), mirroring Eq. 7's factor chain
//!   plus the serving edges around it.
//! - [`StageTrace`] — a wait-free per-request lap timer that lives inside
//!   the engine's `ScratchSpace`. One `Instant::now()` per stage boundary,
//!   a fixed `[u64; 8]` accumulator, **zero heap allocations** in steady
//!   state. An inactive trace costs a single predicted branch per lap, and
//!   the whole mechanism compiles to no-ops when the `stage-timers`
//!   feature is disabled.
//! - [`LatencyHistogram`] / [`StageStats`] — fixed-bucket atomic
//!   histograms (moved here from `kbqa-server` so every layer can record
//!   into them), one per stage, with wait-free recording.
//! - [`Observability`] — the sink handle a service installs to turn
//!   tracing on, with 1-in-N atomic sampling so kernel-granularity
//!   tracing stays under the overhead budget.
//! - [`SlowQueryLog`] — a fixed-slot, near-lock-free capture of the N
//!   slowest requests (question, stage breakdown, cache/backend/epoch,
//!   refusal cause), exposed by the server at token-gated `GET /debug/slow`.
//! - [`prom`] — Prometheus text exposition (counters, gauges, histograms
//!   with cumulative `le` buckets) plus a line-format validator the test
//!   suite uses to keep `/metrics?format=prometheus` honest.

pub mod histogram;
pub mod prom;
pub mod shard;
pub mod slow;
pub mod stage;
pub mod trace;

pub use histogram::{BucketCount, HistogramSnapshot, LatencyHistogram, BUCKET_BOUNDS_US};
pub use prom::{validate_exposition, PromWriter};
pub use shard::{ShardLane, ShardLaneSnapshot, ShardObs, ShardObsSnapshot, FANOUT_BUCKETS};
pub use slow::{SlowQuery, SlowQueryLog};
pub use stage::{
    Observability, Stage, StageBreakdown, StageLatencySnapshot, StageStats, StageStatsSnapshot,
};
pub use trace::StageTrace;
