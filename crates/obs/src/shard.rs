//! Per-shard serving telemetry: one lane of counters + stage histograms per
//! shard, and the scatter-gather fan-out distribution.
//!
//! The shard router (in `kbqa-core`) owns a [`ShardObs`] sized to its plan.
//! Every answered question attributes its whole-pipeline stage breakdown to
//! the **primary shard** — the shard owning the first grounded entity the
//! kernel routed to — and bumps one [fan-out](ShardObs::record_fanout)
//! bucket with how many distinct shards the question's lookups touched.
//! Recording is wait-free (fixed arrays of atomics), so the lanes can sit
//! on the hot path next to the engine's sampled stage tracer.
//!
//! Queue-depth gauges are driven by the batch scheduler: each per-shard
//! worker [`enqueue`](ShardLane::enqueue)s its backlog so `/metrics` can
//! show where a skewed cut is piling work.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::prom::PromWriter;
use crate::stage::{StageBreakdown, StageStats, StageStatsSnapshot};

/// Fan-out histogram buckets: exactly 0..=7 shards touched, last bucket is
/// "8 or more".
pub const FANOUT_BUCKETS: usize = 9;

/// Telemetry lane of one shard: query/failure counters, batch queue-depth
/// gauge with high-water mark, and the shard's own stage histograms.
#[derive(Debug, Default)]
pub struct ShardLane {
    queries: AtomicU64,
    failures: AtomicU64,
    queue_depth: AtomicU64,
    queue_peak: AtomicU64,
    stages: StageStats,
}

impl ShardLane {
    /// Count one question attributed to this shard.
    pub fn record_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one isolated shard failure (panic caught by the router).
    pub fn record_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Attribute a traced request's stage breakdown to this shard.
    pub fn record_breakdown(&self, breakdown: &StageBreakdown) {
        self.stages.record_breakdown(breakdown);
    }

    /// Raise the queue-depth gauge by `n` queued questions.
    pub fn enqueue(&self, n: u64) {
        let depth = self.queue_depth.fetch_add(n, Ordering::Relaxed) + n;
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Lower the queue-depth gauge by `n` completed questions.
    pub fn dequeue(&self, n: u64) {
        self.queue_depth.fetch_sub(n, Ordering::Relaxed);
    }

    /// Questions attributed to this shard.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Isolated failures on this shard.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Current batch-queue depth.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// This shard's stage histograms.
    pub fn stages(&self) -> &StageStats {
        &self.stages
    }

    /// Point-in-time copy for `/metrics`.
    pub fn snapshot(&self, shard: usize) -> ShardLaneSnapshot {
        ShardLaneSnapshot {
            shard,
            queries: self.queries(),
            failures: self.failures(),
            queue_depth: self.queue_depth(),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            stages: self.stages.snapshot(),
        }
    }
}

/// Telemetry for a whole shard router: one [`ShardLane`] per shard plus the
/// fan-out distribution.
#[derive(Debug)]
pub struct ShardObs {
    lanes: Vec<ShardLane>,
    fanout: [AtomicU64; FANOUT_BUCKETS],
}

impl ShardObs {
    /// Telemetry for `shards` lanes.
    pub fn new(shards: usize) -> Self {
        Self {
            lanes: (0..shards).map(|_| ShardLane::default()).collect(),
            fanout: Default::default(),
        }
    }

    /// Number of lanes.
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// The lane of shard `i`.
    pub fn lane(&self, i: usize) -> &ShardLane {
        &self.lanes[i]
    }

    /// All lanes, indexed by shard id.
    pub fn lanes(&self) -> &[ShardLane] {
        &self.lanes
    }

    /// Record that a question's lookups touched `shards_touched` distinct
    /// shards (the `shard_fanout` stat; bucketed, last bucket = 8+).
    pub fn record_fanout(&self, shards_touched: usize) {
        let b = shards_touched.min(FANOUT_BUCKETS - 1);
        self.fanout[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Total isolated failures across all lanes.
    pub fn total_failures(&self) -> u64 {
        self.lanes.iter().map(ShardLane::failures).sum()
    }

    /// Point-in-time copy for `/metrics`.
    pub fn snapshot(&self) -> ShardObsSnapshot {
        ShardObsSnapshot {
            lanes: self
                .lanes
                .iter()
                .enumerate()
                .map(|(i, lane)| lane.snapshot(i))
                .collect(),
            fanout: self
                .fanout
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Render the per-shard metric families into a Prometheus exposition
    /// (see [`ShardObsSnapshot::write_prometheus`]).
    pub fn write_prometheus(&self, w: &mut PromWriter) {
        self.snapshot().write_prometheus(w);
    }
}

impl ShardObsSnapshot {
    /// Render the per-shard metric families into a Prometheus exposition.
    /// Stage histograms stay JSON-only (8 histograms × N shards would bloat
    /// the exposition); counters, gauges, and the fan-out distribution are
    /// exported.
    pub fn write_prometheus(&self, w: &mut PromWriter) {
        let snap = self;
        w.family(
            "kbqa_shard_queries_total",
            "Questions attributed to each shard (by primary grounded entity).",
            "counter",
        );
        for lane in &snap.lanes {
            let shard = lane.shard.to_string();
            w.sample(
                "kbqa_shard_queries_total",
                &[("shard", shard.as_str())],
                lane.queries as f64,
            );
        }
        w.family(
            "kbqa_shard_failures_total",
            "Shard panics isolated by the router, per shard.",
            "counter",
        );
        for lane in &snap.lanes {
            let shard = lane.shard.to_string();
            w.sample(
                "kbqa_shard_failures_total",
                &[("shard", shard.as_str())],
                lane.failures as f64,
            );
        }
        w.family(
            "kbqa_shard_queue_depth",
            "Questions currently queued on each shard's batch worker.",
            "gauge",
        );
        for lane in &snap.lanes {
            let shard = lane.shard.to_string();
            w.sample(
                "kbqa_shard_queue_depth",
                &[("shard", shard.as_str())],
                lane.queue_depth as f64,
            );
        }
        w.family(
            "kbqa_shard_queue_peak",
            "High-water mark of each shard's batch queue depth.",
            "gauge",
        );
        for lane in &snap.lanes {
            let shard = lane.shard.to_string();
            w.sample(
                "kbqa_shard_queue_peak",
                &[("shard", shard.as_str())],
                lane.queue_peak as f64,
            );
        }
        w.family(
            "kbqa_shard_fanout_total",
            "Questions by number of distinct shards their lookups touched (label `shards`, last bucket 8+).",
            "counter",
        );
        for (b, &count) in snap.fanout.iter().enumerate() {
            let label = if b == FANOUT_BUCKETS - 1 {
                "8+".to_string()
            } else {
                b.to_string()
            };
            w.sample(
                "kbqa_shard_fanout_total",
                &[("shards", label.as_str())],
                count as f64,
            );
        }
    }
}

/// Serializable view of one [`ShardLane`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardLaneSnapshot {
    /// Shard id.
    #[serde(default)]
    pub shard: usize,
    /// Questions attributed to this shard.
    #[serde(default)]
    pub queries: u64,
    /// Isolated failures on this shard.
    #[serde(default)]
    pub failures: u64,
    /// Current batch-queue depth.
    #[serde(default)]
    pub queue_depth: u64,
    /// Queue-depth high-water mark.
    #[serde(default)]
    pub queue_peak: u64,
    /// This shard's stage histograms.
    #[serde(default)]
    pub stages: StageStatsSnapshot,
}

/// Serializable view of a [`ShardObs`], embedded in the server's `/metrics`
/// JSON snapshot.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardObsSnapshot {
    /// Per-shard lanes, indexed by shard id.
    #[serde(default)]
    pub lanes: Vec<ShardLaneSnapshot>,
    /// Fan-out distribution: `fanout[k]` questions touched exactly `k`
    /// shards (last bucket 8+).
    #[serde(default)]
    pub fanout: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_exposition;

    #[test]
    fn lanes_count_and_snapshot() {
        let obs = ShardObs::new(3);
        obs.lane(0).record_query();
        obs.lane(0).record_query();
        obs.lane(2).record_failure();
        obs.lane(1).enqueue(5);
        obs.lane(1).dequeue(2);
        obs.record_fanout(1);
        obs.record_fanout(12);
        let snap = obs.snapshot();
        assert_eq!(snap.lanes.len(), 3);
        assert_eq!(snap.lanes[0].queries, 2);
        assert_eq!(snap.lanes[2].failures, 1);
        assert_eq!(snap.lanes[1].queue_depth, 3);
        assert_eq!(snap.lanes[1].queue_peak, 5);
        assert_eq!(snap.fanout[1], 1);
        assert_eq!(snap.fanout[FANOUT_BUCKETS - 1], 1);
        assert_eq!(obs.total_failures(), 1);
    }

    #[test]
    fn prometheus_export_validates() {
        let obs = ShardObs::new(2);
        obs.lane(0).record_query();
        obs.record_fanout(1);
        let mut w = PromWriter::new();
        obs.write_prometheus(&mut w);
        let text = w.finish();
        validate_exposition(&text).expect("shard exposition must validate");
        assert!(text.contains("kbqa_shard_queries_total{shard=\"0\"} 1"));
        assert!(text.contains("kbqa_shard_fanout_total{shards=\"8+\"} 0"));
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let obs = ShardObs::new(2);
        obs.lane(1).record_query();
        let snap = obs.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let restored: ShardObsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(restored.lanes.len(), 2);
        assert_eq!(restored.lanes[1].queries, 1);
    }
}
