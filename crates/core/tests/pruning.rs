//! Model pruning: the long tail of rare templates can be dropped without
//! invalidating ids, and high-support answering survives.

use kbqa_core::engine::QaEngine;
use kbqa_core::learner::{Learner, LearnerConfig};
use kbqa_corpus::{CorpusConfig, QaCorpus, World, WorldConfig};
use kbqa_nlp::GazetteerNer;

#[test]
fn pruning_drops_rare_templates_but_keeps_answers() {
    let world = World::generate(WorldConfig::tiny(42));
    let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 800));
    let ner = GazetteerNer::from_store(&world.store);
    let learner = Learner::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &world.predicate_classes,
    );
    let pairs: Vec<(&str, &str)> = corpus
        .pairs
        .iter()
        .map(|p| (p.question.as_str(), p.answer.as_str()))
        .collect();
    let (model, _) = learner.learn(&pairs, &LearnerConfig::default());

    let pruned = model.pruned(3);
    assert!(
        pruned.stats.distinct_templates < model.stats.distinct_templates,
        "pruning removed nothing: {} vs {}",
        pruned.stats.distinct_templates,
        model.stats.distinct_templates
    );
    // Ids stable: catalogs untouched.
    assert_eq!(pruned.templates.len(), model.templates.len());
    assert_eq!(pruned.predicates.len(), model.predicates.len());

    // A high-support question still answers identically.
    let engine_full = QaEngine::new(&world.store, &world.conceptualizer, &model);
    let engine_pruned = QaEngine::new(&world.store, &world.conceptualizer, &pruned);
    let pop = world.intent_by_name("city_population").unwrap();
    let city = world
        .subjects_of(pop)
        .iter()
        .copied()
        .find(|&c| !world.gold_values(pop, c).is_empty())
        .unwrap();
    let q = format!("what is the population of {}", world.store.surface(city));
    let a_full = engine_full.answer_bfq(&q);
    let a_pruned = engine_pruned.answer_bfq(&q);
    assert!(!a_pruned.is_empty(), "pruned model lost a common template");
    assert_eq!(
        a_full.first().map(|a| &a.value),
        a_pruned.first().map(|a| &a.value)
    );
}

#[test]
fn pruning_everything_yields_refusals() {
    let world = World::generate(WorldConfig::tiny(42));
    let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 300));
    let ner = GazetteerNer::from_store(&world.store);
    let learner = Learner::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &world.predicate_classes,
    );
    let pairs: Vec<(&str, &str)> = corpus
        .pairs
        .iter()
        .map(|p| (p.question.as_str(), p.answer.as_str()))
        .collect();
    let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
    let emptied = model.pruned(u32::MAX);
    assert_eq!(emptied.stats.distinct_templates, 0);
    let engine = QaEngine::new(&world.store, &world.conceptualizer, &emptied);
    let pop = world.intent_by_name("city_population").unwrap();
    let city = world.subjects_of(pop)[0];
    let q = format!("what is the population of {}", world.store.surface(city));
    assert!(engine.answer_bfq(&q).is_empty());
}
