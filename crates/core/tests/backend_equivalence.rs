//! Engine-level backend equivalence: a full QA service answering through a
//! mapped snapshot must produce byte-identical responses to the same
//! service over the in-memory store. This is the end-to-end guarantee the
//! warm-start and hot-swap paths rely on — "map the file, flip the epoch"
//! is only safe if nothing observable changes.

use std::sync::Arc;

use kbqa_core::learner::{Learner, LearnerConfig};
use kbqa_core::service::KbqaService;
use kbqa_corpus::{CorpusConfig, QaCorpus, World, WorldConfig};
use kbqa_nlp::GazetteerNer;
use kbqa_rdf::{BackendKind, Snapshot, TripleStore};

#[test]
fn engine_answers_identically_on_both_backends() {
    let world = World::generate(WorldConfig::tiny(46));
    let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 400));
    let ner = Arc::new(GazetteerNer::from_store(&world.store));
    let learner = Learner::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &world.predicate_classes,
    );
    let pairs: Vec<(&str, &str)> = corpus
        .pairs
        .iter()
        .map(|p| (p.question.as_str(), p.answer.as_str()))
        .collect();
    let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
    let model = Arc::new(model);

    // Snapshot the world's store and map it back.
    let path = std::env::temp_dir().join(format!("kbqa-engine-eqv-{}.snap", std::process::id()));
    world.store.write_snapshot(&path).unwrap();
    let mapped = Arc::new(TripleStore::from_snapshot(Snapshot::open(&path).unwrap()));
    std::fs::remove_file(&path).ok();
    assert_eq!(mapped.backend_kind(), BackendKind::Mapped);

    // Two services: only the store backend differs. The NER is derived
    // from each store independently, so gazetteer construction is also
    // exercised against the mapped dictionary.
    let in_memory = KbqaService::builder(
        Arc::clone(&world.store),
        Arc::clone(&world.conceptualizer),
        Arc::clone(&model),
    )
    .build();
    let via_map = KbqaService::builder(
        Arc::clone(&mapped),
        Arc::clone(&world.conceptualizer),
        Arc::clone(&model),
    )
    .build();

    let mut checked = 0usize;
    for pair in corpus.pairs.iter().take(120) {
        let a = serde_json::to_string(&in_memory.answer_text(&pair.question)).unwrap();
        let b = serde_json::to_string(&via_map.answer_text(&pair.question)).unwrap();
        assert_eq!(a, b, "divergent answer for {:?}", pair.question);
        checked += 1;
    }
    assert!(checked >= 50, "suite too small to be meaningful: {checked}");

    // Refusals and misses must match too.
    for q in [
        "why is the sky blue",
        "what is the population of nowhere",
        "",
    ] {
        let a = serde_json::to_string(&in_memory.answer_text(q)).unwrap();
        let b = serde_json::to_string(&via_map.answer_text(q)).unwrap();
        assert_eq!(a, b, "divergent refusal for {q:?}");
    }
}
