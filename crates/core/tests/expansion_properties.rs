//! Property tests for predicate expansion: everything the BFS emits must be
//! independently verifiable by path traversal, and the accounting must be
//! internally consistent.

use proptest::prelude::*;

use kbqa_common::hash::FxHashSet;
use kbqa_core::expansion::{expand, valid_k, ExpansionConfig};
use kbqa_rdf::path::path_connects;
use kbqa_rdf::{GraphBuilder, NodeId, TripleStore};

fn arbitrary_store(links: &[(u8, u8, u8)], names: &[(u8, String)]) -> TripleStore {
    let mut b = GraphBuilder::new();
    let nodes: Vec<NodeId> = (0..10).map(|i| b.resource(&format!("n{i}"))).collect();
    let preds = ["p0", "p1", "p2", "p3"];
    for &(s, p, o) in links {
        let pid = b.predicate(preds[(p % 4) as usize]);
        b.triple(nodes[(s % 10) as usize], pid, nodes[(o % 10) as usize]);
    }
    for (s, name) in names {
        b.name(nodes[(*s % 10) as usize], name);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every emitted (s, p⁺, o) is connected in the graph per Definition 1.
    #[test]
    fn emitted_records_are_path_connected(
        links in proptest::collection::vec((0u8..10, 0u8..4, 0u8..10), 1..50),
        names in proptest::collection::vec((0u8..10, "[a-z]{3,8}"), 0..5),
        require_name in any::<bool>(),
    ) {
        let store = arbitrary_store(&links, &names);
        let sources: FxHashSet<NodeId> = store
            .dict()
            .nodes()
            .filter(|&n| store.dict().node_term(n).is_resource())
            .collect();
        let config = ExpansionConfig {
            max_len: 3,
            require_name_terminal: require_name,
            max_emitted: 0,
        };
        let result = expand(&store, &sources, &config);
        for (&s, entries) in &result.by_subject {
            for &(pred, o) in entries {
                let path = result.catalog.resolve(pred);
                prop_assert!(
                    path_connects(&store, s, path, o),
                    "emitted but not connected: {} →{:?}→ {}",
                    store.dict().render(s),
                    path.render(&store),
                    store.dict().render(o)
                );
                prop_assert!(path.len() <= 3);
                // Self-loops are never emitted.
                prop_assert_ne!(s, o);
            }
        }
    }

    /// The three count views agree: Σ per-length == Σ by_subject ==
    /// Σ pair_predicates == Σ value_counts.
    #[test]
    fn accounting_is_consistent(
        links in proptest::collection::vec((0u8..10, 0u8..4, 0u8..10), 1..50),
        names in proptest::collection::vec((0u8..10, "[a-z]{3,8}"), 0..5),
    ) {
        let store = arbitrary_store(&links, &names);
        let sources: FxHashSet<NodeId> = store
            .dict()
            .nodes()
            .filter(|&n| store.dict().node_term(n).is_resource())
            .collect();
        let result = expand(&store, &sources, &ExpansionConfig::default());
        let total = result.emitted();
        let by_subject: usize = result.by_subject.values().map(Vec::len).sum();
        let by_pair: usize = result.pair_predicates.values().map(Vec::len).sum();
        let by_value_count: usize = result.value_counts.values().map(|&c| c as usize).sum();
        prop_assert_eq!(total, by_subject);
        prop_assert_eq!(total, by_pair);
        prop_assert_eq!(total, by_value_count);
    }

    /// valid(k) never counts more than it emits, and larger k never shrinks
    /// the emission at smaller lengths.
    #[test]
    fn valid_k_is_bounded_by_emissions(
        links in proptest::collection::vec((0u8..10, 0u8..4, 0u8..10), 1..50),
        names in proptest::collection::vec((0u8..10, "[a-z]{3,8}"), 1..5),
        gold in proptest::collection::vec((0u8..10, 0u8..10), 0..10),
    ) {
        let store = arbitrary_store(&links, &names);
        let infobox: FxHashSet<(NodeId, NodeId)> = gold
            .iter()
            .map(|&(a, b)| (NodeId::new(u32::from(a % 10)), NodeId::new(u32::from(b % 10))))
            .collect();
        let rows = valid_k(&store, &infobox, 10, &ExpansionConfig::default());
        for row in &rows {
            prop_assert!(row.valid <= row.emitted, "{row:?}");
        }
    }

    /// Shrinking the source set never grows the result.
    #[test]
    fn monotone_in_sources(
        links in proptest::collection::vec((0u8..10, 0u8..4, 0u8..10), 1..40),
    ) {
        let store = arbitrary_store(&links, &[]);
        let all: Vec<NodeId> = store
            .dict()
            .nodes()
            .filter(|&n| store.dict().node_term(n).is_resource())
            .collect();
        let full: FxHashSet<NodeId> = all.iter().copied().collect();
        let half: FxHashSet<NodeId> = all.iter().copied().take(all.len() / 2).collect();
        let config = ExpansionConfig::default();
        let full_result = expand(&store, &full, &config);
        let half_result = expand(&store, &half, &config);
        prop_assert!(half_result.emitted() <= full_result.emitted());
        for (&s, entries) in &half_result.by_subject {
            let full_entries = &full_result.by_subject[&s];
            prop_assert!(entries.len() <= full_entries.len());
        }
    }
}
