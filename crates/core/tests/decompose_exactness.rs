//! Theorem 2 / Algorithm 2 exactness: the DP's optimum must equal a
//! brute-force maximization of Eq (28) over all decompositions.

use kbqa_core::decompose::{decompose, PatternIndex};
use kbqa_core::engine::QaEngine;
use kbqa_core::learner::{Learner, LearnerConfig};
use kbqa_corpus::{CorpusConfig, QaCorpus, World, WorldConfig};
use kbqa_nlp::{tokenize, GazetteerNer};

/// Brute-force Eq (28): P*(q) = max(δ(q), max over proper substrings s of
/// P(r(q, s)) · P*(s)), evaluated recursively without memoization.
fn brute_force(engine: &QaEngine<'_>, index: &PatternIndex, words: &[&str]) -> f64 {
    if words.is_empty() {
        return 0.0;
    }
    let text = tokenize(&words.join(" "));
    let mut best = if engine.is_answerable(&text) {
        1.0
    } else {
        0.0
    };
    let n = words.len();
    for c in 0..n {
        for d in (c + 1)..=n {
            if c == 0 && d == n {
                continue;
            }
            let inner = brute_force(engine, index, &words[c..d]);
            if inner <= 0.0 {
                continue;
            }
            let mut pattern: Vec<&str> = Vec::new();
            pattern.extend_from_slice(&words[..c]);
            pattern.push("$e");
            pattern.extend_from_slice(&words[d..]);
            let p = index.probability(&pattern) * inner;
            if p > best {
                best = p;
            }
        }
    }
    best
}

#[test]
fn dp_matches_brute_force_on_short_questions() {
    let world = World::generate(WorldConfig::tiny(42));
    let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 700));
    let ner = GazetteerNer::from_store(&world.store);
    let learner = Learner::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &world.predicate_classes,
    );
    let pairs: Vec<(&str, &str)> = corpus
        .pairs
        .iter()
        .map(|p| (p.question.as_str(), p.answer.as_str()))
        .collect();
    let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
    let index = PatternIndex::build(corpus.pairs.iter().map(|p| p.question.as_str()), &ner);
    let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);

    // A mix of primitive, complex and unanswerable short questions drawn
    // from the world itself (brute force is exponential — keep them short).
    let mut questions: Vec<String> = Vec::new();
    let cap = world.intent_by_name("country_capital").unwrap();
    if let Some(&country) = world
        .subjects_of(cap)
        .iter()
        .find(|&&c| !world.gold_values(cap, c).is_empty())
    {
        let name = world.store.surface(country);
        questions.push(format!("capital of {name}"));
        questions.push(format!("how large is the capital of {name}"));
    }
    let pop = world.intent_by_name("city_population").unwrap();
    if let Some(&city) = world
        .subjects_of(pop)
        .iter()
        .find(|&&c| !world.gold_values(pop, c).is_empty())
    {
        let name = world.store.surface(city);
        questions.push(format!("population of {name}"));
    }
    questions.push("why is the sky blue".to_owned());

    for q in &questions {
        let tokens = tokenize(q);
        let words = tokens.words();
        if words.len() > 9 {
            continue; // brute force blows up beyond this
        }
        let expected = brute_force(&engine, &index, &words);
        match decompose(&engine, &index, q) {
            Some(d) => {
                assert!(
                    (d.probability - expected).abs() < 1e-9,
                    "DP {} vs brute force {} on {q:?}",
                    d.probability,
                    expected
                );
            }
            None => {
                assert!(
                    expected <= 0.0,
                    "DP found nothing but brute force found {expected} on {q:?}"
                );
            }
        }
    }
}
