#![warn(missing_docs)]

//! KBQA — template-learning question answering over QA corpora and
//! knowledge bases.
//!
//! This crate implements the primary contribution of Cui et al., VLDB 2017:
//! understanding questions through *templates* (a question with its entity
//! mention conceptualized, e.g. `how many people are there in $city?`) and
//! learning the template→predicate distribution `P(p|t)` from a QA corpus by
//! maximum-likelihood EM, then answering new questions by probabilistic
//! inference over a knowledge base.
//!
//! Module map (paper section in parentheses):
//!
//! * [`template`] — template derivation `t(q, e, c)` and the interning
//!   catalog (Sec 2).
//! * [`catalog`] — dense interning of expanded predicates.
//! * [`expansion`] — predicate expansion `p⁺` by memory-efficient
//!   scan-joined BFS, plus the Infobox `valid(k)` estimator (Sec 6).
//! * [`extraction`] — entity–value pair extraction from QA pairs with
//!   answer-type refinement (Sec 4.1).
//! * [`model`] — the fixed probability terms `P(e|q)`, `P(t|e,q)`,
//!   `P(v|e,p)` (Sec 3.2).
//! * [`em`] — EM estimation of `θ = P(p|t)` (Sec 4.2–4.3, Algorithm 1).
//! * [`learner`] — the offline pipeline wiring expansion → extraction → EM.
//! * [`persist`] — JSON persistence for the model and the full
//!   [`persist::ServingArtifacts`] bundle (warm starts, hot reloads).
//! * [`engine`] — the online answering procedure (Sec 3.3): the borrowed
//!   inference kernel.
//! * [`service`] — the serving API: the owned, thread-shareable
//!   [`service::KbqaService`], typed [`service::QaRequest`] /
//!   [`service::QaResponse`], the [`service::Refusal`] taxonomy, the
//!   hot-swappable [`service::ModelHandle`] with its monotonic model epoch,
//!   and the [`service::QaSystem`] trait shared with baselines.
//! * [`serialize`] — allocation-free JSON writer for the serving-edge
//!   response types (`QaResponse::serialize_into`, byte-identical to the
//!   vendored `serde_json` output).
//! * [`wire`] — the shard worker frame protocol (length-prefixed,
//!   Fx-64-checksummed messages over unix sockets).
//! * [`remote`] — the router-side client for out-of-process shard workers
//!   (connection pool, per-lookup deadline, bounded retry).
//! * [`shardworker`] — the `kbqa-shardd` worker serve loop (one shard per
//!   process, two-phase epoch swap, chaos hooks).
//! * [`decompose`] — complex-question decomposition by dynamic programming
//!   over substrings (Sec 5, Algorithm 2).
//! * [`hybrid`] — KBQA as the high-precision component of a hybrid system
//!   (Table 11).
//! * [`variants`] — ranking/comparison/listing questions compiled to probe
//!   BFQs (the Sec 1 claim that BFQ answering subsumes them).
//! * [`eval`] — QALD-style and WebQuestions-style metrics (Sec 7.3).

pub mod catalog;
pub mod decompose;
pub mod em;
pub mod engine;
pub mod eval;
pub mod expansion;
pub mod extraction;
pub mod hybrid;
pub mod inspect;
pub mod learner;
pub mod model;
pub mod persist;
pub mod remote;
pub mod serialize;
pub mod service;
pub mod shard;
pub mod shardworker;
pub mod template;
pub mod variants;
pub mod wire;

pub use catalog::{PredId, PredicateCatalog};
pub use em::{EmConfig, EmStats, Theta};
pub use engine::{Answer, ChoiceStats, EngineConfig, QaEngine, ScratchSpace};
pub use expansion::{ExpansionConfig, ExpansionResult};
pub use extraction::{ExtractionConfig, Observation};
pub use kbqa_rdf::ShardPlan;
pub use learner::{LearnedModel, Learner, LearnerConfig};
pub use persist::ServingArtifacts;
pub use remote::{RemoteError, RemoteOptions, RemoteShard};
pub use service::{
    KbqaService, ModelHandle, QaRequest, QaResponse, QaSystem, Refusal, ServiceSnapshot,
};
pub use shard::{ShardPanic, ShardRouter};
pub use shardworker::WorkerConfig;
pub use template::{SlotTable, Template, TemplateCatalog, TemplateId};
pub use variants::{VariantQa, VariantQuestion};
