//! The shard worker wire protocol: length-prefixed, checksummed frames
//! over a unix-domain socket.
//!
//! One [`Frame`] per message, laid out as
//!
//! ```text
//! | len: u32 LE | payload (len bytes) | fx64(payload): u64 LE |
//! ```
//!
//! where the payload is `kind: u8` followed by the message body, all
//! integers little-endian. The trailing checksum is the PR 6
//! [`Fx64Stream`] digest of the payload bytes, so a truncated or
//! bit-flipped reply is detected at the frame boundary — the client turns
//! it into a typed [`WireError::Checksum`] / [`WireError::Io`] and retries
//! or degrades; it never parses garbage into answer values.
//!
//! The vocabulary is deliberately tiny — the scatter half of
//! scatter-gather is exactly one RPC (`Lookup` → `Values`), and everything
//! else is supervision plumbing (heartbeats, the two-phase epoch swap,
//! graceful terminate):
//!
//! | kind | frame | direction |
//! |------|-------|-----------|
//! | 0x01 | [`Frame::Lookup`]     | router → worker |
//! | 0x81 | [`Frame::Values`]     | worker → router |
//! | 0x02 | [`Frame::Ping`]       | supervisor → worker |
//! | 0x82 | [`Frame::Pong`]       | worker → supervisor |
//! | 0x03 | [`Frame::Stage`]      | supervisor → worker (reload phase 1) |
//! | 0x83 | [`Frame::Staged`]     | worker → supervisor |
//! | 0x04 | [`Frame::Commit`]     | supervisor → worker (reload phase 2) |
//! | 0x84 | [`Frame::Committed`]  | worker → supervisor |
//! | 0x05 | [`Frame::Terminate`]  | supervisor → worker (graceful stop) |
//! | 0x85 | [`Frame::Terminating`]| worker → supervisor |
//! | 0x7f | [`Frame::Error`]      | worker → anyone |

use std::io::{Read, Write};

use kbqa_rdf::snapshot::Fx64Stream;
use kbqa_rdf::{NodeId, PredicateId};

/// Hard cap on a frame's payload length. A `Values` reply carries one u32
/// per value node; 16 MiB ≈ 4M values per lookup, far beyond any real
/// `V(e, p)` result set — anything larger is a corrupt or hostile length
/// prefix and is refused before allocation.
pub const MAX_FRAME: u32 = 16 << 20;

/// Frame kind bytes (requests low, replies high-bit set).
mod kind {
    pub const LOOKUP: u8 = 0x01;
    pub const PING: u8 = 0x02;
    pub const STAGE: u8 = 0x03;
    pub const COMMIT: u8 = 0x04;
    pub const TERMINATE: u8 = 0x05;
    pub const VALUES: u8 = 0x81;
    pub const PONG: u8 = 0x82;
    pub const STAGED: u8 = 0x83;
    pub const COMMITTED: u8 = 0x84;
    pub const TERMINATING: u8 = 0x85;
    pub const ERROR: u8 = 0x7f;
}

/// Typed error codes a worker can reply with (the `Error` frame's first
/// body byte). Everything else about the failure rides in the message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorCode {
    /// The request pinned an epoch the worker has not committed yet.
    EpochUnavailable,
    /// The worker could not decode the request frame.
    BadFrame,
    /// The worker failed internally (snapshot load, I/O).
    Internal,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::EpochUnavailable => 1,
            ErrorCode::BadFrame => 2,
            ErrorCode::Internal => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            1 => ErrorCode::EpochUnavailable,
            2 => ErrorCode::BadFrame,
            3 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// One protocol message. See the module docs for the frame layout.
#[derive(Clone, PartialEq, Debug)]
pub enum Frame {
    /// Value lookup: run `V(entity, path)` on the worker's shard at (or
    /// below) `epoch`.
    Lookup {
        /// The model epoch the requesting snapshot answers under. The
        /// worker serves when `epoch <= committed` — a request from a
        /// staged-but-uncommitted future is refused, pinning the two-phase
        /// swap invariant.
        epoch: u64,
        /// The (globally interned) subject entity.
        entity: NodeId,
        /// The expanded predicate's edge list.
        path: Vec<PredicateId>,
    },
    /// Lookup reply: the value nodes, in the exact order the shard-local
    /// traversal produced them (the merge's byte-identity depends on it).
    Values {
        /// Result node ids, globally interned.
        values: Vec<NodeId>,
    },
    /// Heartbeat probe.
    Ping {
        /// Echoed back in the pong; lets the supervisor discard stale
        /// replies after a reconnect.
        nonce: u64,
    },
    /// Heartbeat reply.
    Pong {
        /// The probe's nonce, echoed.
        nonce: u64,
        /// The worker's shard id.
        shard: u32,
        /// The worker's committed epoch.
        epoch: u64,
        /// Lookups served since start (monotonic; a reset betrays a silent
        /// restart).
        served: u64,
    },
    /// Reload phase 1: preload the snapshot at `snapshot` and hold it as
    /// epoch `epoch` without serving it.
    Stage {
        /// The epoch being staged (current + 1).
        epoch: u64,
        /// Path of the shard snapshot to preload.
        snapshot: String,
    },
    /// Phase-1 acknowledgement.
    Staged {
        /// The staged epoch.
        epoch: u64,
    },
    /// Reload phase 2: atomically flip the staged epoch live.
    Commit {
        /// The epoch to commit; must equal the staged epoch (or the
        /// already-committed one — commits are idempotent).
        epoch: u64,
    },
    /// Phase-2 acknowledgement.
    Committed {
        /// The now-committed epoch.
        epoch: u64,
    },
    /// Graceful stop: finish in-flight frames, acknowledge, exit 0.
    Terminate,
    /// Terminate acknowledgement (sent before exiting).
    Terminating,
    /// Typed failure reply.
    Error {
        /// What class of failure.
        code: ErrorCode,
        /// Human-readable detail (bounded by [`MAX_FRAME`]).
        message: String,
    },
}

/// Decode/transport failure reading or writing a frame.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure (includes truncation: an EOF mid-frame).
    Io(std::io::Error),
    /// The payload hashed differently than the trailing checksum — a
    /// corrupt frame.
    Checksum {
        /// Digest recorded in the frame trailer.
        expected: u64,
        /// Digest of the payload bytes actually received.
        actual: u64,
    },
    /// The payload did not parse as any known frame.
    Malformed(String),
    /// The length prefix exceeded [`MAX_FRAME`].
    TooLarge(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "frame i/o: {e}"),
            WireError::Checksum { expected, actual } => write!(
                f,
                "frame checksum mismatch: trailer says {expected:016x}, payload hashes to {actual:016x}"
            ),
            WireError::Malformed(why) => write!(f, "malformed frame: {why}"),
            WireError::TooLarge(len) => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// Whether a retry on a fresh connection could plausibly succeed —
    /// transport-level damage (reset, truncation, bit flips), as opposed to
    /// a well-formed refusal the peer would just repeat.
    pub fn is_transient(&self) -> bool {
        matches!(self, WireError::Io(_) | WireError::Checksum { .. })
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| WireError::Malformed("body shorter than its fields claim".into()))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{} trailing bytes after body",
                self.bytes.len() - self.at
            )))
        }
    }
}

/// Encode a frame to its on-wire bytes (length prefix + payload +
/// checksum trailer).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::with_capacity(16);
    match frame {
        Frame::Lookup {
            epoch,
            entity,
            path,
        } => {
            payload.push(kind::LOOKUP);
            put_u64(&mut payload, *epoch);
            put_u32(&mut payload, entity.0);
            put_u32(&mut payload, path.len() as u32);
            for p in path {
                put_u32(&mut payload, p.0);
            }
        }
        Frame::Values { values } => {
            payload.push(kind::VALUES);
            put_u32(&mut payload, values.len() as u32);
            for v in values {
                put_u32(&mut payload, v.0);
            }
        }
        Frame::Ping { nonce } => {
            payload.push(kind::PING);
            put_u64(&mut payload, *nonce);
        }
        Frame::Pong {
            nonce,
            shard,
            epoch,
            served,
        } => {
            payload.push(kind::PONG);
            put_u64(&mut payload, *nonce);
            put_u32(&mut payload, *shard);
            put_u64(&mut payload, *epoch);
            put_u64(&mut payload, *served);
        }
        Frame::Stage { epoch, snapshot } => {
            payload.push(kind::STAGE);
            put_u64(&mut payload, *epoch);
            put_u32(&mut payload, snapshot.len() as u32);
            payload.extend_from_slice(snapshot.as_bytes());
        }
        Frame::Staged { epoch } => {
            payload.push(kind::STAGED);
            put_u64(&mut payload, *epoch);
        }
        Frame::Commit { epoch } => {
            payload.push(kind::COMMIT);
            put_u64(&mut payload, *epoch);
        }
        Frame::Committed { epoch } => {
            payload.push(kind::COMMITTED);
            put_u64(&mut payload, *epoch);
        }
        Frame::Terminate => payload.push(kind::TERMINATE),
        Frame::Terminating => payload.push(kind::TERMINATING),
        Frame::Error { code, message } => {
            payload.push(kind::ERROR);
            payload.push(code.to_byte());
            put_u32(&mut payload, message.len() as u32);
            payload.extend_from_slice(message.as_bytes());
        }
    }
    let mut hasher = Fx64Stream::default();
    hasher.update(&payload);
    let digest = hasher.finish();
    let mut out = Vec::with_capacity(payload.len() + 12);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    put_u64(&mut out, digest);
    out
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&encode_frame(frame))?;
    w.flush()?;
    Ok(())
}

/// Read one frame, verifying the length cap and the checksum trailer
/// before parsing a byte of the body.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, WireError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 || len > MAX_FRAME {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut trailer = [0u8; 8];
    r.read_exact(&mut trailer)?;
    let expected = u64::from_le_bytes(trailer);
    let mut hasher = Fx64Stream::default();
    hasher.update(&payload);
    let actual = hasher.finish();
    if actual != expected {
        return Err(WireError::Checksum { expected, actual });
    }
    decode_payload(&payload)
}

fn decode_payload(payload: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor {
        bytes: payload,
        at: 0,
    };
    let frame = match c.u8()? {
        kind::LOOKUP => {
            let epoch = c.u64()?;
            let entity = NodeId(c.u32()?);
            let n = c.u32()? as usize;
            let mut path = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                path.push(PredicateId(c.u32()?));
            }
            Frame::Lookup {
                epoch,
                entity,
                path,
            }
        }
        kind::VALUES => {
            let n = c.u32()? as usize;
            let mut values = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                values.push(NodeId(c.u32()?));
            }
            Frame::Values { values }
        }
        kind::PING => Frame::Ping { nonce: c.u64()? },
        kind::PONG => Frame::Pong {
            nonce: c.u64()?,
            shard: c.u32()?,
            epoch: c.u64()?,
            served: c.u64()?,
        },
        kind::STAGE => {
            let epoch = c.u64()?;
            let n = c.u32()? as usize;
            let snapshot = String::from_utf8(c.take(n)?.to_vec())
                .map_err(|_| WireError::Malformed("stage path is not utf-8".into()))?;
            Frame::Stage { epoch, snapshot }
        }
        kind::STAGED => Frame::Staged { epoch: c.u64()? },
        kind::COMMIT => Frame::Commit { epoch: c.u64()? },
        kind::COMMITTED => Frame::Committed { epoch: c.u64()? },
        kind::TERMINATE => Frame::Terminate,
        kind::TERMINATING => Frame::Terminating,
        kind::ERROR => {
            let code = ErrorCode::from_byte(c.u8()?)
                .ok_or_else(|| WireError::Malformed("unknown error code".into()))?;
            let n = c.u32()? as usize;
            let message = String::from_utf8(c.take(n)?.to_vec())
                .map_err(|_| WireError::Malformed("error message is not utf-8".into()))?;
            Frame::Error { code, message }
        }
        other => {
            return Err(WireError::Malformed(format!(
                "unknown frame kind 0x{other:02x}"
            )))
        }
    };
    c.done()?;
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = encode_frame(&frame);
        let decoded = read_frame(&mut &bytes[..]).expect("decodes");
        assert_eq!(decoded, frame);
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(Frame::Lookup {
            epoch: 7,
            entity: NodeId(42),
            path: vec![PredicateId(1), PredicateId(9), PredicateId(3)],
        });
        roundtrip(Frame::Values {
            values: vec![NodeId(5), NodeId(5), NodeId(0), NodeId(u32::MAX)],
        });
        roundtrip(Frame::Values { values: vec![] });
        roundtrip(Frame::Ping { nonce: 0xdead_beef });
        roundtrip(Frame::Pong {
            nonce: 0xdead_beef,
            shard: 3,
            epoch: 12,
            served: 99,
        });
        roundtrip(Frame::Stage {
            epoch: 8,
            snapshot: "/tmp/bundle/store.shard-2.snap".into(),
        });
        roundtrip(Frame::Staged { epoch: 8 });
        roundtrip(Frame::Commit { epoch: 8 });
        roundtrip(Frame::Committed { epoch: 8 });
        roundtrip(Frame::Terminate);
        roundtrip(Frame::Terminating);
        roundtrip(Frame::Error {
            code: ErrorCode::EpochUnavailable,
            message: "committed=3 requested=9".into(),
        });
    }

    #[test]
    fn corrupt_payload_byte_is_a_checksum_error() {
        let mut bytes = encode_frame(&Frame::Values {
            values: vec![NodeId(1), NodeId(2), NodeId(3)],
        });
        // Flip a bit inside the payload (past the 4-byte length prefix).
        bytes[6] ^= 0x40;
        match read_frame(&mut &bytes[..]) {
            Err(WireError::Checksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_trailer_is_a_checksum_error() {
        let mut bytes = encode_frame(&Frame::Ping { nonce: 1 });
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(WireError::Checksum { .. })
        ));
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let bytes = encode_frame(&Frame::Values {
            values: vec![NodeId(1), NodeId(2), NodeId(3)],
        });
        for cut in 1..bytes.len() {
            match read_frame(&mut &bytes[..cut]) {
                Err(WireError::Io(e)) => {
                    assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
                }
                other => panic!("cut at {cut}: expected eof, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocation() {
        let mut bytes = encode_frame(&Frame::Ping { nonce: 1 });
        bytes[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(WireError::TooLarge(_))
        ));
        // Zero-length frames are equally impossible (payload always has a
        // kind byte).
        bytes[..4].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(WireError::TooLarge(0))
        ));
    }

    #[test]
    fn payload_shorter_than_fields_claim_is_malformed() {
        // A Values frame claiming 10 values but carrying 1: recompute a
        // valid checksum so decoding reaches the body parser.
        let mut payload = vec![0x81u8];
        payload.extend_from_slice(&10u32.to_le_bytes());
        payload.extend_from_slice(&7u32.to_le_bytes());
        let mut hasher = Fx64Stream::default();
        hasher.update(&payload);
        let digest = hasher.finish();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&digest.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn unknown_kind_is_malformed() {
        let mut payload = vec![0x60u8];
        payload.extend_from_slice(&1u64.to_le_bytes());
        let mut hasher = Fx64Stream::default();
        hasher.update(&payload);
        let digest = hasher.finish();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&digest.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(WireError::Malformed(_))
        ));
    }
}
