//! Complex-question decomposition (paper Sec 5).
//!
//! A complex question is decomposed into a sequence of BFQs — the paper's
//! example: *When was Barack Obama's wife born?* →
//! (`Barack Obama's wife`, `when was $e born?`). Two pieces:
//!
//! * [`PatternIndex`] — estimates `P(q̌) = f_v(q̌)/f_o(q̌)` (Eq 26) from the
//!   QA corpus: `f_o` counts questions matching the pattern under *any*
//!   substring replacement, `f_v` counts matches where the replaced
//!   substring is an entity mention. Over-general patterns like `when $e?`
//!   get large `f_o` and zero `f_v` (Example 4).
//! * [`decompose`] — the `O(|q|⁴)` dynamic program of Algorithm 2, exact
//!   per Theorem 2's local-optimality property, maximizing
//!   `P(A) = Π P(q̌)` (Eq 27) with `δ(qᵢ)` = "the engine can answer qᵢ as a
//!   primitive BFQ".
//!
//! [`answer_complex`] then executes the winning sequence left to right,
//! substituting each step's answer value into the next pattern's `$e` slot
//! (carrying several candidate values, since intermediate BFQs may be
//! multi-valued — band members, for instance).

use kbqa_common::hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

use kbqa_nlp::{tokenize, GazetteerNer};

use crate::engine::{Answer, QaEngine, ScratchSpace};

/// Questions longer than this are not indexed or decomposed (the paper:
/// over 99% of corpus questions have < 23 words).
pub const MAX_QUESTION_TOKENS: usize = 25;

/// Corpus-derived pattern statistics: `pattern → (f_o, f_v)`.
///
/// Patterns are token sequences with one `$e` slot, keyed by a 64-bit Fx
/// fingerprint of the joined tokens (collisions are statistically
/// negligible at corpus scale and only perturb one pattern's counts).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PatternIndex {
    counts: FxHashMap<u64, (u32, u32)>,
    questions_indexed: usize,
}

impl PatternIndex {
    /// Build from corpus questions, using the NER to decide which replaced
    /// substrings are valid entity mentions.
    pub fn build<'q>(questions: impl IntoIterator<Item = &'q str>, ner: &GazetteerNer) -> Self {
        let mut counts: FxHashMap<u64, (u32, u32)> = FxHashMap::default();
        let mut questions_indexed = 0usize;
        // Patterns seen in the current question (counts are per question).
        let mut seen_o: FxHashSet<u64> = FxHashSet::default();
        let mut seen_v: FxHashSet<u64> = FxHashSet::default();
        for question in questions {
            let tokens = tokenize(question);
            let n = tokens.len();
            if !(2..=MAX_QUESTION_TOKENS).contains(&n) {
                continue;
            }
            questions_indexed += 1;
            seen_o.clear();
            seen_v.clear();
            let words = tokens.words();
            for i in 0..n {
                for j in (i + 1)..=n {
                    if i == 0 && j == n {
                        continue; // the degenerate "$e" pattern
                    }
                    let key = pattern_key_words(&words, i, j);
                    seen_o.insert(key);
                    let is_mention = !ner.ground(&tokens.join(i, j)).is_empty();
                    if is_mention {
                        seen_v.insert(key);
                    }
                }
            }
            for &key in &seen_o {
                let entry = counts.entry(key).or_insert((0, 0));
                entry.0 += 1;
                if seen_v.contains(&key) {
                    entry.1 += 1;
                }
            }
        }
        Self {
            counts,
            questions_indexed,
        }
    }

    /// `P(q̌) = f_v/f_o` (Eq 26); 0 for never-seen patterns.
    pub fn probability(&self, pattern_words: &[&str]) -> f64 {
        let key = joined_key(pattern_words);
        match self.counts.get(&key) {
            Some(&(fo, fv)) if fo > 0 => f64::from(fv) / f64::from(fo),
            _ => 0.0,
        }
    }

    /// Raw `(f_o, f_v)` counts for a pattern.
    pub fn counts(&self, pattern_words: &[&str]) -> (u32, u32) {
        self.counts
            .get(&joined_key(pattern_words))
            .copied()
            .unwrap_or((0, 0))
    }

    /// Number of distinct patterns indexed.
    pub fn pattern_count(&self) -> usize {
        self.counts.len()
    }

    /// Number of corpus questions that contributed.
    pub fn questions_indexed(&self) -> usize {
        self.questions_indexed
    }
}

/// Fingerprint of `words[..i] ++ ["$e"] ++ words[j..]`.
fn pattern_key_words(words: &[&str], i: usize, j: usize) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = kbqa_common::hash::FxHasher::default();
    for w in &words[..i] {
        w.hash(&mut h);
    }
    "$e".hash(&mut h);
    for w in &words[j..] {
        w.hash(&mut h);
    }
    h.finish()
}

fn joined_key(pattern_words: &[&str]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = kbqa_common::hash::FxHasher::default();
    for w in pattern_words {
        w.hash(&mut h);
    }
    h.finish()
}

/// A decomposition: the innermost BFQ plus the chain of `$e` patterns
/// applied outward, with its sequence probability `P(A)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Decomposition {
    /// The innermost primitive BFQ (a concrete question string).
    pub primitive: String,
    /// Outward patterns, each containing one `$e` slot.
    pub patterns: Vec<String>,
    /// `P(A)` per Eq (27)/Eq (28).
    pub probability: f64,
}

impl Decomposition {
    /// Total number of BFQs in the sequence.
    pub fn len(&self) -> usize {
        1 + self.patterns.len()
    }

    /// Always ≥ 1.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Run Algorithm 2 on a question. Returns `None` when no substring is a
/// primitive BFQ (nothing is answerable).
pub fn decompose(
    engine: &QaEngine<'_>,
    index: &PatternIndex,
    question: &str,
) -> Option<Decomposition> {
    decompose_with(engine, index, question, &mut ScratchSpace::default())
}

/// [`decompose`] over a caller-owned engine scratch: the `O(|q|²)` δ-probes
/// of the DP run the scoring kernel only, reusing one scratch throughout —
/// including the substring tokenization, which is **assembled by
/// [`kbqa_nlp::TokenizedText::slice_into`]** from the parent's tokens into
/// one reused buffer instead of re-tokenizing each of the `O(|q|²)` ranges.
pub fn decompose_with(
    engine: &QaEngine<'_>,
    index: &PatternIndex,
    question: &str,
    scratch: &mut ScratchSpace,
) -> Option<Decomposition> {
    let tokens = tokenize(question);
    let n = tokens.len();
    if n == 0 || n > MAX_QUESTION_TOKENS {
        return None;
    }
    let words = tokens.words();
    // Taken out of the scratch so it can coexist with the scratch borrow
    // the kernel probes need; put back before every return below.
    let mut sub = std::mem::take(&mut scratch.sub_tokens);

    // DP state per range [a, b): best probability and the inner range the
    // optimum replaces (None = primitive).
    #[derive(Clone, Copy)]
    struct Cell {
        prob: f64,
        inner: Option<(usize, usize)>,
    }
    let idx = |a: usize, b: usize| a * (n + 1) + b;
    let mut dp: Vec<Cell> = vec![
        Cell {
            prob: 0.0,
            inner: None
        };
        (n + 1) * (n + 1)
    ];

    // Ranges in ascending length (Algorithm 2's outer loop order), so inner
    // results exist before they are consulted.
    for len in 1..=n {
        for a in 0..=(n - len) {
            let b = a + len;
            // δ(qᵢ): primitive BFQ?
            tokens.slice_into(a, b, &mut sub);
            let mut best = Cell {
                prob: if engine.is_answerable_with(&sub, scratch) {
                    1.0
                } else {
                    0.0
                },
                inner: None,
            };
            // max over proper substrings q_j ⊂ q_i.
            for c in a..b {
                for d in (c + 1)..=b {
                    if c == a && d == b {
                        continue;
                    }
                    let inner_prob = dp[idx(c, d)].prob;
                    if inner_prob <= 0.0 {
                        continue;
                    }
                    let pattern = replacement_pattern(&words, a, b, c, d);
                    let p_r = index.probability(&pattern);
                    let candidate = p_r * inner_prob;
                    if candidate > best.prob {
                        best = Cell {
                            prob: candidate,
                            inner: Some((c, d)),
                        };
                    }
                }
            }
            dp[idx(a, b)] = best;
        }
    }

    scratch.sub_tokens = sub;

    let root = dp[idx(0, n)];
    if root.prob <= 0.0 {
        return None;
    }

    // Reconstruct: walk inward collecting patterns, outermost first; then
    // reverse so execution runs inside-out.
    let mut patterns_outer_first: Vec<String> = Vec::new();
    let (mut a, mut b) = (0usize, n);
    while let Some((c, d)) = dp[idx(a, b)].inner {
        patterns_outer_first.push(join_pattern(&words, a, b, c, d));
        a = c;
        b = d;
    }
    patterns_outer_first.reverse();
    Some(Decomposition {
        primitive: tokens.join(a, b),
        patterns: patterns_outer_first,
        probability: root.prob,
    })
}

/// Execute a decomposition: answer the primitive, then substitute into each
/// pattern outward. Returns the final step's ranked answers — provenance
/// (entity/template/predicate/node) is the last hop's, with scores
/// accumulated along the chain.
pub fn execute(engine: &QaEngine<'_>, decomposition: &Decomposition) -> Option<Vec<Answer>> {
    execute_with(engine, decomposition, &mut ScratchSpace::default())
}

/// [`execute`] over a caller-owned engine scratch.
pub fn execute_with(
    engine: &QaEngine<'_>,
    decomposition: &Decomposition,
    scratch: &mut ScratchSpace,
) -> Option<Vec<Answer>> {
    let width = engine.config().chain_width.max(1);
    let mut carried: Vec<Answer> = engine
        .answer_bfq_explained_with(&decomposition.primitive, scratch)
        .unwrap_or_default()
        .into_iter()
        .take(width)
        .collect();
    if carried.is_empty() {
        return None;
    }
    for pattern in &decomposition.patterns {
        let mut next: Vec<Answer> = Vec::new();
        for previous in &carried {
            let question = pattern.replace("$e", &previous.value);
            let step = engine
                .answer_bfq_explained_with(&question, scratch)
                .unwrap_or_default();
            for mut a in step.into_iter().take(width) {
                a.score *= previous.score;
                next.push(a);
            }
        }
        // Merge duplicates, keep the best-scoring occurrence.
        next.sort_by(|x, y| x.value.cmp(&y.value).then(y.score.total_cmp(&x.score)));
        next.dedup_by(|a, b| {
            a.value == b.value && {
                b.score = b.score.max(a.score);
                true
            }
        });
        next.sort_by(|x, y| y.score.total_cmp(&x.score));
        next.truncate(width.max(8));
        if next.is_empty() {
            return None;
        }
        carried = next;
    }
    Some(carried)
}

/// Decompose-then-execute; the engine's fallback for non-primitive
/// questions.
pub fn answer_complex(
    engine: &QaEngine<'_>,
    index: &PatternIndex,
    question: &str,
) -> Option<Vec<Answer>> {
    answer_complex_with(engine, index, question, &mut ScratchSpace::default())
}

/// [`answer_complex`] over a caller-owned engine scratch — the engine's
/// internal fallback path.
pub fn answer_complex_with(
    engine: &QaEngine<'_>,
    index: &PatternIndex,
    question: &str,
    scratch: &mut ScratchSpace,
) -> Option<Vec<Answer>> {
    let decomposition = decompose_with(engine, index, question, scratch)?;
    if decomposition.patterns.is_empty() {
        // Primitive — answer_bfq already failed upstream, but the DP may
        // have matched a sub-range; re-run on the primitive.
        let answers = engine
            .answer_bfq_explained_with(&decomposition.primitive, scratch)
            .unwrap_or_default();
        if answers.is_empty() {
            return None;
        }
        return Some(answers);
    }
    execute_with(engine, &decomposition, scratch)
}

/// The pattern token list for replacing `[c, d)` inside `[a, b)`.
fn replacement_pattern<'w>(
    words: &[&'w str],
    a: usize,
    b: usize,
    c: usize,
    d: usize,
) -> Vec<&'w str> {
    let mut out: Vec<&str> = Vec::with_capacity(b - a - (d - c) + 1);
    out.extend_from_slice(&words[a..c]);
    out.push("$e");
    out.extend_from_slice(&words[d..b]);
    out
}

fn join_pattern(words: &[&str], a: usize, b: usize, c: usize, d: usize) -> String {
    replacement_pattern(words, a, b, c, d).join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_corpus::{CorpusConfig, QaCorpus, World, WorldConfig};

    use crate::learner::{Learner, LearnerConfig};
    use crate::LearnedModel;

    fn setup() -> (World, LearnedModel, PatternIndex) {
        let world = World::generate(WorldConfig::tiny(42));
        let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 900));
        let ner = kbqa_nlp::GazetteerNer::from_store(&world.store);
        let learner = Learner::new(
            &world.store,
            &world.conceptualizer,
            &ner,
            &world.predicate_classes,
        );
        let pairs: Vec<(&str, &str)> = corpus
            .pairs
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str()))
            .collect();
        let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
        let index = PatternIndex::build(corpus.pairs.iter().map(|p| p.question.as_str()), &ner);
        (world, model, index)
    }

    #[test]
    fn pattern_index_separates_valid_from_overgeneral() {
        let (world, _model, index) = setup();
        let _ = &world;
        // A pattern straight out of a paraphrase pool must have fv ≈ fo.
        let valid = ["when", "was", "$e", "born"];
        let (fo, fv) = index.counts(&valid);
        if fo > 0 {
            assert!(
                f64::from(fv) / f64::from(fo) > 0.8,
                "expected high validity for {valid:?}: fo={fo} fv={fv}"
            );
        }
        // Over-general "$e born" style patterns appear often but are rarely
        // valid mentions (Example 4's `when $e?`).
        let overgeneral = ["when", "$e", "born"];
        let (fo2, fv2) = index.counts(&overgeneral);
        if fo2 > 0 {
            assert!(
                f64::from(fv2) / f64::from(fo2) < 0.5,
                "over-general pattern scored too high: fo={fo2} fv={fv2}"
            );
        }
        assert!(index.pattern_count() > 100);
        assert!(index.questions_indexed() > 100);
    }

    #[test]
    fn decomposes_capital_population_question() {
        let (world, model, index) = setup();
        let engine = crate::engine::QaEngine::new(&world.store, &world.conceptualizer, &model);
        // Find a country whose capital exists.
        let cap_intent = world.intent_by_name("country_capital").unwrap();
        let country = world
            .subjects_of(cap_intent)
            .iter()
            .copied()
            .find(|&c| {
                !world.gold_values(cap_intent, c).is_empty()
                    && world.store.entities_named(&world.store.surface(c)).len() == 1
            })
            .expect("a country with a capital");
        let q = format!(
            "how many people live in the capital of {}",
            world.store.surface(country)
        );
        let decomposition = decompose(&engine, &index, &q);
        let Some(d) = decomposition else {
            panic!("no decomposition found for {q:?}");
        };
        assert_eq!(d.len(), 2, "decomposition: {d:?}");
        assert!(
            d.primitive.contains("capital of"),
            "primitive: {}",
            d.primitive
        );
        assert!(d.patterns[0].contains("$e"), "pattern: {}", d.patterns[0]);
    }

    #[test]
    fn executes_chained_answers() {
        let (world, model, index) = setup();
        let engine = crate::engine::QaEngine::new(&world.store, &world.conceptualizer, &model);
        let cap_intent = world.intent_by_name("country_capital").unwrap();
        let pop_pred = world.store.dict().find_predicate("population").unwrap();
        let capital_pred = world.store.dict().find_predicate("capital").unwrap();
        // Pick a country whose capital has a population and unique names.
        let target = world.subjects_of(cap_intent).iter().copied().find(|&c| {
            let caps: Vec<_> = world.store.objects(c, capital_pred).collect();
            let Some(&capital) = caps.first() else {
                return false;
            };
            world.store.objects(capital, pop_pred).next().is_some()
                && world.store.entities_named(&world.store.surface(c)).len() == 1
                && world
                    .store
                    .entities_named(&world.store.surface(capital))
                    .len()
                    == 1
        });
        let Some(country) = target else {
            // Tiny world without a suitable chain — nothing to assert.
            return;
        };
        let capital = world.store.objects(country, capital_pred).next().unwrap();
        let gold: Vec<String> = world
            .store
            .objects(capital, pop_pred)
            .map(|o| world.store.dict().render(o))
            .collect();
        let q = format!(
            "how many people live in the capital of {}",
            world.store.surface(country)
        );
        let answer = answer_complex(&engine, &index, &q);
        let Some(answers) = answer else {
            panic!("complex question unanswered: {q:?}");
        };
        let top = answers.first().map(|a| a.value.as_str());
        assert!(
            gold.iter().any(|g| top == Some(g.as_str())),
            "expected {gold:?}, got {answers:?}"
        );
    }

    #[test]
    fn primitive_question_decomposes_to_itself() {
        let (world, model, index) = setup();
        let engine = crate::engine::QaEngine::new(&world.store, &world.conceptualizer, &model);
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world
            .subjects_of(pop)
            .iter()
            .copied()
            .find(|&c| !world.gold_values(pop, c).is_empty())
            .unwrap();
        let q = format!("what is the population of {}", world.store.surface(city));
        let d = decompose(&engine, &index, &q).expect("primitive decomposition");
        assert_eq!(d.len(), 1);
        assert_eq!(d.probability, 1.0);
        assert!(d.patterns.is_empty());
    }

    #[test]
    fn undecomposable_question_returns_none() {
        let (world, model, index) = setup();
        let engine = crate::engine::QaEngine::new(&world.store, &world.conceptualizer, &model);
        assert!(decompose(&engine, &index, "why is the sky blue").is_none());
        assert!(decompose(&engine, &index, "").is_none());
    }

    #[test]
    fn pattern_helpers() {
        let words = ["when", "was", "barack", "obama", "born"];
        assert_eq!(
            replacement_pattern(&words, 0, 5, 2, 4),
            vec!["when", "was", "$e", "born"]
        );
        assert_eq!(join_pattern(&words, 0, 5, 2, 4), "when was $e born");
    }
}
