//! Model and serving-artifact persistence.
//!
//! The paper's offline procedure takes 1438 minutes; nobody re-learns on
//! every process start. This module saves and loads the [`LearnedModel`]
//! (and any other serde-serializable artifact) as JSON through buffered
//! file I/O, rebuilding the derived lookup tables on load.
//!
//! Beyond the single model, [`ServingArtifacts`] bundles **everything a
//! server needs to answer** — knowledge base, taxonomy, model, and the
//! optional NER gazetteer and pattern index — into one directory, so a
//! serving process can *warm start*: [`ServingArtifacts::load`] +
//! [`ServingArtifacts::into_service`] instead of re-generating the world
//! and re-running EM. The same files back the server's `POST /admin/reload`
//! hot-swap path.
//!
//! JSON for the model, taxonomy, NER and pattern index: those artifacts are
//! small, inspectable and diffable in experiments. The **knowledge base**
//! is the exception — at million-entity scale a JSON parse dominates start
//! time, so the store is persisted as a zero-copy snapshot (`store.snap`,
//! see `kbqa_rdf::snapshot`) that loads by `mmap` with no rebuild; legacy
//! `store.json` bundles remain loadable as a fallback.
//!
//! # Atomicity and integrity (PR 5)
//!
//! A crash (or a concurrent reader — the server's `POST /admin/reload`)
//! must never observe a half-written artifact, and a corrupted file must
//! fail loudly instead of serving garbage. Every [`save_json`] therefore:
//!
//! 1. writes the payload to a sibling temp file and `fsync`s it,
//! 2. renames it into place (atomic on POSIX),
//! 3. writes a **checksum sidecar** (`<file>.fxsum`, the Fx-64 digest of
//!    the exact file bytes) the same way.
//!
//! [`load_json`] recomputes the digest and refuses a mismatch with a typed
//! error — covering bit rot and partial copies that still parse as JSON.
//! A missing sidecar is accepted (legacy artifacts and hand-edited
//! experiment files stay loadable); a *stale* one (crash between the two
//! renames) fails closed, and re-saving repairs it.
//!
//! # Bundle-level integrity (PR 8)
//!
//! Per-file sidecars cannot catch a **cross-file mismatch**: a bundle whose
//! `store.snap` came from save N but whose `model.json` came from save N+1
//! has every sidecar individually consistent, yet serves a model against a
//! store it was never learned on (restore-from-backup and partial-rsync
//! accidents produce exactly this). Every [`ServingArtifacts::save`]
//! therefore writes a `manifest.json` **last**, recording the digest of
//! every file in the bundle; [`ServingArtifacts::load`] re-hashes each
//! listed file against the manifest and refuses the bundle on any mismatch.
//! Directories without a manifest (pre-PR8 saves) load under the per-file
//! rules only.
//!
//! # Sharded bundles (PR 8)
//!
//! A service built with a [`ShardPlan`] persists each
//! shard as its own snapshot (`store.shard-{i}.snap`) next to the global
//! `store.snap`; the manifest records the plan and the cut's balance stats.
//! Warm start then maps N+1 files and rebuilds only the shards' in-memory
//! adjacency indexes — no re-partitioning.

use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::de::DeserializeOwned;
use serde::Serialize;

use kbqa_common::error::{KbqaError, Result};
use kbqa_common::hash::FxHasher;
use kbqa_nlp::GazetteerNer;
use kbqa_rdf::{Snapshot, TripleStore};
use kbqa_taxonomy::Conceptualizer;

use kbqa_rdf::shard::{ShardPlan, ShardStats};

use crate::decompose::PatternIndex;
use crate::learner::LearnedModel;
use crate::service::KbqaService;
use crate::shard::ShardRouter;

/// Suffix of the checksum sidecar written next to every artifact.
pub const CHECKSUM_SUFFIX: &str = ".fxsum";

/// `<path>.fxsum` — the sidecar holding the artifact's digest.
pub fn checksum_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(CHECKSUM_SUFFIX);
    PathBuf::from(name)
}

/// Fx-64 digest of raw bytes, rendered as 16 hex digits.
fn digest(bytes: &[u8]) -> String {
    use std::hash::Hasher;
    let mut hasher = FxHasher::default();
    hasher.write(bytes);
    format!("{:016x}", hasher.finish())
}

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// `fsync`, rename. The temp file is cleaned up on failure.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp_name);
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Save any serializable artifact as JSON — atomically (temp + fsync +
/// rename), with a checksum sidecar for integrity validation on load.
/// Returns the file's digest (16 hex digits) for bundle manifests.
pub fn save_json<T: Serialize>(value: &T, path: &Path) -> Result<String> {
    let payload = serde_json::to_string(value)
        .map_err(|e| KbqaError::Io(format!("serialize {}: {e}", path.display())))?;
    let file_digest = digest(payload.as_bytes());
    // Payload first, sidecar second: a crash between the renames leaves a
    // valid new payload with a stale sidecar — load fails closed and a
    // re-save repairs it, which beats silently trusting either half.
    write_atomic(path, payload.as_bytes())?;
    write_atomic(&checksum_path(path), format!("{file_digest}\n").as_bytes())?;
    Ok(file_digest)
}

/// Load a JSON artifact, validating the checksum sidecar when one exists.
///
/// Corruption — a digest mismatch, or bytes that fail to parse — returns a
/// typed [`KbqaError::Io`]; nothing in this path panics. Artifacts without
/// a sidecar (legacy saves, hand-edited files) load unvalidated.
pub fn load_json<T: DeserializeOwned>(path: &Path) -> Result<T> {
    let bytes = std::fs::read(path)?;
    if let Ok(expected) = std::fs::read_to_string(checksum_path(path)) {
        let actual = digest(&bytes);
        if expected.trim() != actual {
            return Err(KbqaError::Io(format!(
                "checksum mismatch for {}: sidecar says {}, file hashes to {actual} \
                 (corrupt or partially-replaced artifact; re-save to repair)",
                path.display(),
                expected.trim(),
            )));
        }
    }
    let text = std::str::from_utf8(&bytes)
        .map_err(|e| KbqaError::Io(format!("deserialize {}: {e}", path.display())))?;
    serde_json::from_str(text)
        .map_err(|e| KbqaError::Io(format!("deserialize {}: {e}", path.display())))
}

/// Save a learned model. Returns the file's digest.
pub fn save_model(model: &LearnedModel, path: &Path) -> Result<String> {
    save_json(model, path)
}

/// Load a learned model, rebuilding its derived indexes.
pub fn load_model(path: &Path) -> Result<LearnedModel> {
    let mut model: LearnedModel = load_json(path)?;
    model.rebuild_index();
    Ok(model)
}

/// Save a triple store as a zero-copy snapshot (`store.snap`) with a
/// checksum sidecar. The snapshot writer is itself atomic (temp + fsync +
/// rename), so this follows the same crash discipline as [`save_json`].
/// Returns the file's digest.
pub fn save_store(store: &TripleStore, path: &Path) -> Result<String> {
    let file_digest = format!("{:016x}", store.write_snapshot(path)?);
    write_atomic(&checksum_path(path), format!("{file_digest}\n").as_bytes())?;
    Ok(file_digest)
}

/// Load a triple store by mapping its snapshot file read-only — no parse,
/// no rebuild; the columns are served straight out of the page cache.
///
/// The snapshot's embedded checksum is always verified by
/// [`Snapshot::open`]; when a `.fxsum` sidecar exists, the full-file digest
/// is cross-checked against it too (same convention as [`load_json`]).
pub fn load_store(path: &Path) -> Result<TripleStore> {
    let snapshot = Snapshot::open(path)?;
    if let Ok(expected) = std::fs::read_to_string(checksum_path(path)) {
        let actual = digest(snapshot.bytes());
        if expected.trim() != actual {
            return Err(KbqaError::Io(format!(
                "checksum mismatch for {}: sidecar says {}, file hashes to {actual} \
                 (corrupt or partially-replaced artifact; re-save to repair)",
                path.display(),
                expected.trim(),
            )));
        }
    }
    Ok(TripleStore::from_snapshot(snapshot))
}

/// Load a triple store from the legacy JSON format (`store.json`),
/// rebuilding its derived indexes. Kept so artifact directories written
/// before the snapshot format stay warm-startable.
pub fn load_store_json(path: &Path) -> Result<TripleStore> {
    let mut store: TripleStore = load_json(path)?;
    store.rebuild_index();
    Ok(store)
}

/// Save a conceptualizer (taxonomy network plus its tuning). Returns the
/// file's digest.
pub fn save_taxonomy(conceptualizer: &Conceptualizer, path: &Path) -> Result<String> {
    save_json(conceptualizer, path)
}

/// Load a conceptualizer, rebuilding its derived indexes.
pub fn load_taxonomy(path: &Path) -> Result<Conceptualizer> {
    let mut conceptualizer: Conceptualizer = load_json(path)?;
    conceptualizer.rebuild_index();
    Ok(conceptualizer)
}

/// File name for the knowledge base snapshot inside an artifact directory.
pub const STORE_FILE: &str = "store.snap";
/// Legacy JSON file name for the knowledge base; read as a fallback when no
/// snapshot is present, never written by current saves.
pub const LEGACY_STORE_FILE: &str = "store.json";
/// File name for the taxonomy inside an artifact directory.
pub const TAXONOMY_FILE: &str = "taxonomy.json";
/// File name for the learned model inside an artifact directory.
pub const MODEL_FILE: &str = "model.json";
/// File name for the NER gazetteer inside an artifact directory (optional).
pub const NER_FILE: &str = "ner.json";
/// File name for the pattern index inside an artifact directory (optional).
pub const PATTERNS_FILE: &str = "patterns.json";
/// File name for the bundle manifest binding every artifact's digest into
/// one consistent set (written last by [`ServingArtifacts::save`]).
pub const MANIFEST_FILE: &str = "manifest.json";

/// File name for shard `i`'s snapshot inside an artifact directory.
pub fn shard_store_file(i: usize) -> String {
    format!("store.shard-{i}.snap")
}

/// The bundle manifest: one digest per file, written after every other
/// artifact so a complete manifest implies a complete save. Loads verify
/// each listed file against it — catching cross-file mixes (store from save
/// N, model from save N+1) that per-file sidecars cannot see.
#[derive(Serialize, serde::Deserialize)]
struct BundleManifest {
    /// Manifest format version.
    version: u32,
    /// Artifact file name → Fx-64 digest of its exact bytes.
    files: std::collections::BTreeMap<String, String>,
    /// The shard plan this bundle was partitioned under, when sharded.
    #[serde(default)]
    shard_plan: Option<ShardPlan>,
    /// Balance/replication stats of the persisted cut, when sharded.
    #[serde(default)]
    shard_stats: Option<ShardStats>,
}

/// Read just the shard plan (and cut stats) out of a bundle's manifest —
/// what the server's supervisor needs to spawn one worker per shard
/// without mapping any snapshot itself. Returns `Ok(None)` for an
/// unsharded bundle or a pre-manifest directory. Verifies each listed
/// `store.shard-{i}.snap` exists (the workers will map them) but leaves
/// digest checking to the workers' own snapshot/sidecar validation.
pub fn load_shard_manifest(dir: &Path) -> Result<Option<(ShardPlan, ShardStats)>> {
    let manifest_path = dir.join(MANIFEST_FILE);
    if !manifest_path.exists() {
        return Ok(None);
    }
    let manifest: BundleManifest = load_json(&manifest_path)?;
    let Some(plan) = manifest.shard_plan else {
        return Ok(None);
    };
    for i in 0..plan.shards() {
        let path = dir.join(shard_store_file(i));
        if !path.exists() {
            return Err(KbqaError::Io(format!(
                "bundle manifest declares {} shards but {} is missing",
                plan.shards(),
                path.display()
            )));
        }
    }
    Ok(Some((plan, manifest.shard_stats.unwrap_or_default())))
}

/// Everything a serving process needs to answer questions, as one bundle.
///
/// `store`, `conceptualizer` and `model` are mandatory; `ner` and
/// `pattern_index` are optional accelerations ([`ServingArtifacts::into_service`]
/// re-derives the NER from the store when absent, and simply serves without
/// decomposition when the pattern index is absent).
pub struct ServingArtifacts {
    /// The knowledge base.
    pub store: Arc<TripleStore>,
    /// The taxonomy.
    pub conceptualizer: Arc<Conceptualizer>,
    /// The learned model.
    pub model: Arc<LearnedModel>,
    /// The NER gazetteer, when persisted.
    pub ner: Option<Arc<GazetteerNer>>,
    /// The corpus pattern index, when persisted.
    pub pattern_index: Option<Arc<PatternIndex>>,
    /// The shard router, when the service serves sharded (persisted as one
    /// snapshot per shard).
    pub shards: Option<Arc<ShardRouter>>,
}

impl ServingArtifacts {
    /// Capture a service's current artifacts (the model as currently
    /// served — a concurrent swap after this call is not reflected).
    pub fn from_service(service: &KbqaService) -> Self {
        Self {
            store: service.store_shared(),
            conceptualizer: service.conceptualizer_shared(),
            model: service.model(),
            ner: Some(service.ner_shared()),
            pattern_index: service.pattern_index_shared(),
            // A degenerate (1-shard) router carries no stores — nothing to
            // persist; warm start re-attaches it from KBQA_SHARDS=1 alone.
            // A remote router's stores live in its worker processes: the
            // bundle they were spawned from already holds the shard
            // snapshots, so persisting from this side would record a plan
            // with no files.
            shards: service
                .shard_router()
                .filter(|r| !r.is_degenerate() && r.is_local())
                .map(Arc::clone),
        }
    }

    /// Write every artifact into `dir` (created if missing): `store.snap`,
    /// `taxonomy.json`, `model.json`, and — when present — `ner.json`,
    /// `patterns.json` and one `store.shard-{i}.snap` per shard. The
    /// bundle manifest (file → digest, plus the shard plan) is written
    /// **last**, so a manifest's presence implies a complete save.
    pub fn save(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut files = std::collections::BTreeMap::new();
        files.insert(
            STORE_FILE.to_string(),
            save_store(&self.store, &dir.join(STORE_FILE))?,
        );
        files.insert(
            TAXONOMY_FILE.to_string(),
            save_taxonomy(&self.conceptualizer, &dir.join(TAXONOMY_FILE))?,
        );
        files.insert(
            MODEL_FILE.to_string(),
            save_model(&self.model, &dir.join(MODEL_FILE))?,
        );
        if let Some(ner) = &self.ner {
            files.insert(
                NER_FILE.to_string(),
                save_json(ner.as_ref(), &dir.join(NER_FILE))?,
            );
        }
        if let Some(index) = &self.pattern_index {
            files.insert(
                PATTERNS_FILE.to_string(),
                save_json(index.as_ref(), &dir.join(PATTERNS_FILE))?,
            );
        }
        let mut shard_plan = None;
        let mut shard_stats = None;
        if let Some(router) = self
            .shards
            .as_deref()
            .filter(|r| !r.is_degenerate() && r.is_local())
        {
            for (i, store) in router.stores().iter().enumerate() {
                let name = shard_store_file(i);
                files.insert(name.clone(), save_store(store, &dir.join(name))?);
            }
            shard_plan = Some(*router.plan());
            shard_stats = Some(router.stats().clone());
        }
        save_json(
            &BundleManifest {
                version: 1,
                files,
                shard_plan,
                shard_stats,
            },
            &dir.join(MANIFEST_FILE),
        )?;
        Ok(())
    }

    /// Load a bundle from `dir`. The store is mapped from its snapshot
    /// (warm start: no parse, no index rebuild) — or parsed from the legacy
    /// `store.json` when no snapshot exists. The NER and pattern-index
    /// files are optional; everything else must be present.
    ///
    /// When a `manifest.json` is present, every file it lists is re-hashed
    /// against its recorded digest before anything is parsed — a bundle
    /// whose files are individually sidecar-consistent but come from
    /// *different saves* (store from save N, model from save N+1) is
    /// refused with a typed error. Pre-manifest directories load under the
    /// per-file rules only.
    ///
    /// Sharded bundles map one snapshot per shard and rebuild each shard's
    /// in-memory adjacency index — no re-partitioning.
    pub fn load(dir: &Path) -> Result<Self> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest: Option<BundleManifest> = if manifest_path.exists() {
            let manifest: BundleManifest = load_json(&manifest_path)?;
            for (name, expected) in &manifest.files {
                let path = dir.join(name);
                let bytes = std::fs::read(&path).map_err(|e| {
                    KbqaError::Io(format!(
                        "bundle manifest lists {name} but it cannot be read: {e}"
                    ))
                })?;
                let actual = digest(&bytes);
                if actual != *expected {
                    return Err(KbqaError::Io(format!(
                        "bundle manifest mismatch for {}: manifest says {expected}, file \
                         hashes to {actual} — the bundle mixes files from different saves \
                         (each may still pass its own sidecar); re-save the bundle",
                        path.display(),
                    )));
                }
            }
            Some(manifest)
        } else {
            None
        };
        let ner_path = dir.join(NER_FILE);
        let patterns_path = dir.join(PATTERNS_FILE);
        let snap_path = dir.join(STORE_FILE);
        let store = if snap_path.exists() {
            load_store(&snap_path)?
        } else {
            load_store_json(&dir.join(LEGACY_STORE_FILE))?
        };
        let shards = match manifest.as_ref().and_then(|m| m.shard_plan) {
            Some(plan) => {
                let mut stores = Vec::with_capacity(plan.shards());
                for i in 0..plan.shards() {
                    let mut shard = load_store(&dir.join(shard_store_file(i)))?;
                    shard.build_adjacency_index();
                    stores.push(Arc::new(shard));
                }
                let stats = manifest
                    .as_ref()
                    .and_then(|m| m.shard_stats.clone())
                    .unwrap_or_default();
                Some(Arc::new(ShardRouter::from_stores(plan, stores, stats)))
            }
            None => None,
        };
        Ok(Self {
            store: Arc::new(store),
            conceptualizer: Arc::new(load_taxonomy(&dir.join(TAXONOMY_FILE))?),
            model: Arc::new(load_model(&dir.join(MODEL_FILE))?),
            ner: if ner_path.exists() {
                Some(Arc::new(load_json(&ner_path)?))
            } else {
                None
            },
            pattern_index: if patterns_path.exists() {
                Some(Arc::new(load_json(&patterns_path)?))
            } else {
                None
            },
            shards,
        })
    }

    /// Does `dir` hold a loadable bundle (a store in either format, plus
    /// the taxonomy and model)?
    pub fn present_in(dir: &Path) -> bool {
        (dir.join(STORE_FILE).exists() || dir.join(LEGACY_STORE_FILE).exists())
            && dir.join(TAXONOMY_FILE).exists()
            && dir.join(MODEL_FILE).exists()
    }

    /// Build a ready-to-serve [`KbqaService`] from the bundle — the warm
    /// start path. Derives the NER from the store only when the bundle
    /// carries none.
    pub fn into_service(self) -> KbqaService {
        self.into_service_at_epoch(0)
    }

    /// Like [`Self::into_service`], but the service's [`ModelHandle`] starts
    /// at `epoch` instead of 0 — the full-bundle hot-swap path: the server
    /// rebuilds the service at `old_epoch + 1` so versioned cache keys carry
    /// straight across the swap without a flush.
    ///
    /// [`ModelHandle`]: crate::service::ModelHandle
    pub fn into_service_at_epoch(self, epoch: u64) -> KbqaService {
        let mut builder =
            KbqaService::builder(self.store, self.conceptualizer, self.model).model_epoch(epoch);
        if let Some(ner) = self.ner {
            builder = builder.ner(ner);
        }
        if let Some(index) = self.pattern_index {
            builder = builder.pattern_index(index);
        }
        if let Some(router) = self.shards {
            builder = builder.shard_router(router);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use kbqa_corpus::{CorpusConfig, QaCorpus, World, WorldConfig};
    use kbqa_nlp::GazetteerNer;

    use crate::learner::{Learner, LearnerConfig};
    use crate::template::Template;

    #[test]
    fn model_save_load_roundtrip() {
        let world = World::generate(WorldConfig::tiny(42));
        let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 400));
        let ner = GazetteerNer::from_store(&world.store);
        let learner = Learner::new(
            &world.store,
            &world.conceptualizer,
            &ner,
            &world.predicate_classes,
        );
        let pairs: Vec<(&str, &str)> = corpus
            .pairs
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str()))
            .collect();
        let (model, _) = learner.learn(&pairs, &LearnerConfig::default());

        let dir = std::env::temp_dir().join("kbqa-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&model, &path).unwrap();
        let restored = load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(model.templates.len(), restored.templates.len());
        assert_eq!(model.stats.observations, restored.stats.observations);
        assert_eq!(
            model.stats.distinct_templates,
            restored.stats.distinct_templates
        );
        assert_eq!(model.stats.em.iterations, restored.stats.em.iterations);
        // Derived indexes were rebuilt: template lookup works.
        let t = Template::from_canonical("when was $person born");
        assert_eq!(model.templates.get(&t), restored.templates.get(&t));
        // …including the precompiled question-form index the optimized
        // kernel uses, which is serde-skipped and rebuilt on load.
        if let Some(tid) = restored.templates.get(&t) {
            let q = kbqa_nlp::tokenize("when was Somebody born");
            let mut buf = String::new();
            let form = restored
                .templates
                .form_symbol(&q, 2, 3, &mut buf)
                .expect("form index rebuilt on load");
            let slot = restored
                .templates
                .slot_symbol("$person")
                .expect("slot index rebuilt on load");
            assert_eq!(restored.templates.template_for(form, slot), Some(tid));
        }
        // Loading minted a fresh catalog generation — caches layered on the
        // pre-save catalog can never be served against the restored one.
        assert_ne!(
            model.templates.generation(),
            restored.templates.generation()
        );
    }

    #[test]
    fn serving_artifacts_roundtrip_through_a_directory() {
        let world = World::generate(WorldConfig::tiny(43));
        let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 400));
        let ner = std::sync::Arc::new(GazetteerNer::from_store(&world.store));
        let learner = Learner::new(
            &world.store,
            &world.conceptualizer,
            &ner,
            &world.predicate_classes,
        );
        let pairs: Vec<(&str, &str)> = corpus
            .pairs
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str()))
            .collect();
        let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
        let index = crate::decompose::PatternIndex::build(
            corpus.pairs.iter().map(|p| p.question.as_str()),
            &ner,
        );
        let service = KbqaService::builder(
            std::sync::Arc::clone(&world.store),
            std::sync::Arc::clone(&world.conceptualizer),
            std::sync::Arc::new(model),
        )
        .ner(ner)
        .pattern_index(std::sync::Arc::new(index))
        .build();

        let dir = std::env::temp_dir().join(format!(
            "kbqa-persist-artifacts-test-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        assert!(!ServingArtifacts::present_in(&dir));
        ServingArtifacts::from_service(&service)
            .save(&dir)
            .expect("save bundle");
        assert!(ServingArtifacts::present_in(&dir));

        // Warm start: a service rebuilt purely from disk answers every
        // question byte-identically to the original (same model epoch 0, so
        // the full QaResponse including the stamp must match).
        let restored = ServingArtifacts::load(&dir)
            .expect("load bundle")
            .into_service();
        std::fs::remove_dir_all(&dir).ok();
        let questions = [
            "what is the population of nowhere",
            &corpus.pairs[0].question,
            &corpus.pairs[1].question,
        ];
        for q in questions {
            assert_eq!(
                serde_json::to_string(&service.answer_text(q)).unwrap(),
                serde_json::to_string(&restored.answer_text(q)).unwrap(),
                "warm-started service must answer {q:?} identically"
            );
        }
        assert!(
            restored.pattern_index().is_some(),
            "pattern index persisted"
        );
    }

    /// A tiny learned service for bundle tests, optionally sharded, plus a
    /// handful of corpus questions it can actually answer.
    fn learned_service(seed: u64, plan: Option<ShardPlan>) -> (KbqaService, Vec<String>) {
        let world = World::generate(WorldConfig::tiny(seed));
        let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 400));
        let ner = std::sync::Arc::new(GazetteerNer::from_store(&world.store));
        let learner = Learner::new(
            &world.store,
            &world.conceptualizer,
            &ner,
            &world.predicate_classes,
        );
        let pairs: Vec<(&str, &str)> = corpus
            .pairs
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str()))
            .collect();
        let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
        let mut builder = KbqaService::builder(
            std::sync::Arc::clone(&world.store),
            std::sync::Arc::clone(&world.conceptualizer),
            std::sync::Arc::new(model),
        )
        .ner(ner);
        if let Some(plan) = plan {
            builder = builder.shards(plan);
        }
        let questions = corpus
            .pairs
            .iter()
            .take(8)
            .map(|p| p.question.clone())
            .collect();
        (builder.build(), questions)
    }

    #[test]
    fn sharded_bundle_roundtrips_per_shard_snapshots() {
        let (service, questions) = learned_service(47, Some(ShardPlan::new(3)));
        let dir = std::env::temp_dir().join(format!("kbqa-persist-sharded-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ServingArtifacts::from_service(&service)
            .save(&dir)
            .expect("save sharded bundle");
        for i in 0..3 {
            assert!(dir.join(shard_store_file(i)).exists(), "shard {i} snap");
        }
        assert!(dir.join(MANIFEST_FILE).exists(), "manifest written");

        let restored = ServingArtifacts::load(&dir).expect("load sharded bundle");
        let router = restored.shards.as_ref().expect("router restored");
        assert_eq!(router.shard_count(), 3);
        assert_eq!(router.plan(), &ShardPlan::new(3));
        assert!(
            router.stores().iter().all(|s| s.has_adjacency_index()),
            "shard adjacency indexes rebuilt on warm start"
        );
        let restored = restored.into_service();
        std::fs::remove_dir_all(&dir).ok();
        assert!(restored.shard_router().is_some(), "service serves sharded");
        for q in &questions {
            assert_eq!(
                serde_json::to_string(&service.answer_text(q)).unwrap(),
                serde_json::to_string(&restored.answer_text(q)).unwrap(),
                "warm-started sharded service must answer {q:?} identically"
            );
        }
    }

    #[test]
    fn manifest_catches_cross_file_mixes_that_sidecars_accept() {
        // The satellite bug: every file individually passes its own .fxsum
        // sidecar, but the files come from *different saves* — store from
        // save N, model from save N+1. Pre-manifest loads accepted this.
        let (service, _) = learned_service(48, None);
        let dir =
            std::env::temp_dir().join(format!("kbqa-persist-crossmix-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ServingArtifacts::from_service(&service)
            .save(&dir)
            .expect("save bundle");

        // "Save N+1" of just the model, landing in a sibling directory —
        // then a partial rsync copies the pair (file + sidecar) over.
        let other = dir.join("next-save");
        std::fs::create_dir_all(&other).unwrap();
        let next_model = other.join(MODEL_FILE);
        save_model(&LearnedModel::default(), &next_model).expect("save next model");
        let mixed = dir.join(MODEL_FILE);
        std::fs::copy(&next_model, &mixed).unwrap();
        std::fs::copy(checksum_path(&next_model), checksum_path(&mixed)).unwrap();

        // The mixed-in file is self-consistent: its own sidecar passes.
        load_model(&mixed).expect("per-file sidecar still passes");
        // But the bundle-level manifest refuses the set.
        let err = match ServingArtifacts::load(&dir) {
            Ok(_) => panic!("manifest must refuse the mix"),
            Err(err) => err,
        };
        assert!(
            err.to_string().contains("manifest mismatch"),
            "typed bundle error, got: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bundle_without_manifest_still_loads() {
        let (service, _) = learned_service(49, None);
        let dir = std::env::temp_dir().join(format!("kbqa-persist-legacy-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        ServingArtifacts::from_service(&service)
            .save(&dir)
            .expect("save bundle");
        let manifest = dir.join(MANIFEST_FILE);
        std::fs::remove_file(&manifest).unwrap();
        std::fs::remove_file(checksum_path(&manifest)).unwrap();
        let restored = ServingArtifacts::load(&dir).expect("pre-manifest bundle loads");
        assert!(restored.shards.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_snapshot_roundtrip_is_mapped_and_checksummed() {
        let world = World::generate(WorldConfig::tiny(44));
        let dir = std::env::temp_dir().join(format!("kbqa-persist-snap-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(STORE_FILE);

        save_store(&world.store, &path).unwrap();
        assert!(checksum_path(&path).exists(), "snapshot sidecar written");
        let restored = load_store(&path).unwrap();
        assert_eq!(restored.backend_kind(), kbqa_rdf::BackendKind::Mapped);
        assert_eq!(restored.len(), world.store.len());
        // Same logical content: identical N-Triples export.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        kbqa_rdf::ntriples::export(&world.store, &mut a).unwrap();
        kbqa_rdf::ntriples::export(&restored, &mut b).unwrap();
        assert_eq!(a, b);

        // Flip one byte mid-file: the embedded checksum rejects it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match load_store(&path) {
            Err(KbqaError::Io(message)) => {
                assert!(message.contains("snapshot"), "typed error: {message}")
            }
            other => panic!("corrupt snapshot must fail to load: {other:?}"),
        }

        // Re-saving repairs; a stale sidecar then fails closed.
        save_store(&world.store, &path).unwrap();
        std::fs::write(checksum_path(&path), "0000000000000000\n").unwrap();
        match load_store(&path) {
            Err(KbqaError::Io(message)) => {
                assert!(message.contains("checksum mismatch"), "got: {message}")
            }
            other => panic!("stale sidecar must fail closed: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_json_store_still_warm_starts() {
        let world = World::generate(WorldConfig::tiny(45));
        let dir =
            std::env::temp_dir().join(format!("kbqa-persist-legacyjson-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // Write the store the pre-snapshot way.
        let json_path = dir.join(LEGACY_STORE_FILE);
        save_json(world.store.as_ref(), &json_path).unwrap();
        let restored = load_store_json(&json_path).unwrap();
        assert_eq!(restored.backend_kind(), kbqa_rdf::BackendKind::InMemory);
        assert_eq!(restored.len(), world.store.len());
        assert!(
            !ServingArtifacts::present_in(&dir),
            "store alone is not a full bundle"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let result = load_model(Path::new("/nonexistent/kbqa/model.json"));
        assert!(matches!(result, Err(KbqaError::Io(_))));
    }

    #[test]
    fn save_is_atomic_and_checksummed() {
        let dir = std::env::temp_dir().join(format!("kbqa-persist-atomic-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");

        save_model(&LearnedModel::default(), &path).unwrap();
        assert!(
            checksum_path(&path).exists(),
            "save must write the checksum sidecar"
        );
        // No temp litter: the temp files were renamed away.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "temp files must not survive: {stray:?}");
        // The happy path round-trips.
        load_model(&path).expect("checksummed artifact loads");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_artifact_fails_the_checksum_not_a_panic() {
        let dir = std::env::temp_dir().join(format!("kbqa-persist-corrupt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.json");

        // Two differently-sized models, both validly saved.
        save_model(&LearnedModel::default(), &a).unwrap();
        let mut other = LearnedModel::default();
        other.stats.observations = 123_456;
        save_model(&other, &b).unwrap();

        // Swap b's payload under a's sidecar: the file is perfectly valid
        // JSON for a LearnedModel — only the checksum can catch it.
        std::fs::copy(&b, &a).unwrap();
        let result = load_model(&a);
        match result {
            Err(KbqaError::Io(message)) => assert!(
                message.contains("checksum mismatch"),
                "error must name the cause: {message}"
            ),
            other => panic!("corrupt artifact must fail to load: {other:?}"),
        }

        // Truncation (invalid JSON) also errors — never panics.
        std::fs::write(&a, b"{\"trunc").unwrap();
        assert!(matches!(load_model(&a), Err(KbqaError::Io(_))));

        // Re-saving repairs the pair.
        save_model(&LearnedModel::default(), &a).unwrap();
        load_model(&a).expect("repaired artifact loads");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_artifact_without_sidecar_still_loads() {
        let dir = std::env::temp_dir().join(format!("kbqa-persist-legacy-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&LearnedModel::default(), &path).unwrap();
        std::fs::remove_file(checksum_path(&path)).unwrap();
        load_model(&path).expect("legacy artifact (no sidecar) must load");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_corrupt_file_errors() {
        let dir = std::env::temp_dir().join("kbqa-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, b"{ not json").unwrap();
        let result: Result<LearnedModel> = load_json(&path);
        std::fs::remove_file(&path).ok();
        assert!(matches!(result, Err(KbqaError::Io(_))));
    }
}
