//! Model persistence.
//!
//! The paper's offline procedure takes 1438 minutes; nobody re-learns on
//! every process start. This module saves and loads the [`LearnedModel`]
//! (and any other serde-serializable artifact) as JSON through buffered
//! file I/O, rebuilding the derived lookup tables on load.
//!
//! JSON rather than a bespoke binary format: the artifacts are inspectable,
//! diffable in experiments, and the workspace already carries `serde`. A
//! binary codec would only matter at scales our worlds never reach.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

use serde::de::DeserializeOwned;
use serde::Serialize;

use kbqa_common::error::{KbqaError, Result};

use crate::learner::LearnedModel;

/// Save any serializable artifact as JSON.
pub fn save_json<T: Serialize>(value: &T, path: &Path) -> Result<()> {
    let file = File::create(path)?;
    let writer = BufWriter::new(file);
    serde_json::to_writer(writer, value)
        .map_err(|e| KbqaError::Io(format!("serialize {}: {e}", path.display())))
}

/// Load a JSON artifact.
pub fn load_json<T: DeserializeOwned>(path: &Path) -> Result<T> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    serde_json::from_reader(reader)
        .map_err(|e| KbqaError::Io(format!("deserialize {}: {e}", path.display())))
}

/// Save a learned model.
pub fn save_model(model: &LearnedModel, path: &Path) -> Result<()> {
    save_json(model, path)
}

/// Load a learned model, rebuilding its derived indexes.
pub fn load_model(path: &Path) -> Result<LearnedModel> {
    let mut model: LearnedModel = load_json(path)?;
    model.rebuild_index();
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    use kbqa_corpus::{CorpusConfig, QaCorpus, World, WorldConfig};
    use kbqa_nlp::GazetteerNer;

    use crate::learner::{Learner, LearnerConfig};
    use crate::template::Template;

    #[test]
    fn model_save_load_roundtrip() {
        let world = World::generate(WorldConfig::tiny(42));
        let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 400));
        let ner = GazetteerNer::from_store(&world.store);
        let learner = Learner::new(
            &world.store,
            &world.conceptualizer,
            &ner,
            &world.predicate_classes,
        );
        let pairs: Vec<(&str, &str)> = corpus
            .pairs
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str()))
            .collect();
        let (model, _) = learner.learn(&pairs, &LearnerConfig::default());

        let dir = std::env::temp_dir().join("kbqa-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&model, &path).unwrap();
        let restored = load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(model.templates.len(), restored.templates.len());
        assert_eq!(model.stats.observations, restored.stats.observations);
        assert_eq!(
            model.stats.distinct_templates,
            restored.stats.distinct_templates
        );
        assert_eq!(model.stats.em.iterations, restored.stats.em.iterations);
        // Derived indexes were rebuilt: template lookup works.
        let t = Template::from_canonical("when was $person born");
        assert_eq!(model.templates.get(&t), restored.templates.get(&t));
    }

    #[test]
    fn load_missing_file_errors() {
        let result = load_model(Path::new("/nonexistent/kbqa/model.json"));
        assert!(matches!(result, Err(KbqaError::Io(_))));
    }

    #[test]
    fn load_corrupt_file_errors() {
        let dir = std::env::temp_dir().join("kbqa-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, b"{ not json").unwrap();
        let result: Result<LearnedModel> = load_json(&path);
        std::fs::remove_file(&path).ok();
        assert!(matches!(result, Err(KbqaError::Io(_))));
    }
}
