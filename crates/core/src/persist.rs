//! Model and serving-artifact persistence.
//!
//! The paper's offline procedure takes 1438 minutes; nobody re-learns on
//! every process start. This module saves and loads the [`LearnedModel`]
//! (and any other serde-serializable artifact) as JSON through buffered
//! file I/O, rebuilding the derived lookup tables on load.
//!
//! Beyond the single model, [`ServingArtifacts`] bundles **everything a
//! server needs to answer** — knowledge base, taxonomy, model, and the
//! optional NER gazetteer and pattern index — into one directory, so a
//! serving process can *warm start*: [`ServingArtifacts::load`] +
//! [`ServingArtifacts::into_service`] instead of re-generating the world
//! and re-running EM. The same files back the server's `POST /admin/reload`
//! hot-swap path.
//!
//! JSON rather than a bespoke binary format: the artifacts are inspectable,
//! diffable in experiments, and the workspace already carries `serde`. A
//! binary codec would only matter at scales our worlds never reach.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::sync::Arc;

use serde::de::DeserializeOwned;
use serde::Serialize;

use kbqa_common::error::{KbqaError, Result};
use kbqa_nlp::GazetteerNer;
use kbqa_rdf::TripleStore;
use kbqa_taxonomy::Conceptualizer;

use crate::decompose::PatternIndex;
use crate::learner::LearnedModel;
use crate::service::KbqaService;

/// Save any serializable artifact as JSON.
pub fn save_json<T: Serialize>(value: &T, path: &Path) -> Result<()> {
    let file = File::create(path)?;
    let writer = BufWriter::new(file);
    serde_json::to_writer(writer, value)
        .map_err(|e| KbqaError::Io(format!("serialize {}: {e}", path.display())))
}

/// Load a JSON artifact.
pub fn load_json<T: DeserializeOwned>(path: &Path) -> Result<T> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    serde_json::from_reader(reader)
        .map_err(|e| KbqaError::Io(format!("deserialize {}: {e}", path.display())))
}

/// Save a learned model.
pub fn save_model(model: &LearnedModel, path: &Path) -> Result<()> {
    save_json(model, path)
}

/// Load a learned model, rebuilding its derived indexes.
pub fn load_model(path: &Path) -> Result<LearnedModel> {
    let mut model: LearnedModel = load_json(path)?;
    model.rebuild_index();
    Ok(model)
}

/// Save a triple store.
pub fn save_store(store: &TripleStore, path: &Path) -> Result<()> {
    save_json(store, path)
}

/// Load a triple store, rebuilding its derived indexes.
pub fn load_store(path: &Path) -> Result<TripleStore> {
    let mut store: TripleStore = load_json(path)?;
    store.rebuild_index();
    Ok(store)
}

/// Save a conceptualizer (taxonomy network plus its tuning).
pub fn save_taxonomy(conceptualizer: &Conceptualizer, path: &Path) -> Result<()> {
    save_json(conceptualizer, path)
}

/// Load a conceptualizer, rebuilding its derived indexes.
pub fn load_taxonomy(path: &Path) -> Result<Conceptualizer> {
    let mut conceptualizer: Conceptualizer = load_json(path)?;
    conceptualizer.rebuild_index();
    Ok(conceptualizer)
}

/// File name for the knowledge base inside an artifact directory.
pub const STORE_FILE: &str = "store.json";
/// File name for the taxonomy inside an artifact directory.
pub const TAXONOMY_FILE: &str = "taxonomy.json";
/// File name for the learned model inside an artifact directory.
pub const MODEL_FILE: &str = "model.json";
/// File name for the NER gazetteer inside an artifact directory (optional).
pub const NER_FILE: &str = "ner.json";
/// File name for the pattern index inside an artifact directory (optional).
pub const PATTERNS_FILE: &str = "patterns.json";

/// Everything a serving process needs to answer questions, as one bundle.
///
/// `store`, `conceptualizer` and `model` are mandatory; `ner` and
/// `pattern_index` are optional accelerations ([`ServingArtifacts::into_service`]
/// re-derives the NER from the store when absent, and simply serves without
/// decomposition when the pattern index is absent).
pub struct ServingArtifacts {
    /// The knowledge base.
    pub store: Arc<TripleStore>,
    /// The taxonomy.
    pub conceptualizer: Arc<Conceptualizer>,
    /// The learned model.
    pub model: Arc<LearnedModel>,
    /// The NER gazetteer, when persisted.
    pub ner: Option<Arc<GazetteerNer>>,
    /// The corpus pattern index, when persisted.
    pub pattern_index: Option<Arc<PatternIndex>>,
}

impl ServingArtifacts {
    /// Capture a service's current artifacts (the model as currently
    /// served — a concurrent swap after this call is not reflected).
    pub fn from_service(service: &KbqaService) -> Self {
        Self {
            store: service.store_shared(),
            conceptualizer: service.conceptualizer_shared(),
            model: service.model(),
            ner: Some(service.ner_shared()),
            pattern_index: service.pattern_index_shared(),
        }
    }

    /// Write every artifact into `dir` (created if missing): `store.json`,
    /// `taxonomy.json`, `model.json`, and — when present — `ner.json` and
    /// `patterns.json`.
    pub fn save(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        save_store(&self.store, &dir.join(STORE_FILE))?;
        save_taxonomy(&self.conceptualizer, &dir.join(TAXONOMY_FILE))?;
        save_model(&self.model, &dir.join(MODEL_FILE))?;
        if let Some(ner) = &self.ner {
            save_json(ner.as_ref(), &dir.join(NER_FILE))?;
        }
        if let Some(index) = &self.pattern_index {
            save_json(index.as_ref(), &dir.join(PATTERNS_FILE))?;
        }
        Ok(())
    }

    /// Load a bundle from `dir`, rebuilding every derived index. The NER and
    /// pattern-index files are optional; everything else must be present.
    pub fn load(dir: &Path) -> Result<Self> {
        let ner_path = dir.join(NER_FILE);
        let patterns_path = dir.join(PATTERNS_FILE);
        Ok(Self {
            store: Arc::new(load_store(&dir.join(STORE_FILE))?),
            conceptualizer: Arc::new(load_taxonomy(&dir.join(TAXONOMY_FILE))?),
            model: Arc::new(load_model(&dir.join(MODEL_FILE))?),
            ner: if ner_path.exists() {
                Some(Arc::new(load_json(&ner_path)?))
            } else {
                None
            },
            pattern_index: if patterns_path.exists() {
                Some(Arc::new(load_json(&patterns_path)?))
            } else {
                None
            },
        })
    }

    /// Does `dir` hold a loadable bundle (all three mandatory files)?
    pub fn present_in(dir: &Path) -> bool {
        [STORE_FILE, TAXONOMY_FILE, MODEL_FILE]
            .iter()
            .all(|f| dir.join(f).exists())
    }

    /// Build a ready-to-serve [`KbqaService`] from the bundle — the warm
    /// start path. Derives the NER from the store only when the bundle
    /// carries none.
    pub fn into_service(self) -> KbqaService {
        let mut builder = KbqaService::builder(self.store, self.conceptualizer, self.model);
        if let Some(ner) = self.ner {
            builder = builder.ner(ner);
        }
        if let Some(index) = self.pattern_index {
            builder = builder.pattern_index(index);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use kbqa_corpus::{CorpusConfig, QaCorpus, World, WorldConfig};
    use kbqa_nlp::GazetteerNer;

    use crate::learner::{Learner, LearnerConfig};
    use crate::template::Template;

    #[test]
    fn model_save_load_roundtrip() {
        let world = World::generate(WorldConfig::tiny(42));
        let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 400));
        let ner = GazetteerNer::from_store(&world.store);
        let learner = Learner::new(
            &world.store,
            &world.conceptualizer,
            &ner,
            &world.predicate_classes,
        );
        let pairs: Vec<(&str, &str)> = corpus
            .pairs
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str()))
            .collect();
        let (model, _) = learner.learn(&pairs, &LearnerConfig::default());

        let dir = std::env::temp_dir().join("kbqa-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save_model(&model, &path).unwrap();
        let restored = load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(model.templates.len(), restored.templates.len());
        assert_eq!(model.stats.observations, restored.stats.observations);
        assert_eq!(
            model.stats.distinct_templates,
            restored.stats.distinct_templates
        );
        assert_eq!(model.stats.em.iterations, restored.stats.em.iterations);
        // Derived indexes were rebuilt: template lookup works.
        let t = Template::from_canonical("when was $person born");
        assert_eq!(model.templates.get(&t), restored.templates.get(&t));
        // …including the precompiled question-form index the optimized
        // kernel uses, which is serde-skipped and rebuilt on load.
        if let Some(tid) = restored.templates.get(&t) {
            let q = kbqa_nlp::tokenize("when was Somebody born");
            let mut buf = String::new();
            let form = restored
                .templates
                .form_symbol(&q, 2, 3, &mut buf)
                .expect("form index rebuilt on load");
            let slot = restored
                .templates
                .slot_symbol("$person")
                .expect("slot index rebuilt on load");
            assert_eq!(restored.templates.template_for(form, slot), Some(tid));
        }
        // Loading minted a fresh catalog generation — caches layered on the
        // pre-save catalog can never be served against the restored one.
        assert_ne!(
            model.templates.generation(),
            restored.templates.generation()
        );
    }

    #[test]
    fn serving_artifacts_roundtrip_through_a_directory() {
        let world = World::generate(WorldConfig::tiny(43));
        let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 400));
        let ner = std::sync::Arc::new(GazetteerNer::from_store(&world.store));
        let learner = Learner::new(
            &world.store,
            &world.conceptualizer,
            &ner,
            &world.predicate_classes,
        );
        let pairs: Vec<(&str, &str)> = corpus
            .pairs
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str()))
            .collect();
        let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
        let index = crate::decompose::PatternIndex::build(
            corpus.pairs.iter().map(|p| p.question.as_str()),
            &ner,
        );
        let service = KbqaService::builder(
            std::sync::Arc::clone(&world.store),
            std::sync::Arc::clone(&world.conceptualizer),
            std::sync::Arc::new(model),
        )
        .ner(ner)
        .pattern_index(std::sync::Arc::new(index))
        .build();

        let dir = std::env::temp_dir().join(format!(
            "kbqa-persist-artifacts-test-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        assert!(!ServingArtifacts::present_in(&dir));
        ServingArtifacts::from_service(&service)
            .save(&dir)
            .expect("save bundle");
        assert!(ServingArtifacts::present_in(&dir));

        // Warm start: a service rebuilt purely from disk answers every
        // question byte-identically to the original (same model epoch 0, so
        // the full QaResponse including the stamp must match).
        let restored = ServingArtifacts::load(&dir)
            .expect("load bundle")
            .into_service();
        std::fs::remove_dir_all(&dir).ok();
        let questions = [
            "what is the population of nowhere",
            &corpus.pairs[0].question,
            &corpus.pairs[1].question,
        ];
        for q in questions {
            assert_eq!(
                serde_json::to_string(&service.answer_text(q)).unwrap(),
                serde_json::to_string(&restored.answer_text(q)).unwrap(),
                "warm-started service must answer {q:?} identically"
            );
        }
        assert!(
            restored.pattern_index().is_some(),
            "pattern index persisted"
        );
    }

    #[test]
    fn load_missing_file_errors() {
        let result = load_model(Path::new("/nonexistent/kbqa/model.json"));
        assert!(matches!(result, Err(KbqaError::Io(_))));
    }

    #[test]
    fn load_corrupt_file_errors() {
        let dir = std::env::temp_dir().join("kbqa-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, b"{ not json").unwrap();
        let result: Result<LearnedModel> = load_json(&path);
        std::fs::remove_file(&path).ok();
        assert!(matches!(result, Err(KbqaError::Io(_))));
    }
}
