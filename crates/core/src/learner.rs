//! The offline learning pipeline (paper Fig. 3, offline procedure).
//!
//! Wires the three offline stages in order:
//!
//! 1. **Predicate expansion** (Sec 6) from the entities that occur in corpus
//!    questions (the Sec 6.2 "reduction on s"),
//! 2. **Entity–value extraction** (Sec 4.1) over every QA pair,
//! 3. **EM estimation** of `P(p|t)` (Sec 4.2–4.3).
//!
//! The output [`LearnedModel`] is everything the online engine needs:
//! template catalog, predicate catalog, and θ.

use std::time::Instant;

use kbqa_common::hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

use kbqa_nlp::{tokenize, AnswerClass, GazetteerNer};
use kbqa_rdf::{ExpandedPredicate, NodeId, TripleStore};
use kbqa_taxonomy::Conceptualizer;

use crate::catalog::PredicateCatalog;
use crate::em::{self, EmConfig, EmStats, Theta};
use crate::expansion::{self, ExpansionConfig, ExpansionResult};
use crate::extraction::{ExtractionConfig, Extractor};
use crate::template::TemplateCatalog;

/// Configuration of the full offline pipeline.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LearnerConfig {
    /// Predicate expansion parameters (Sec 6).
    pub expansion: ExpansionConfig,
    /// Extraction parameters (Sec 4.1).
    pub extraction: ExtractionConfig,
    /// EM parameters (Sec 4.2–4.3).
    pub em: EmConfig,
}

/// Offline statistics, reported by the harness next to each experiment.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LearnStats {
    /// QA pairs consumed.
    pub pairs: usize,
    /// Question-entity source set size (expansion's "reduction on s").
    pub source_entities: usize,
    /// Emitted `(s, p⁺, o)` records per path length.
    pub emitted_by_length: Vec<usize>,
    /// Extracted observations (`m` in the paper).
    pub observations: usize,
    /// Distinct templates learned.
    pub distinct_templates: usize,
    /// Distinct predicates with probability mass.
    pub distinct_predicates: usize,
    /// EM diagnostics.
    pub em: EmStats,
    /// Wall-clock of the whole offline run, in milliseconds.
    pub offline_millis: u128,
}

/// The learned model: what the online procedure consults.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LearnedModel {
    /// Template catalog (canonical string ⇄ id).
    pub templates: TemplateCatalog,
    /// Predicate catalog (expanded-predicate path ⇄ id) — shared id space
    /// with the expansion that produced the observations.
    pub predicates: PredicateCatalog,
    /// `P(p|t)`.
    pub theta: Theta,
    /// Observation count per template (frequency; drives Table 13's
    /// "top templates" selection).
    pub template_support: Vec<u32>,
    /// Offline statistics.
    pub stats: LearnStats,
}

impl LearnedModel {
    /// Templates sorted by descending support, as `(id, support)`.
    pub fn templates_by_support(&self) -> Vec<(crate::template::TemplateId, u32)> {
        let mut v: Vec<(crate::template::TemplateId, u32)> = self
            .template_support
            .iter()
            .enumerate()
            .map(|(i, &s)| (crate::template::TemplateId::new(i as u32), s))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Rebuild derived lookup tables after deserialization.
    pub fn rebuild_index(&mut self) {
        self.templates.rebuild_index();
        self.predicates.rebuild_index();
    }

    /// A copy with θ rows of templates below `min_support` dropped.
    ///
    /// The paper's model keeps 27M templates; deployments prune the long
    /// tail (the Table 13 analysis already notes that single-occurrence
    /// templates "usually have very vague meanings"). Template ids stay
    /// stable — pruned rows become empty rather than re-numbered — so
    /// catalogs and provenance remain valid.
    pub fn pruned(&self, min_support: u32) -> LearnedModel {
        let mut model = self.clone();
        let keep: Vec<bool> = self
            .template_support
            .iter()
            .map(|&s| s >= min_support)
            .collect();
        model.theta = self
            .theta
            .retained(|t| keep.get(t.index()).copied().unwrap_or(false));
        model.stats.distinct_templates = model.theta.supported_templates();
        model.stats.distinct_predicates = model.theta.distinct_predicates();
        model
    }
}

/// The offline learner.
pub struct Learner<'a> {
    store: &'a TripleStore,
    conceptualizer: &'a Conceptualizer,
    ner: &'a GazetteerNer,
    predicate_classes: &'a FxHashMap<ExpandedPredicate, AnswerClass>,
}

impl<'a> Learner<'a> {
    /// Construct a learner over a knowledge base and its taxonomy.
    pub fn new(
        store: &'a TripleStore,
        conceptualizer: &'a Conceptualizer,
        ner: &'a GazetteerNer,
        predicate_classes: &'a FxHashMap<ExpandedPredicate, AnswerClass>,
    ) -> Self {
        Self {
            store,
            conceptualizer,
            ner,
            predicate_classes,
        }
    }

    /// Entities mentioned in corpus questions — the expansion source set.
    pub fn question_entities<'q>(
        &self,
        questions: impl IntoIterator<Item = &'q str>,
    ) -> FxHashSet<NodeId> {
        let mut sources: FxHashSet<NodeId> = FxHashSet::default();
        for q in questions {
            let tokens = tokenize(q);
            for mention in self.ner.find_all_mentions(&tokens) {
                sources.extend(mention.nodes.iter().copied());
            }
        }
        sources
    }

    /// Run the full offline pipeline over `(question, answer)` pairs.
    /// Returns the learned model and the expansion result (the latter feeds
    /// the Table 4/16 harnesses).
    pub fn learn(
        &self,
        pairs: &[(&str, &str)],
        config: &LearnerConfig,
    ) -> (LearnedModel, ExpansionResult) {
        let start = Instant::now();

        // 1. Expansion from question entities.
        let sources = self.question_entities(pairs.iter().map(|(q, _)| *q));
        let expansion = expansion::expand(self.store, &sources, &config.expansion);

        // 2. Extraction.
        let extractor = Extractor::new(
            self.store,
            self.conceptualizer,
            self.ner,
            &expansion,
            self.predicate_classes,
            config.extraction.clone(),
        );
        let mut templates = TemplateCatalog::new();
        let observations = extractor.extract_corpus(pairs.iter().copied(), &mut templates);

        // 3. EM.
        let (theta, em_stats) = em::estimate(&observations, templates.len(), &config.em);

        // Template support counts (observations mentioning the template).
        let mut template_support = vec![0u32; templates.len()];
        for obs in &observations {
            for &(t, _) in &obs.templates {
                template_support[t.index()] += 1;
            }
        }

        let stats = LearnStats {
            pairs: pairs.len(),
            source_entities: sources.len(),
            emitted_by_length: expansion.emitted_by_length.clone(),
            observations: observations.len(),
            distinct_templates: theta.supported_templates(),
            distinct_predicates: theta.distinct_predicates(),
            em: em_stats,
            offline_millis: start.elapsed().as_millis(),
        };
        let model = LearnedModel {
            templates,
            predicates: expansion.catalog.clone(),
            theta,
            template_support,
            stats,
        };
        (model, expansion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_corpus::{CorpusConfig, QaCorpus, World, WorldConfig};

    fn learn_tiny() -> (World, LearnedModel) {
        let world = World::generate(WorldConfig::tiny(42));
        let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 600));
        let ner = GazetteerNer::from_store(&world.store);
        let learner = Learner::new(
            &world.store,
            &world.conceptualizer,
            &ner,
            &world.predicate_classes,
        );
        let pairs: Vec<(&str, &str)> = corpus
            .pairs
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str()))
            .collect();
        let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
        (world, model)
    }

    #[test]
    fn pipeline_learns_templates_and_predicates() {
        let (_world, model) = learn_tiny();
        assert!(model.stats.observations > 100, "{:?}", model.stats);
        assert!(
            model.stats.distinct_templates > 30,
            "templates: {}",
            model.stats.distinct_templates
        );
        assert!(
            model.stats.distinct_predicates >= 10,
            "predicates: {}",
            model.stats.distinct_predicates
        );
        assert!(model.stats.em.iterations >= 1);
    }

    #[test]
    fn population_template_maps_to_population_predicate() {
        let (world, model) = learn_tiny();
        let template =
            crate::template::Template::from_canonical("how many people are there in $city");
        let tid = model
            .templates
            .get(&template)
            .expect("population template learned");
        let (top, prob) = model.theta.top_predicate(tid).expect("θ row exists");
        let path = model.predicates.resolve(top);
        assert_eq!(path.render(&world.store), "population", "θ={prob}");
        assert!(prob > 0.5, "P(population|t) = {prob}");
    }

    #[test]
    fn spouse_template_maps_to_marriage_path() {
        let (world, model) = learn_tiny();
        // Any of the spouse paraphrases may appear; check the most common.
        for canonical in [
            "who is $person married to",
            "who is the wife of $person",
            "who is $person 's wife",
        ] {
            let template = crate::template::Template::from_canonical(canonical);
            if let Some(tid) = model.templates.get(&template) {
                if let Some((top, _)) = model.theta.top_predicate(tid) {
                    let rendered = model.predicates.resolve(top).render(&world.store);
                    assert_eq!(rendered, "marriage→person→name", "template {canonical}");
                    return;
                }
            }
        }
        panic!("no spouse template was learned");
    }

    /// The learner's template catalog carries the precompiled question-form
    /// index the online engine depends on: every learned template must be
    /// reachable through `(form, slot)` lookup, not just by string.
    #[test]
    fn learned_catalog_serves_form_lookups() {
        let (_world, model) = learn_tiny();
        let template =
            crate::template::Template::from_canonical("how many people are there in $city");
        let tid = model.templates.get(&template).expect("template learned");
        let q = kbqa_nlp::tokenize("how many people are there in Honolulu");
        let mut buf = String::new();
        let form = model
            .templates
            .form_symbol(&q, 6, 7, &mut buf)
            .expect("question form indexed at learning time");
        let slot = model.templates.slot_symbol("$city").expect("slot indexed");
        assert_eq!(model.templates.template_for(form, slot), Some(tid));
    }

    #[test]
    fn templates_by_support_is_sorted() {
        let (_world, model) = learn_tiny();
        let ranked = model.templates_by_support();
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(ranked[0].1 > 0);
    }

    #[test]
    fn question_entities_ground_against_store() {
        let world = World::generate(WorldConfig::tiny(42));
        let ner = GazetteerNer::from_store(&world.store);
        let learner = Learner::new(
            &world.store,
            &world.conceptualizer,
            &ner,
            &world.predicate_classes,
        );
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world.subjects_of(pop)[0];
        let name = world.store.surface(city);
        let q = format!("what is the population of {name}");
        let sources = learner.question_entities([q.as_str()]);
        assert!(sources.contains(&city));
    }
}
