//! The serving API: owned, batch-first question answering.
//!
//! [`crate::engine::QaEngine`] is the *inference kernel*: it borrows the
//! store, taxonomy and model for a lifetime, which is the right shape for
//! the offline harness but the wrong shape for a server. This module wraps
//! the kernel in a [`KbqaService`] that **owns** its substrate behind
//! [`Arc`]s, so:
//!
//! * clones are cheap (reference-count bumps) and every clone can serve
//!   requests from its own thread — the service is `Send + Sync`;
//! * the NER gazetteer is derived from the store **once**, at build time,
//!   instead of once per engine construction;
//! * requests and responses are owned values ([`QaRequest`] /
//!   [`QaResponse`]) that can cross thread and queue boundaries.
//!
//! The paper's online procedure refuses (returns nothing) whenever any stage
//! of the Eq (7) enumeration comes up empty — the behaviour behind the
//! `#pro` column of the QALD tables. A production system must distinguish
//! *why* it refused; [`Refusal`] names the four causes, in pipeline order.
//!
//! [`KbqaService::answer_batch`] fans a slice of requests out across a
//! `std::thread` scoped pool. Requests are independent, so batching is
//! purely an amortization: one engine (and one NER borrow) per worker, and
//! responses come back in request order, byte-identical to sequential
//! single-request calls.
//!
//! # Live model swaps
//!
//! The paper's offline procedure takes 1438 minutes; a serving process must
//! be able to roll a freshly learned model in **without a restart**. The
//! service therefore keeps its model in a [`ModelHandle`] — a swappable
//! slot shared by every clone — and every swap bumps a monotonic **model
//! epoch**. Request handling goes through a [`ServiceSnapshot`]: one
//! consistent `(model, epoch)` pair captured at the start of the request, so
//! an answer computed while a swap lands is consistent with exactly one
//! model, never a mixture, and carries that model's epoch in
//! [`QaResponse::model_epoch`]. Caches key on
//! [`ServiceSnapshot::cache_key`], which prefixes the epoch — a swap
//! invalidates every stale entry by construction, with no stop-the-world
//! flush.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use kbqa_core::learner::{Learner, LearnerConfig};
//! use kbqa_core::service::{KbqaService, QaRequest};
//! use kbqa_corpus::{CorpusConfig, QaCorpus, World, WorldConfig};
//! use kbqa_nlp::GazetteerNer;
//!
//! // Offline: synthetic world + corpus, learn P(p|t) by EM.
//! let world = World::generate(WorldConfig::tiny(7));
//! let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 200));
//! let ner = Arc::new(GazetteerNer::from_store(&world.store));
//! let learner = Learner::new(
//!     &world.store,
//!     &world.conceptualizer,
//!     &ner,
//!     &world.predicate_classes,
//! );
//! let pairs: Vec<(&str, &str)> = corpus
//!     .pairs
//!     .iter()
//!     .map(|p| (p.question.as_str(), p.answer.as_str()))
//!     .collect();
//! let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
//!
//! // Online: an owned, thread-shareable service.
//! let service = KbqaService::builder(
//!     Arc::clone(&world.store),
//!     Arc::clone(&world.conceptualizer),
//!     Arc::new(model),
//! )
//! .ner(ner)
//! .build();
//! let response = service.answer(&QaRequest::new("what is the population of nowhere"));
//! assert_eq!(response.model_epoch, 0);
//!
//! // Hot swap: same service, new model, bumped epoch.
//! let epoch = service.swap_model(service.model());
//! assert_eq!(epoch, 1);
//! assert_eq!(service.answer_text("anything").model_epoch, 1);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use serde::{Deserialize, Serialize};

use kbqa_nlp::GazetteerNer;
use kbqa_obs::{Observability, StageBreakdown};
use kbqa_rdf::shard::ShardPlan;
use kbqa_rdf::TripleStore;
use kbqa_taxonomy::Conceptualizer;

use crate::decompose::{Decomposition, PatternIndex};
use crate::engine::{Answer, ChoiceStats, EngineConfig, QaEngine, ScratchSpace};
use crate::learner::LearnedModel;
use crate::shard::{ShardPanic, ShardRouter};

thread_local! {
    /// Per-thread engine scratch: a server worker (or batch worker) reuses
    /// one working set across every request it serves, which is what makes
    /// the kernel's steady state allocation-free. Scratch contents never
    /// leak across requests or model swaps (see [`ScratchSpace`]).
    static ENGINE_SCRATCH: std::cell::RefCell<ScratchSpace> =
        std::cell::RefCell::new(ScratchSpace::default());
}

/// Run `f` with this thread's reusable engine scratch.
fn with_engine_scratch<R>(f: impl FnOnce(&mut ScratchSpace) -> R) -> R {
    ENGINE_SCRATCH.with(|scratch| f(&mut scratch.borrow_mut()))
}

/// Stable worker-lane affinity for a batch request: a deterministic hash of
/// the raw question bytes, so repeated questions always land on the same
/// scatter-gather lane (warm per-lane value caches) without allocating.
fn question_affinity(request: &QaRequest) -> u64 {
    use std::hash::Hasher as _;
    let mut h = kbqa_common::hash::FxHasher::default();
    h.write(request.question.as_bytes());
    h.finish()
}

/// A hot-swappable model slot, shared by every clone of a [`KbqaService`].
///
/// Serving processes roll new models in without a restart: [`swap`] replaces
/// the current [`LearnedModel`] atomically (readers blocked only for the
/// duration of an `Arc` store) and bumps a monotonic **model epoch**. A
/// reader calls [`load`] and gets one consistent `(model, epoch)` pair —
/// never a new model with a stale epoch or vice versa — because both sides
/// agree on the same lock.
///
/// Epochs exist so that *derived state can be versioned*: an answer cache
/// that folds the epoch into its keys is invalidated by a swap without any
/// flush (stale entries simply stop being addressable and age out by LRU).
///
/// [`swap`]: ModelHandle::swap
/// [`load`]: ModelHandle::load
#[derive(Debug)]
pub struct ModelHandle {
    current: RwLock<Arc<LearnedModel>>,
    epoch: AtomicU64,
}

impl ModelHandle {
    /// A handle at epoch 0.
    pub fn new(model: Arc<LearnedModel>) -> Self {
        Self::with_epoch(model, 0)
    }

    /// A handle starting at a specific epoch (sibling services start past
    /// their parent's epoch so versioned cache keys never collide).
    pub fn with_epoch(model: Arc<LearnedModel>, epoch: u64) -> Self {
        Self {
            current: RwLock::new(model),
            epoch: AtomicU64::new(epoch),
        }
    }

    /// The current `(model, epoch)` pair, read consistently.
    ///
    /// Lock poisoning is tolerated: the slot only ever holds a fully-built
    /// `Arc`, so a panicking swapper cannot leave it half-written.
    pub fn load(&self) -> (Arc<LearnedModel>, u64) {
        let guard = self
            .current
            .read()
            .unwrap_or_else(|poison| poison.into_inner());
        // Epoch is read while holding the read lock, so it cannot interleave
        // with a swap (which writes both under the write lock).
        (Arc::clone(&guard), self.epoch.load(Ordering::Acquire))
    }

    /// The current epoch, without touching the model.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Replace the model and bump the epoch; returns the new epoch.
    ///
    /// In-flight requests that already took a [`ServiceSnapshot`] keep
    /// answering from the old model; requests snapshotted after `swap`
    /// returns see the new one. Nothing is ever served from a mixture.
    pub fn swap(&self, model: Arc<LearnedModel>) -> u64 {
        let mut guard = self
            .current
            .write()
            .unwrap_or_else(|poison| poison.into_inner());
        let old = std::mem::replace(&mut *guard, model);
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        drop(guard);
        // If no snapshot still holds the old model, this drop deallocates a
        // potentially huge artifact — do it outside the lock so readers are
        // blocked only for the Arc store above, never for the teardown.
        drop(old);
        epoch
    }
}

/// Why the system returned no answer (the paper's `#pro` refusal behaviour,
/// made inspectable). Variants are ordered by pipeline stage: each one means
/// every earlier stage succeeded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Refusal {
    /// No token window of the question grounded to a KB entity
    /// (`P(e|q)` has no support).
    NoEntityGrounded,
    /// Entities grounded, but no derived template exists in the learned
    /// catalog (`P(t|e,q)` has no support — the strict template matching
    /// the paper credits for KBQA's precision).
    NoTemplateMatched,
    /// Templates matched, but every `P(p|t)` entry fell below the engine's
    /// `min_theta` precision guard.
    NoPredicateAboveTheta,
    /// Confident predicates existed, but the KB holds no value for any
    /// grounded `(entity, predicate)` pair (`P(v|e,p)` has no support).
    EmptyValueSet,
    /// A shard this question's lookups route to is unavailable (poisoned or
    /// panicked mid-query); the router isolated the failure and degraded
    /// this question instead of taking the service down. Unlike the other
    /// causes this is *operational*, not semantic — retrying after the
    /// shard heals may answer.
    ShardUnavailable,
}

impl std::fmt::Display for Refusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            Refusal::NoEntityGrounded => "no entity grounded",
            Refusal::NoTemplateMatched => "no template matched",
            Refusal::NoPredicateAboveTheta => "no predicate above θ",
            Refusal::EmptyValueSet => "empty value set",
            Refusal::ShardUnavailable => "shard unavailable",
        };
        f.write_str(text)
    }
}

/// An owned question plus per-request overrides of the engine defaults.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QaRequest {
    /// The natural-language question.
    pub question: String,
    /// Override of [`EngineConfig::top_k`] for this request.
    #[serde(default)]
    pub top_k: Option<usize>,
    /// Override of [`EngineConfig::min_theta`] for this request.
    #[serde(default)]
    pub min_theta: Option<f64>,
    /// Override of [`EngineConfig::decompose`] for this request.
    #[serde(default)]
    pub decompose: Option<bool>,
    /// Attach per-question [`ChoiceStats`] to the response (paper Table 6).
    /// When the service has an [`Observability`] sink installed, `explain`
    /// also forces a stage trace and attaches [`QaResponse::stage_us`].
    #[serde(default)]
    pub explain: bool,
    /// Caller-assigned request ID for cross-log correlation. The server
    /// assigns one when absent. **Not** part of the cache key — two
    /// requests differing only by ID are the same question.
    #[serde(default)]
    pub request_id: Option<u64>,
    /// Minimum model epoch the caller will accept. The server rejects the
    /// request with HTTP 409 when the serving epoch is below this — the
    /// read-your-reloads guard for clients that just observed a
    /// `/admin/reload`. **Not** part of the cache key: a request that
    /// passes the gate is answered identically to one without the pin
    /// (the epoch already prefixes every cache key).
    #[serde(default)]
    pub min_epoch: Option<u64>,
}

impl QaRequest {
    /// A request with engine-default behaviour.
    pub fn new(question: impl Into<String>) -> Self {
        Self {
            question: question.into(),
            top_k: None,
            min_theta: None,
            decompose: None,
            explain: false,
            request_id: None,
            min_epoch: None,
        }
    }

    /// Request at most `k` ranked answers.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Override the `P(p|t)` precision guard.
    pub fn with_min_theta(mut self, theta: f64) -> Self {
        self.min_theta = Some(theta);
        self
    }

    /// Enable or disable complex-question decomposition.
    pub fn with_decompose(mut self, decompose: bool) -> Self {
        self.decompose = Some(decompose);
        self
    }

    /// Attach uncertainty statistics to the response.
    pub fn with_explain(mut self, explain: bool) -> Self {
        self.explain = explain;
        self
    }

    /// Tag the request with a correlation ID (see [`QaRequest::request_id`]).
    pub fn with_request_id(mut self, id: u64) -> Self {
        self.request_id = Some(id);
        self
    }

    /// Refuse to be answered below model epoch `epoch` (see
    /// [`QaRequest::min_epoch`]).
    pub fn with_min_epoch(mut self, epoch: u64) -> Self {
        self.min_epoch = Some(epoch);
        self
    }

    /// The engine configuration this request runs under.
    pub fn effective_config(&self, base: &EngineConfig) -> EngineConfig {
        EngineConfig {
            top_k: self.top_k.unwrap_or(base.top_k),
            min_theta: self.min_theta.unwrap_or(base.min_theta),
            decompose: self.decompose.unwrap_or(base.decompose),
            ..base.clone()
        }
    }

    /// The question with whitespace collapsed and case folded.
    ///
    /// This is the equivalence the NLP front-end already applies: `tokenize`
    /// lowercases every token and only ever sees alphanumeric runs, so two
    /// questions with the same normalized form take the identical path
    /// through the engine. Punctuation is preserved (conservative: `a.b`
    /// and `a b` tokenize identically but key separately), with one
    /// exception — U+001F, the cache-key field separator, is folded into
    /// whitespace. To the tokenizer it is a token boundary exactly like a
    /// space, so the fold cannot merge observably-different questions, and
    /// it guarantees the separator never survives into the normalized text.
    pub fn normalized_question(&self) -> String {
        let mut out = String::with_capacity(self.question.len());
        let words = self
            .question
            .split(|c: char| c.is_whitespace() || c == '\u{1f}')
            .filter(|w| !w.is_empty());
        for word in words {
            if !out.is_empty() {
                out.push(' ');
            }
            for c in word.chars() {
                out.extend(c.to_lowercase());
            }
        }
        out
    }

    /// A stable cache key: the normalized question plus every engine knob
    /// that can change the response, resolved against `base`.
    ///
    /// Two requests share a key **iff** [`KbqaService::answer`] is
    /// guaranteed to produce equal responses for them: overrides are folded
    /// into the effective config first, so an explicit override equal to the
    /// service default keys identically to no override at all. Fields are
    /// joined with `\u{1f}` (ASCII unit separator), which
    /// [`QaRequest::normalized_question`] strips from the question — so no
    /// question can collide with a config suffix, provided (invariant!) no
    /// config field below ever renders a `\u{1f}` of its own. Floats render
    /// via `{:?}` — shortest round-trippable form, stable across runs.
    ///
    /// [`QaRequest::request_id`] is deliberately **excluded**: it names the
    /// request, not the question, and must never fragment the cache.
    pub fn cache_key(&self, base: &EngineConfig) -> String {
        let cfg = self.effective_config(base);
        format!(
            "{}\u{1f}{}\u{1f}{:?}\u{1f}{}\u{1f}{}\u{1f}{}\u{1f}{}\u{1f}{}",
            self.normalized_question(),
            cfg.top_k,
            cfg.min_theta,
            cfg.max_concepts,
            cfg.decompose,
            cfg.chain_width,
            cfg.floor_prune,
            self.explain,
        )
    }
}

impl From<&str> for QaRequest {
    fn from(question: &str) -> Self {
        Self::new(question)
    }
}

/// The outcome of one request: ranked answers with provenance, or a typed
/// refusal; optionally the Table 6 uncertainty profile.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QaResponse {
    /// Ranked answers, best first. Empty iff `refusal` is set.
    pub answers: Vec<Answer>,
    /// Why the system refused, when it did.
    pub refusal: Option<Refusal>,
    /// Per-question choice statistics (when the request set `explain`).
    pub stats: Option<ChoiceStats>,
    /// The [`ModelHandle`] epoch of the model that produced this response.
    /// Stamped by [`KbqaService`]; stays 0 for systems without a swappable
    /// model (baselines, hand-built responses).
    #[serde(default)]
    pub model_epoch: u64,
    /// Per-stage engine timings, attached when the request set `explain`
    /// **and** the service had an [`Observability`] sink installed (engines
    /// driven without one never time stages). A cached response replays the
    /// timings of the run that computed it, consistent with the cache's
    /// byte-identical-replay contract.
    #[serde(default)]
    pub stage_us: Option<StageBreakdown>,
}

impl QaResponse {
    /// A successful response. An empty answer list is recorded as an
    /// [`Refusal::EmptyValueSet`] refusal rather than a silent empty vec.
    pub fn from_answers(answers: Vec<Answer>) -> Self {
        if answers.is_empty() {
            return Self::refused(Refusal::EmptyValueSet);
        }
        Self {
            answers,
            refusal: None,
            stats: None,
            model_epoch: 0,
            stage_us: None,
        }
    }

    /// A refusal.
    pub fn refused(reason: Refusal) -> Self {
        Self {
            answers: Vec::new(),
            refusal: Some(reason),
            stats: None,
            model_epoch: 0,
            stage_us: None,
        }
    }

    /// Did the system produce at least one answer?
    pub fn answered(&self) -> bool {
        !self.answers.is_empty()
    }

    /// The top-ranked answer value.
    pub fn top(&self) -> Option<&str> {
        self.answers.first().map(|a| a.value.as_str())
    }

    /// All answer values in rank order.
    pub fn value_strings(&self) -> Vec<&str> {
        self.answers.iter().map(|a| a.value.as_str()).collect()
    }
}

/// The interface shared by KBQA and every baseline system: answer a typed
/// request with a typed response. Refusal is an explicit outcome, not an
/// empty collection.
pub trait QaSystem {
    /// Short display name for result tables.
    fn name(&self) -> &str;

    /// Answer or refuse.
    fn answer(&self, request: &QaRequest) -> QaResponse;

    /// Convenience: answer a bare question string with default options.
    fn answer_text(&self, question: &str) -> QaResponse {
        self.answer(&QaRequest::new(question))
    }
}

/// Builder for [`KbqaService`].
pub struct KbqaServiceBuilder {
    store: Arc<TripleStore>,
    conceptualizer: Arc<Conceptualizer>,
    model: Arc<LearnedModel>,
    ner: Option<Arc<GazetteerNer>>,
    pattern_index: Option<Arc<PatternIndex>>,
    config: EngineConfig,
    obs: Option<Arc<Observability>>,
    shard_plan: Option<ShardPlan>,
    shard_router: Option<Arc<ShardRouter>>,
    model_epoch: u64,
}

impl KbqaServiceBuilder {
    /// Start the [`ModelHandle`] at a specific epoch instead of 0. A
    /// full-bundle hot swap builds its replacement service at
    /// `old_epoch + 1` so versioned cache keys from the previous bundle can
    /// never collide with the new one.
    pub fn model_epoch(mut self, epoch: u64) -> Self {
        self.model_epoch = epoch;
        self
    }

    /// Use a pre-built NER instead of deriving one from the store.
    pub fn ner(mut self, ner: Arc<GazetteerNer>) -> Self {
        self.ner = Some(ner);
        self
    }

    /// Attach a corpus pattern index, enabling complex-question
    /// decomposition (paper Sec 5).
    pub fn pattern_index(mut self, index: Arc<PatternIndex>) -> Self {
        self.pattern_index = Some(index);
        self
    }

    /// Default engine configuration (overridable per request).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Install an observability sink: per-stage latency recording for
    /// sampled requests and stage timings on `explain` responses. Without
    /// one the engine's stage tracer stays disarmed (a predicted branch per
    /// stage boundary — the kernel path is unaffected).
    pub fn observability(mut self, obs: Arc<Observability>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Shard the service per `plan`: the store is partitioned at build
    /// time and requests route value lookups through a
    /// [`ShardRouter`]. A 1-shard plan builds the degenerate router (the
    /// plain single-store path, with shard telemetry attached).
    pub fn shards(mut self, plan: ShardPlan) -> Self {
        self.shard_plan = Some(plan);
        self
    }

    /// Use a pre-built shard router (the persist warm-start path: per-shard
    /// snapshots map straight in, no re-partitioning). Takes precedence
    /// over [`KbqaServiceBuilder::shards`].
    pub fn shard_router(mut self, router: Arc<ShardRouter>) -> Self {
        self.shard_router = Some(router);
        self
    }

    /// Build the service. Derives the NER gazetteer from the store if none
    /// was supplied — this is the one expensive step, paid once — and
    /// partitions the store if a shard plan was requested.
    pub fn build(self) -> KbqaService {
        let ner = self
            .ner
            .unwrap_or_else(|| Arc::new(GazetteerNer::from_store(&self.store)));
        let shards = self.shard_router.or_else(|| {
            self.shard_plan
                .map(|plan| Arc::new(ShardRouter::from_store(&self.store, plan)))
        });
        KbqaService {
            store: self.store,
            conceptualizer: self.conceptualizer,
            model: Arc::new(ModelHandle::with_epoch(self.model, self.model_epoch)),
            ner,
            pattern_index: self.pattern_index,
            config: self.config,
            obs: self.obs,
            shards,
        }
    }
}

/// One consistent view of the service, captured at the start of a request:
/// the substrate `Arc`s plus a single `(model, epoch)` pair from the
/// [`ModelHandle`].
///
/// Everything computed through one snapshot — the answer, its
/// [`QaResponse::model_epoch`] stamp, and its [`cache_key`] — belongs to
/// exactly one model epoch, even if [`KbqaService::swap_model`] lands midway.
/// Snapshots are cheap (five `Arc` clones and a config copy) and are taken
/// once per request or once per batch.
///
/// [`cache_key`]: ServiceSnapshot::cache_key
pub struct ServiceSnapshot {
    store: Arc<TripleStore>,
    conceptualizer: Arc<Conceptualizer>,
    model: Arc<LearnedModel>,
    model_epoch: u64,
    ner: Arc<GazetteerNer>,
    pattern_index: Option<Arc<PatternIndex>>,
    config: EngineConfig,
    obs: Option<Arc<Observability>>,
    shards: Option<Arc<ShardRouter>>,
}

impl ServiceSnapshot {
    /// The model epoch this snapshot answers under.
    pub fn model_epoch(&self) -> u64 {
        self.model_epoch
    }

    /// The snapshotted model.
    pub fn model(&self) -> &Arc<LearnedModel> {
        &self.model
    }

    /// The default engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The borrowed inference kernel over this snapshot's artifacts.
    /// Construction is free: every component is already built.
    pub fn engine(&self) -> QaEngine<'_> {
        let mut engine =
            QaEngine::with_shared(&self.store, &self.conceptualizer, &self.model, &self.ner)
                .with_config(self.config.clone());
        if let Some(index) = self.pattern_index.as_deref() {
            engine = engine.with_pattern_index_ref(index);
        }
        if let Some(router) = self.router() {
            engine = engine
                .with_shards(router)
                .with_shard_epoch(self.model_epoch);
        }
        engine
    }

    /// The non-degenerate shard router, when this snapshot serves sharded.
    fn router(&self) -> Option<&ShardRouter> {
        self.shards.as_deref().filter(|r| !r.is_degenerate())
    }

    /// The versioned cache key for `request`: the snapshot's model epoch
    /// prefixed onto [`QaRequest::cache_key`].
    ///
    /// Two requests share a key **iff** they are guaranteed equal responses:
    /// same normalized question, same effective config, same model epoch.
    /// A model swap therefore invalidates every cached answer without a
    /// flush — old-epoch keys are simply never looked up again. The `\u{1f}`
    /// separator cannot appear in the normalized question, so the epoch
    /// prefix is unambiguous.
    pub fn cache_key(&self, request: &QaRequest) -> String {
        format!(
            "{}\u{1f}{}",
            self.model_epoch,
            request.cache_key(&self.config)
        )
    }

    /// Answer one request under this snapshot's model, stamping the epoch.
    /// Runs on the calling thread's reusable [`ScratchSpace`].
    pub fn answer(&self, request: &QaRequest) -> QaResponse {
        self.answer_traced(request).0
    }

    /// [`ServiceSnapshot::answer`], additionally returning the per-stage
    /// breakdown when this request was traced (an [`Observability`] sink is
    /// installed and the request was sampled or asked to `explain`).
    ///
    /// The breakdown is returned even when `explain` is off — callers such
    /// as a slow-query log want stage attribution without inflating the
    /// cacheable response body.
    pub fn answer_traced(&self, request: &QaRequest) -> (QaResponse, Option<StageBreakdown>) {
        with_engine_scratch(|scratch| {
            let engine = self.engine();
            self.answer_with(&engine, request, scratch)
        })
    }

    /// Answer a batch of requests under this snapshot's model, fanning out
    /// across a scoped thread pool.
    ///
    /// Responses are returned in request order and are identical to what
    /// sequential [`ServiceSnapshot::answer`] calls would produce: requests
    /// are independent, so the pool only amortizes engine setup and buys
    /// wall-clock parallelism. The whole batch answers under one model
    /// epoch.
    pub fn answer_batch(&self, requests: &[QaRequest]) -> Vec<QaResponse> {
        if requests.len() > 1 {
            if let Some(router) = self.router() {
                return self.answer_batch_sharded(router, requests);
            }
        }
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(requests.len())
            .min(16);
        if workers <= 1 {
            // One engine and one scratch for the whole batch.
            return with_engine_scratch(|scratch| {
                let engine = self.engine();
                requests
                    .iter()
                    .map(|r| self.stamp(&engine, r, scratch))
                    .collect()
            });
        }
        let chunk_size = requests.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = requests
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        // Per-worker scratch, reused across the whole chunk.
                        with_engine_scratch(|scratch| {
                            let engine = self.engine();
                            chunk
                                .iter()
                                .map(|r| self.stamp(&engine, r, scratch))
                                .collect::<Vec<_>>()
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch worker panicked"))
                .collect()
        })
    }

    fn stamp(
        &self,
        engine: &QaEngine<'_>,
        request: &QaRequest,
        scratch: &mut ScratchSpace,
    ) -> QaResponse {
        self.answer_with(engine, request, scratch).0
    }

    /// The scatter-gather batch path: one worker (thread + engine +
    /// scratch) per shard, questions assigned to workers by stable
    /// question hash so repeated questions keep lane affinity, per-shard
    /// queue depths surfaced on the router's telemetry lanes. Responses
    /// come back in request order; the whole batch answers under this one
    /// snapshot, so no batch ever straddles mixed model epochs.
    fn answer_batch_sharded(
        &self,
        router: &ShardRouter,
        requests: &[QaRequest],
    ) -> Vec<QaResponse> {
        let workers = router.shard_count().min(requests.len()).min(16);
        let mut assign: Vec<Vec<u32>> = vec![Vec::new(); workers];
        for (i, request) in requests.iter().enumerate() {
            let lane = (question_affinity(request) % workers as u64) as usize;
            assign[lane].push(i as u32);
        }
        for (lane, idxs) in assign.iter().enumerate() {
            router.obs().lane(lane).enqueue(idxs.len() as u64);
        }
        let mut out: Vec<Option<QaResponse>> = Vec::with_capacity(requests.len());
        out.resize_with(requests.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = assign
                .iter()
                .enumerate()
                .filter(|(_, idxs)| !idxs.is_empty())
                .map(|(lane, idxs)| {
                    scope.spawn(move || {
                        with_engine_scratch(|scratch| {
                            let engine = self.engine();
                            idxs.iter()
                                .map(|&i| {
                                    let resp = self.stamp(&engine, &requests[i as usize], scratch);
                                    router.obs().lane(lane).dequeue(1);
                                    (i, resp)
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                })
                .collect();
            for handle in handles {
                for (i, resp) in handle.join().expect("shard batch worker panicked") {
                    out[i as usize] = Some(resp);
                }
            }
        });
        out.into_iter()
            .map(|r| r.expect("every request index answered"))
            .collect()
    }

    /// The one place a request actually runs: arm the scratch tracer when
    /// this request should be traced, answer, then drain stage timings into
    /// the sink's histograms. Stage timings attach to the response only for
    /// `explain` requests, so responses stay byte-identical across sampled
    /// and unsampled runs of the same question (the cache contract).
    fn answer_with(
        &self,
        engine: &QaEngine<'_>,
        request: &QaRequest,
        scratch: &mut ScratchSpace,
    ) -> (QaResponse, Option<StageBreakdown>) {
        let trace_this = match &self.obs {
            Some(obs) => request.explain || obs.should_trace(),
            None => false,
        };
        scratch.trace.begin(trace_this);
        let mut response = match self.router() {
            None => engine.answer_request_with(request, scratch),
            Some(router) => self.answer_sharded(router, engine, request, scratch),
        };
        let breakdown = self
            .obs
            .as_ref()
            .and_then(|obs| scratch.trace.finish(obs.stats()));
        if let (Some(router), Some(bd)) = (self.router(), breakdown.as_ref()) {
            // Per-shard stage histograms: the whole-question breakdown is
            // attributed to the primary shard (the first one a lookup
            // routed to).
            if scratch.shard_primary != u32::MAX {
                router
                    .obs()
                    .lane(scratch.shard_primary as usize)
                    .record_breakdown(bd);
            }
        }
        if request.explain {
            response.stage_us = breakdown;
        }
        response.model_epoch = self.model_epoch;
        (response, breakdown)
    }

    /// Run one request through the shard router with fault isolation: a
    /// shard panicking mid-query ([`crate::shard::ShardPanic`]) degrades
    /// *this question* to a typed [`Refusal::ShardUnavailable`] — the
    /// service stays up, the failure is counted on the shard's lane, and
    /// any other panic keeps unwinding (shard isolation is not a license to
    /// swallow engine bugs).
    fn answer_sharded(
        &self,
        router: &ShardRouter,
        engine: &QaEngine<'_>,
        request: &QaRequest,
        scratch: &mut ScratchSpace,
    ) -> QaResponse {
        scratch.shard_mask = 0;
        scratch.shard_primary = u32::MAX;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.answer_request_with(request, scratch)
        }));
        match result {
            Ok(response) => {
                let obs = router.obs();
                obs.record_fanout(scratch.shard_mask.count_ones() as usize);
                if scratch.shard_primary != u32::MAX {
                    obs.lane(scratch.shard_primary as usize).record_query();
                }
                response
            }
            Err(payload) => {
                let Some(&ShardPanic(shard)) = payload.downcast_ref::<ShardPanic>() else {
                    std::panic::resume_unwind(payload);
                };
                // Drop any half-recorded stage timings from the unwound
                // request; the scratch clears the rest of its state at next
                // use by construction.
                let _ = scratch.trace.take();
                router.obs().lane(shard).record_failure();
                QaResponse::refused(Refusal::ShardUnavailable)
            }
        }
    }
}

/// An owned, thread-shareable KBQA server: the online procedure (paper
/// Sec 3.3) behind a request/response API.
///
/// Cloning is cheap (`Arc` bumps); a clone can be handed to another thread
/// and both serve concurrently. See the module docs for the design.
#[derive(Clone)]
pub struct KbqaService {
    store: Arc<TripleStore>,
    conceptualizer: Arc<Conceptualizer>,
    /// Shared by every clone: a swap through any clone is seen by all.
    model: Arc<ModelHandle>,
    ner: Arc<GazetteerNer>,
    pattern_index: Option<Arc<PatternIndex>>,
    config: EngineConfig,
    obs: Option<Arc<Observability>>,
    shards: Option<Arc<ShardRouter>>,
}

impl KbqaService {
    /// Start building a service over shared substrate artifacts.
    pub fn builder(
        store: Arc<TripleStore>,
        conceptualizer: Arc<Conceptualizer>,
        model: Arc<LearnedModel>,
    ) -> KbqaServiceBuilder {
        KbqaServiceBuilder {
            store,
            conceptualizer,
            model,
            ner: None,
            pattern_index: None,
            config: EngineConfig::default(),
            obs: None,
            shard_plan: None,
            shard_router: None,
            model_epoch: 0,
        }
    }

    /// A service with default configuration and a store-derived NER.
    pub fn new(
        store: Arc<TripleStore>,
        conceptualizer: Arc<Conceptualizer>,
        model: Arc<LearnedModel>,
    ) -> Self {
        Self::builder(store, conceptualizer, model).build()
    }

    /// A sharded service: the store is partitioned per `plan` at build time
    /// and every request's value lookups scatter-gather through the
    /// resulting [`ShardRouter`]. Answers are byte-identical to
    /// [`KbqaService::new`] — sharding changes *where* lookups read, never
    /// what the kernel computes (`tests/shard_equivalence.rs` pins this).
    pub fn sharded(
        plan: ShardPlan,
        store: Arc<TripleStore>,
        conceptualizer: Arc<Conceptualizer>,
        model: Arc<LearnedModel>,
    ) -> Self {
        Self::builder(store, conceptualizer, model)
            .shards(plan)
            .build()
    }

    /// A sibling service re-sharded per `plan` over the same substrate
    /// (store, taxonomy, NER, pattern index, shared [`ModelHandle`]).
    /// Re-partitions the current store; the original keeps its own router.
    pub fn with_shards(&self, plan: ShardPlan) -> Self {
        Self {
            shards: Some(Arc::new(ShardRouter::from_store(&self.store, plan))),
            ..self.clone()
        }
    }

    /// A sibling service scatter-gathering through `router` — how the
    /// server attaches the remote (multi-process worker) router built by
    /// its supervisor over the same substrate. Shares the [`ModelHandle`]
    /// with `self`.
    pub fn with_shard_router(&self, router: Arc<ShardRouter>) -> Self {
        Self {
            shards: Some(router),
            ..self.clone()
        }
    }

    /// The shard router, when this service was built sharded (includes the
    /// degenerate 1-shard router, which carries telemetry but no stores).
    pub fn shard_router(&self) -> Option<&Arc<ShardRouter>> {
        self.shards.as_ref()
    }

    /// Replace the default engine configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Install an observability sink after construction (see
    /// [`KbqaServiceBuilder::observability`]). Only clones and snapshots
    /// taken from the returned service trace through it.
    pub fn with_observability(mut self, obs: Arc<Observability>) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The installed observability sink, if any.
    pub fn observability(&self) -> Option<&Arc<Observability>> {
        self.obs.as_ref()
    }

    /// A sibling service serving a different model over the same store,
    /// taxonomy, NER and pattern index — ablations and A/B model rollouts
    /// without re-deriving any shared artifact.
    ///
    /// The sibling gets its **own** [`ModelHandle`] (swaps on it do not
    /// affect this service), starting one epoch past this service's so the
    /// two don't collide on versioned cache keys *at fork time*. The epoch
    /// lines diverge independently after that, so parent and sibling must
    /// not share one answer cache once either swaps.
    pub fn with_model(&self, model: Arc<LearnedModel>) -> Self {
        Self {
            model: Arc::new(ModelHandle::with_epoch(model, self.model_epoch() + 1)),
            ..self.clone()
        }
    }

    /// Replace the served model in place, across **every** clone of this
    /// service (they share one [`ModelHandle`]); returns the new model
    /// epoch.
    ///
    /// In-flight requests finish under the model they snapshotted; requests
    /// arriving after the swap answer under the new one. No restart, no
    /// stop-the-world: callers keying caches through
    /// [`ServiceSnapshot::cache_key`] see every pre-swap entry invalidated
    /// by the epoch bump alone.
    pub fn swap_model(&self, model: Arc<LearnedModel>) -> u64 {
        self.model.swap(model)
    }

    /// The current model epoch (bumped by every [`KbqaService::swap_model`]).
    pub fn model_epoch(&self) -> u64 {
        self.model.epoch()
    }

    /// The knowledge base.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// The knowledge base, shared.
    pub fn store_shared(&self) -> Arc<TripleStore> {
        Arc::clone(&self.store)
    }

    /// The taxonomy.
    pub fn conceptualizer(&self) -> &Conceptualizer {
        &self.conceptualizer
    }

    /// The taxonomy, shared.
    pub fn conceptualizer_shared(&self) -> Arc<Conceptualizer> {
        Arc::clone(&self.conceptualizer)
    }

    /// The currently served model (a consistent snapshot; a concurrent swap
    /// does not mutate what this returns).
    pub fn model(&self) -> Arc<LearnedModel> {
        self.model.load().0
    }

    /// The swappable model slot itself.
    pub fn model_handle(&self) -> &ModelHandle {
        &self.model
    }

    /// The NER gazetteer.
    pub fn ner(&self) -> &GazetteerNer {
        &self.ner
    }

    /// The NER gazetteer, shared.
    pub fn ner_shared(&self) -> Arc<GazetteerNer> {
        Arc::clone(&self.ner)
    }

    /// The pattern index, when attached.
    pub fn pattern_index(&self) -> Option<&PatternIndex> {
        self.pattern_index.as_deref()
    }

    /// The pattern index, shared, when attached.
    pub fn pattern_index_shared(&self) -> Option<Arc<PatternIndex>> {
        self.pattern_index.as_ref().map(Arc::clone)
    }

    /// The default engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Capture one consistent view of the service — substrate plus a single
    /// `(model, epoch)` pair — for request handling that must not straddle a
    /// [`KbqaService::swap_model`].
    pub fn snapshot(&self) -> ServiceSnapshot {
        let (model, model_epoch) = self.model.load();
        ServiceSnapshot {
            store: Arc::clone(&self.store),
            conceptualizer: Arc::clone(&self.conceptualizer),
            model,
            model_epoch,
            ner: Arc::clone(&self.ner),
            pattern_index: self.pattern_index.as_ref().map(Arc::clone),
            config: self.config.clone(),
            obs: self.obs.as_ref().map(Arc::clone),
            shards: self.shards.as_ref().map(Arc::clone),
        }
    }

    /// Answer one request.
    pub fn answer(&self, request: &QaRequest) -> QaResponse {
        self.snapshot().answer(request)
    }

    /// Answer one request, additionally returning the per-stage breakdown
    /// when the request was traced (see [`ServiceSnapshot::answer_traced`]).
    pub fn answer_traced(&self, request: &QaRequest) -> (QaResponse, Option<StageBreakdown>) {
        self.snapshot().answer_traced(request)
    }

    /// Answer a bare question with default options.
    pub fn answer_text(&self, question: &str) -> QaResponse {
        self.answer(&QaRequest::new(question))
    }

    /// Answer a batch of requests, fanning out across a scoped thread pool.
    ///
    /// Responses are returned in request order and are identical to what
    /// sequential [`KbqaService::answer`] calls would produce: requests are
    /// independent, so the pool only amortizes engine setup and buys
    /// wall-clock parallelism. The whole batch answers under a single model
    /// epoch (one [`ServiceSnapshot`]).
    pub fn answer_batch(&self, requests: &[QaRequest]) -> Vec<QaResponse> {
        self.snapshot().answer_batch(requests)
    }

    /// Table 6 statistics for one question.
    pub fn question_statistics(&self, question: &str) -> ChoiceStats {
        self.snapshot().engine().question_statistics(question)
    }

    /// Run the Sec 5 decomposition DP on a question (requires a pattern
    /// index). Exposed for tooling; [`KbqaService::answer`] applies it
    /// automatically as a fallback.
    pub fn decompose(&self, question: &str) -> Option<Decomposition> {
        let snapshot = self.snapshot();
        let index = snapshot.pattern_index.as_deref()?;
        crate::decompose::decompose(&snapshot.engine(), index, question)
    }

    /// Execute a decomposition, returning ranked chained answers.
    pub fn execute_decomposition(&self, decomposition: &Decomposition) -> Option<Vec<Answer>> {
        let snapshot = self.snapshot();
        crate::decompose::execute(&snapshot.engine(), decomposition)
    }
}

impl QaSystem for KbqaService {
    fn name(&self) -> &str {
        "KBQA"
    }

    fn answer(&self, request: &QaRequest) -> QaResponse {
        KbqaService::answer(self, request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `KbqaService` must stay thread-shareable: this is a compile-time
    // assertion, not a runtime check.
    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KbqaService>();
        assert_send_sync::<QaRequest>();
        assert_send_sync::<QaResponse>();
        assert_send_sync::<ModelHandle>();
        assert_send_sync::<ServiceSnapshot>();
    }

    #[test]
    fn model_handle_swap_bumps_a_monotonic_epoch() {
        let handle = ModelHandle::new(Arc::new(LearnedModel::default()));
        assert_eq!(handle.epoch(), 0);
        let (first, epoch) = handle.load();
        assert_eq!(epoch, 0);
        let replacement = Arc::new(LearnedModel::default());
        assert_eq!(handle.swap(Arc::clone(&replacement)), 1);
        assert_eq!(handle.epoch(), 1);
        let (second, epoch) = handle.load();
        assert_eq!(epoch, 1);
        assert!(Arc::ptr_eq(&second, &replacement));
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(handle.swap(first), 2);
    }

    #[test]
    fn model_handle_load_is_consistent_under_concurrent_swaps() {
        // Swappers install models tagged by observation count parity; every
        // load must see a (model, epoch) pair whose tag matches the epoch's
        // parity — a torn read would mismatch.
        let tagged = |tag: u64| {
            let mut model = LearnedModel::default();
            model.stats.observations = tag as usize;
            Arc::new(model)
        };
        let handle = ModelHandle::new(tagged(0));
        std::thread::scope(|scope| {
            let swapper = scope.spawn(|| {
                for i in 1..=200u64 {
                    let epoch = handle.swap(tagged(i % 2));
                    assert_eq!(epoch, i);
                }
            });
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..500 {
                        let (model, epoch) = handle.load();
                        assert_eq!(
                            model.stats.observations as u64,
                            epoch % 2,
                            "load() returned a torn (model, epoch) pair"
                        );
                    }
                });
            }
            swapper.join().expect("swapper");
        });
        assert_eq!(handle.epoch(), 200);
    }

    #[test]
    fn versioned_cache_key_changes_with_the_epoch_only() {
        let handle = ModelHandle::new(Arc::new(LearnedModel::default()));
        let snapshot_at = |epoch: u64| ServiceSnapshot {
            store: Arc::new(kbqa_rdf::GraphBuilder::new().build()),
            conceptualizer: Arc::new(Conceptualizer::new(
                kbqa_taxonomy::NetworkBuilder::new().build(),
            )),
            model: handle.load().0,
            model_epoch: epoch,
            ner: Arc::new(GazetteerNer::default()),
            pattern_index: None,
            config: EngineConfig::default(),
            obs: None,
            shards: None,
        };
        let request = QaRequest::new("what is the population of berlin");
        let at_zero = snapshot_at(0).cache_key(&request);
        let at_one = snapshot_at(1).cache_key(&request);
        assert_ne!(at_zero, at_one, "an epoch bump must invalidate the key");
        // The suffix past the epoch prefix is the unversioned key.
        let base = request.cache_key(&EngineConfig::default());
        assert_eq!(at_zero, format!("0\u{1f}{base}"));
        assert_eq!(at_one, format!("1\u{1f}{base}"));
    }

    #[test]
    fn stage_timings_attach_only_with_a_sink_and_explain() {
        let store = Arc::new(kbqa_rdf::GraphBuilder::new().build());
        let conceptualizer = Arc::new(Conceptualizer::new(
            kbqa_taxonomy::NetworkBuilder::new().build(),
        ));
        let model = Arc::new(LearnedModel::default());
        let stats = Arc::new(kbqa_obs::StageStats::new());
        let traced = KbqaService::builder(
            Arc::clone(&store),
            Arc::clone(&conceptualizer),
            Arc::clone(&model),
        )
        .observability(Arc::new(Observability::always(Arc::clone(&stats))))
        .build();
        let plain = KbqaService::new(store, conceptualizer, model);

        let explain = QaRequest::new("who founded rome").with_explain(true);
        let quiet = QaRequest::new("who founded rome");

        // No sink: no timings, even when asked to explain.
        assert_eq!(plain.answer(&explain).stage_us, None);

        // Sink + explain: timings on the response AND in the histograms.
        let response = traced.answer(&explain);
        assert!(response.stage_us.is_some());
        assert_eq!(stats.traced_requests(), 1);

        // Sink without explain: sampled into the histograms but the response
        // body stays identical to an untraced run (the cache contract).
        let (response, breakdown) = traced.answer_traced(&quiet);
        assert_eq!(response.stage_us, None);
        assert!(breakdown.is_some());
        assert_eq!(stats.traced_requests(), 2);
        assert_eq!(response, plain.answer(&quiet));
    }

    #[test]
    fn request_overrides_compose_over_base() {
        let base = EngineConfig::default();
        let request = QaRequest::new("q")
            .with_top_k(11)
            .with_min_theta(0.5)
            .with_decompose(false);
        let effective = request.effective_config(&base);
        assert_eq!(effective.top_k, 11);
        assert_eq!(effective.min_theta, 0.5);
        assert!(!effective.decompose);
        // Untouched knobs inherit the base.
        assert_eq!(effective.max_concepts, base.max_concepts);
        assert_eq!(effective.chain_width, base.chain_width);

        let plain = QaRequest::new("q").effective_config(&base);
        assert_eq!(plain, base);
    }

    #[test]
    fn cache_key_is_insensitive_to_spacing_and_case() {
        let base = EngineConfig::default();
        let a = QaRequest::new("What is  the population of Berlin?").cache_key(&base);
        let b = QaRequest::new("  what is the population of berlin?  ").cache_key(&base);
        assert_eq!(a, b);
        // Punctuation is significant — the tokenizer sees it.
        let c = QaRequest::new("what is the population of berlin").cache_key(&base);
        assert_ne!(a, c);
    }

    #[test]
    fn cache_key_folds_overrides_into_the_effective_config() {
        let base = EngineConfig::default();
        let plain = QaRequest::new("q").cache_key(&base);
        // An explicit override equal to the default is the same request.
        let explicit = QaRequest::new("q").with_top_k(base.top_k).cache_key(&base);
        assert_eq!(plain, explicit);
        // Any knob that changes the response changes the key.
        assert_ne!(plain, QaRequest::new("q").with_top_k(99).cache_key(&base));
        assert_ne!(
            plain,
            QaRequest::new("q").with_min_theta(0.7).cache_key(&base)
        );
        assert_ne!(
            plain,
            QaRequest::new("q").with_decompose(false).cache_key(&base)
        );
        assert_ne!(
            plain,
            QaRequest::new("q").with_explain(true).cache_key(&base)
        );
        // And so does the service-level base config.
        let strict = EngineConfig {
            min_theta: 0.9,
            ..EngineConfig::default()
        };
        assert_ne!(plain, QaRequest::new("q").cache_key(&strict));
        // floor_prune changes reported scores, so it must change the key.
        let pruned = EngineConfig {
            floor_prune: true,
            ..EngineConfig::default()
        };
        assert_ne!(plain, QaRequest::new("q").cache_key(&pruned));
    }

    #[test]
    fn cache_key_separator_resists_question_injection() {
        let base = EngineConfig::default();
        // A question that tries to spell out another request's config suffix
        // cannot collide: normalization strips the `\u{1f}` separator.
        let honest = QaRequest::new("q").cache_key(&base);
        let forged = QaRequest::new(format!("q\u{1f}{}", &honest["q\u{1f}".len()..]));
        assert_ne!(honest, forged.cache_key(&base));
        // The separator folds to a token boundary, same as a space.
        assert_eq!(
            QaRequest::new("a\u{1f}b").normalized_question(),
            QaRequest::new("a b").normalized_question()
        );
    }

    #[test]
    fn empty_answer_list_is_a_refusal() {
        let response = QaResponse::from_answers(Vec::new());
        assert!(!response.answered());
        assert_eq!(response.refusal, Some(Refusal::EmptyValueSet));
        assert_eq!(response.top(), None);
    }

    #[test]
    fn refusal_displays_distinctly() {
        let all = [
            Refusal::NoEntityGrounded,
            Refusal::NoTemplateMatched,
            Refusal::NoPredicateAboveTheta,
            Refusal::EmptyValueSet,
            Refusal::ShardUnavailable,
        ];
        let rendered: std::collections::BTreeSet<String> =
            all.iter().map(|r| r.to_string()).collect();
        assert_eq!(rendered.len(), all.len());
    }
}
