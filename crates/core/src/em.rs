//! EM estimation of `θ = P(p|t)` (paper Sec 4.2–4.3, Algorithm 1).
//!
//! The latent variable `zᵢ = (p, t)` says which predicate and template
//! generated observation `xᵢ = (qᵢ, eᵢ, vᵢ)`. Per Eq (18),
//! `P(xᵢ, zᵢ|θ) = f(xᵢ, zᵢ)·θ_pt` with the fixed factor `f` precomputed by
//! extraction. The E-step computes the posterior responsibility of each
//! `(p, t)` per observation (Eq 21, normalized — the paper's formula elides
//! the per-observation normalizer, which standard EM requires and which the
//! M-step ratio of Eq 22 does not cancel); the M-step renormalizes the
//! accumulated responsibilities per template (Eq 22).
//!
//! The paper's pruning (Eq 24) is inherited structurally: each observation
//! stores only the templates with `P(t|e,q) > 0` and the predicates with
//! `P(v|e,p) > 0`, so an E-step pass is `O(m)` with constant per-observation
//! work — Algorithm 1's overall `O(km)`.
//!
//! The E-step is embarrassingly parallel over observations; with
//! `threads > 1` it fans out over crossbeam scoped threads and merges the
//! per-thread accumulators.

use kbqa_common::float::KahanSum;
use kbqa_common::hash::FxHashMap;
use serde::{Deserialize, Serialize};

use crate::catalog::PredId;
use crate::extraction::Observation;
use crate::template::TemplateId;

/// EM hyperparameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EmConfig {
    /// Iteration cap (`k` in the paper's O(km)).
    pub max_iterations: usize,
    /// Convergence threshold on `max |θ⁽ˢ⁺¹⁾ - θ⁽ˢ⁾|`.
    pub tolerance: f64,
    /// E-step worker threads (1 = sequential).
    pub threads: usize,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self {
            max_iterations: 50,
            tolerance: 1e-6,
            threads: 1,
        }
    }
}

/// Convergence diagnostics.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EmStats {
    /// Iterations actually run.
    pub iterations: usize,
    /// Log-likelihood trace, one entry per iteration.
    pub log_likelihood: Vec<f64>,
    /// Observation count `m`.
    pub observations: usize,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// The learned distribution `P(p|t)`: per template, predicates with
/// probabilities sorted descending.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Theta {
    per_template: Vec<Vec<(PredId, f64)>>,
}

impl Theta {
    /// `P(·|t)` — sorted descending; empty for templates never observed.
    pub fn predicates_for(&self, t: TemplateId) -> &[(PredId, f64)] {
        self.per_template
            .get(t.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The argmax predicate for a template.
    pub fn top_predicate(&self, t: TemplateId) -> Option<(PredId, f64)> {
        self.predicates_for(t).first().copied()
    }

    /// `P(p|t)` point lookup.
    pub fn probability(&self, t: TemplateId, p: PredId) -> f64 {
        self.predicates_for(t)
            .iter()
            .find(|(pp, _)| *pp == p)
            .map(|(_, prob)| *prob)
            .unwrap_or(0.0)
    }

    /// Number of template rows (== template catalog size at learning time).
    pub fn template_count(&self) -> usize {
        self.per_template.len()
    }

    /// Templates with at least one predicate.
    pub fn supported_templates(&self) -> usize {
        self.per_template.iter().filter(|v| !v.is_empty()).count()
    }

    /// Distinct predicates appearing in any template row.
    pub fn distinct_predicates(&self) -> usize {
        let mut seen: std::collections::BTreeSet<PredId> = Default::default();
        for row in &self.per_template {
            for &(p, _) in row {
                seen.insert(p);
            }
        }
        seen.len()
    }

    /// Iterate `(template, row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TemplateId, &[(PredId, f64)])> {
        self.per_template
            .iter()
            .enumerate()
            .map(|(i, row)| (TemplateId::new(i as u32), row.as_slice()))
    }

    /// A copy keeping only the rows whose template satisfies `keep`; other
    /// rows become empty (ids stay stable).
    pub fn retained(&self, keep: impl Fn(TemplateId) -> bool) -> Theta {
        let per_template = self
            .per_template
            .iter()
            .enumerate()
            .map(|(i, row)| {
                if keep(TemplateId::new(i as u32)) {
                    row.clone()
                } else {
                    Vec::new()
                }
            })
            .collect();
        Theta { per_template }
    }

    /// A copy with every row flattened to the uniform distribution over its
    /// co-occurring predicates — the "no EM" ablation (what initialization
    /// Eq 23 alone would give; isolates the value of the iterations).
    pub fn uniformized(&self) -> Theta {
        let per_template = self
            .per_template
            .iter()
            .map(|row| {
                if row.is_empty() {
                    return Vec::new();
                }
                let u = 1.0 / row.len() as f64;
                let mut flat: Vec<(PredId, f64)> = row.iter().map(|&(p, _)| (p, u)).collect();
                flat.sort_by_key(|&(p, _)| p);
                flat
            })
            .collect();
        Theta { per_template }
    }
}

/// Sparse working accumulator: per-template predicate mass.
type Accumulator = Vec<FxHashMap<PredId, f64>>;

/// Run EM. `n_templates` must cover every `TemplateId` in the observations.
pub fn estimate(
    observations: &[Observation],
    n_templates: usize,
    config: &EmConfig,
) -> (Theta, EmStats) {
    let mut stats = EmStats {
        observations: observations.len(),
        ..Default::default()
    };
    if observations.is_empty() || n_templates == 0 {
        return (Theta::default(), stats);
    }

    // ---- initialization (Eq 23): uniform over co-occurring predicates.
    let mut theta: Accumulator = vec![FxHashMap::default(); n_templates];
    for obs in observations {
        for &(t, _) in &obs.templates {
            let row = &mut theta[t.index()];
            for &(p, _) in &obs.predicates {
                row.entry(p).or_insert(0.0);
            }
        }
    }
    for row in theta.iter_mut() {
        let n = row.len();
        if n > 0 {
            let u = 1.0 / n as f64;
            for v in row.values_mut() {
                *v = u;
            }
        }
    }

    // ---- iterate.
    for iteration in 0..config.max_iterations {
        let (acc, ll) = e_step(observations, &theta, n_templates, config.threads);
        let delta = m_step(&mut theta, acc);
        stats.iterations = iteration + 1;
        stats.log_likelihood.push(ll);
        if delta < config.tolerance {
            stats.converged = true;
            break;
        }
    }

    // ---- freeze into sorted rows.
    let per_template: Vec<Vec<(PredId, f64)>> = theta
        .into_iter()
        .map(|row| {
            let mut v: Vec<(PredId, f64)> = row.into_iter().collect();
            v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            v
        })
        .collect();
    (Theta { per_template }, stats)
}

/// E-step: accumulate normalized responsibilities; returns (acc, log-lik).
fn e_step(
    observations: &[Observation],
    theta: &Accumulator,
    n_templates: usize,
    threads: usize,
) -> (Accumulator, f64) {
    if threads <= 1 || observations.len() < 1024 {
        return e_step_chunk(observations, theta, n_templates);
    }
    let chunk_size = observations.len().div_ceil(threads);
    let results: Vec<(Accumulator, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = observations
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || e_step_chunk(chunk, theta, n_templates)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("E-step worker panicked"))
            .collect()
    });

    // Merge.
    let mut acc: Accumulator = vec![FxHashMap::default(); n_templates];
    let mut ll = KahanSum::new();
    for (partial, partial_ll) in results {
        ll.add(partial_ll);
        for (row, partial_row) in acc.iter_mut().zip(partial) {
            for (p, w) in partial_row {
                *row.entry(p).or_insert(0.0) += w;
            }
        }
    }
    (acc, ll.total())
}

fn e_step_chunk(
    observations: &[Observation],
    theta: &Accumulator,
    n_templates: usize,
) -> (Accumulator, f64) {
    let mut acc: Accumulator = vec![FxHashMap::default(); n_templates];
    let mut ll = KahanSum::new();
    // Reused scratch for the per-observation joint weights.
    let mut weights: Vec<(TemplateId, PredId, f64)> = Vec::new();
    for obs in observations {
        weights.clear();
        let mut total = 0.0;
        for &(t, pt) in &obs.templates {
            let row = &theta[t.index()];
            for &(p, pv) in &obs.predicates {
                let Some(&th) = row.get(&p) else { continue };
                if th <= 0.0 {
                    continue;
                }
                let w = obs.p_entity * pt * pv * th;
                if w > 0.0 {
                    weights.push((t, p, w));
                    total += w;
                }
            }
        }
        if total <= 0.0 {
            continue;
        }
        ll.add(total.ln());
        let inv = 1.0 / total;
        for &(t, p, w) in &weights {
            *acc[t.index()].entry(p).or_insert(0.0) += w * inv;
        }
    }
    (acc, ll.total())
}

/// M-step (Eq 22): per-template renormalization. Returns `max |Δθ|`.
fn m_step(theta: &mut Accumulator, acc: Accumulator) -> f64 {
    let mut max_delta = 0.0f64;
    for (row, acc_row) in theta.iter_mut().zip(acc) {
        if row.is_empty() {
            continue;
        }
        let total: f64 = acc_row.values().sum();
        if total <= 0.0 {
            // Template got no responsibility this round; leave θ unchanged
            // (its observations were all claimed by other templates).
            continue;
        }
        let inv = 1.0 / total;
        for (p, old) in row.iter_mut() {
            let new = acc_row.get(p).copied().unwrap_or(0.0) * inv;
            max_delta = max_delta.max((new - *old).abs());
            *old = new;
        }
    }
    max_delta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TemplateId {
        TemplateId::new(i)
    }
    fn p(i: u32) -> PredId {
        PredId::new(i)
    }

    /// Make an observation with a single template and the given predicates.
    fn obs(template: u32, preds: &[(u32, f64)]) -> Observation {
        Observation {
            pair_index: 0,
            entity: kbqa_rdf::NodeId::new(0),
            value: kbqa_rdf::NodeId::new(1),
            p_entity: 1.0,
            templates: vec![(t(template), 1.0)],
            predicates: preds.iter().map(|&(i, pv)| (p(i), pv)).collect(),
        }
    }

    #[test]
    fn unambiguous_observations_converge_to_certainty() {
        // Template 0 always co-occurs with predicate 0 only.
        let observations: Vec<Observation> = (0..20).map(|_| obs(0, &[(0, 1.0)])).collect();
        let (theta, stats) = estimate(&observations, 1, &EmConfig::default());
        assert!(stats.converged);
        let (top, prob) = theta.top_predicate(t(0)).unwrap();
        assert_eq!(top, p(0));
        assert!((prob - 1.0).abs() < 1e-9);
    }

    #[test]
    fn majority_predicate_wins() {
        // The paper's core signal: most instances of a template share the
        // same predicate. 15 observations connect to predicate 0 (and noise
        // predicate 1 in 5 of them); predicate 0 must dominate.
        let mut observations = Vec::new();
        for _ in 0..10 {
            observations.push(obs(0, &[(0, 1.0)]));
        }
        for _ in 0..5 {
            observations.push(obs(0, &[(0, 1.0), (1, 1.0)]));
        }
        let (theta, _) = estimate(&observations, 1, &EmConfig::default());
        let row = theta.predicates_for(t(0));
        assert_eq!(row[0].0, p(0));
        assert!(row[0].1 > 0.85, "θ = {row:?}");
        assert!(theta.probability(t(0), p(1)) < 0.15);
    }

    #[test]
    fn ambiguous_templates_disambiguate_via_shared_evidence() {
        // Template 0 pairs with predicate 0 in clean observations.
        // Template 1 is ambiguous between predicates 0 and 1 in joint
        // observations — but template 1 also appears alone with predicate 1,
        // so EM should attribute the joint mass mostly to predicate 1... and
        // template 0's clean signal keeps it on predicate 0.
        let mut observations = Vec::new();
        for _ in 0..20 {
            observations.push(obs(0, &[(0, 1.0)]));
        }
        for _ in 0..20 {
            observations.push(obs(1, &[(1, 1.0)]));
        }
        for _ in 0..4 {
            observations.push(obs(1, &[(0, 1.0), (1, 1.0)]));
        }
        let (theta, _) = estimate(&observations, 2, &EmConfig::default());
        assert_eq!(theta.top_predicate(t(0)).unwrap().0, p(0));
        assert_eq!(theta.top_predicate(t(1)).unwrap().0, p(1));
        assert!(theta.probability(t(1), p(1)) > 0.8);
    }

    #[test]
    fn log_likelihood_is_nondecreasing() {
        let mut observations = Vec::new();
        for i in 0..30 {
            if i % 3 == 0 {
                observations.push(obs(0, &[(0, 0.5), (1, 0.5)]));
            } else {
                observations.push(obs(0, &[(0, 1.0)]));
            }
        }
        let (_, stats) = estimate(&observations, 1, &EmConfig::default());
        for pair in stats.log_likelihood.windows(2) {
            assert!(
                pair[1] >= pair[0] - 1e-9,
                "LL decreased: {} → {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn rows_are_normalized_distributions() {
        let observations = vec![
            obs(0, &[(0, 1.0), (1, 0.5)]),
            obs(0, &[(1, 1.0)]),
            obs(0, &[(2, 0.25)]),
        ];
        let (theta, _) = estimate(&observations, 1, &EmConfig::default());
        let total: f64 = theta.predicates_for(t(0)).iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9, "row mass {total}");
        // Sorted descending.
        let row = theta.predicates_for(t(0));
        for w in row.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn empty_input_yields_empty_theta() {
        let (theta, stats) = estimate(&[], 0, &EmConfig::default());
        assert_eq!(theta.template_count(), 0);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut observations = Vec::new();
        for i in 0..3000u32 {
            let template = i % 7;
            let preds: Vec<(u32, f64)> = match i % 3 {
                0 => vec![(template, 1.0)],
                1 => vec![(template, 1.0), ((template + 1) % 7, 0.5)],
                _ => vec![((template + 1) % 7, 1.0)],
            };
            observations.push(obs(template, &preds));
        }
        let seq_cfg = EmConfig {
            threads: 1,
            ..Default::default()
        };
        let par_cfg = EmConfig {
            threads: 4,
            ..Default::default()
        };
        let (theta_seq, stats_seq) = estimate(&observations, 7, &seq_cfg);
        let (theta_par, stats_par) = estimate(&observations, 7, &par_cfg);
        assert_eq!(stats_seq.iterations, stats_par.iterations);
        for i in 0..7 {
            let a = theta_seq.predicates_for(t(i));
            let b = theta_par.predicates_for(t(i));
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.0, y.0);
                assert!((x.1 - y.1).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn template_statistics() {
        let observations = vec![obs(0, &[(0, 1.0)]), obs(2, &[(1, 1.0)])];
        let (theta, _) = estimate(&observations, 3, &EmConfig::default());
        assert_eq!(theta.template_count(), 3);
        assert_eq!(theta.supported_templates(), 2);
        assert_eq!(theta.distinct_predicates(), 2);
        assert!(theta.predicates_for(t(1)).is_empty());
        assert_eq!(theta.top_predicate(t(1)), None);
    }

    #[test]
    fn soft_template_distributions_share_mass() {
        // One observation with two templates (person 0.75 / politician 0.25)
        // and one predicate: both templates learn the predicate.
        let o = Observation {
            pair_index: 0,
            entity: kbqa_rdf::NodeId::new(0),
            value: kbqa_rdf::NodeId::new(1),
            p_entity: 1.0,
            templates: vec![(t(0), 0.75), (t(1), 0.25)],
            predicates: vec![(p(0), 1.0)],
        };
        let (theta, _) = estimate(&[o], 2, &EmConfig::default());
        assert_eq!(theta.top_predicate(t(0)).unwrap().0, p(0));
        assert_eq!(theta.top_predicate(t(1)).unwrap().0, p(0));
    }
}
