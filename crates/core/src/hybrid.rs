//! Hybrid QA systems (paper Sec 7.3.1, Table 11).
//!
//! KBQA is a high-precision, refusal-prone component: *"first, the user
//! question is fed into KBQA. If KBQA gives no reply — which means the
//! question is very likely a non-BFQ — we feed the question into the
//! baseline system."* The combinator is generic over any two
//! [`QaSystem`]s, so the Table 11 harness can wrap every baseline.

use crate::engine::{QaSystem, SystemAnswer};

/// Primary-with-fallback composition of two QA systems.
pub struct HybridSystem<P, F> {
    primary: P,
    fallback: F,
    name: String,
}

impl<P: QaSystem, F: QaSystem> HybridSystem<P, F> {
    /// Compose `primary` (tried first) with `fallback`.
    pub fn new(primary: P, fallback: F) -> Self {
        let name = format!("{}+{}", primary.name(), fallback.name());
        Self {
            primary,
            fallback,
            name,
        }
    }

    /// The primary system.
    pub fn primary(&self) -> &P {
        &self.primary
    }

    /// The fallback system.
    pub fn fallback(&self) -> &F {
        &self.fallback
    }
}

impl<P: QaSystem, F: QaSystem> QaSystem for HybridSystem<P, F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn answer(&self, question: &str) -> Option<SystemAnswer> {
        self.primary
            .answer(question)
            .or_else(|| self.fallback.answer(question))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted system answering only questions containing its keyword.
    struct Scripted {
        name: &'static str,
        keyword: &'static str,
        reply: &'static str,
    }

    impl QaSystem for Scripted {
        fn name(&self) -> &str {
            self.name
        }
        fn answer(&self, question: &str) -> Option<SystemAnswer> {
            question.contains(self.keyword).then(|| SystemAnswer {
                values: vec![(self.reply.to_owned(), 1.0)],
            })
        }
    }

    fn hybrid() -> HybridSystem<Scripted, Scripted> {
        HybridSystem::new(
            Scripted {
                name: "KBQA",
                keyword: "population",
                reply: "390000",
            },
            Scripted {
                name: "SWIP",
                keyword: "why",
                reply: "because",
            },
        )
    }

    #[test]
    fn primary_wins_when_it_answers() {
        let h = hybrid();
        let a = h.answer("what is the population of honolulu").unwrap();
        assert_eq!(a.top(), Some("390000"));
    }

    #[test]
    fn fallback_catches_refusals() {
        let h = hybrid();
        let a = h.answer("why is the sky blue").unwrap();
        assert_eq!(a.top(), Some("because"));
    }

    #[test]
    fn both_refuse_means_refusal() {
        let h = hybrid();
        assert!(h.answer("how do magnets work").is_none());
    }

    #[test]
    fn name_is_composed() {
        assert_eq!(hybrid().name(), "KBQA+SWIP");
    }
}
