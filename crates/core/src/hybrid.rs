//! Hybrid QA systems (paper Sec 7.3.1, Table 11).
//!
//! KBQA is a high-precision, refusal-prone component: *"first, the user
//! question is fed into KBQA. If KBQA gives no reply — which means the
//! question is very likely a non-BFQ — we feed the question into the
//! baseline system."* The combinator is generic over any two
//! [`QaSystem`]s, so the Table 11 harness can wrap every baseline.
//!
//! When **both** components refuse, the response carries the *primary*
//! system's [`crate::service::Refusal`]: the high-precision component's
//! diagnosis of where the pipeline lost the question is the actionable
//! signal.

use crate::service::{QaRequest, QaResponse, QaSystem};

/// Primary-with-fallback composition of two QA systems.
pub struct HybridSystem<P, F> {
    primary: P,
    fallback: F,
    name: String,
}

impl<P: QaSystem, F: QaSystem> HybridSystem<P, F> {
    /// Compose `primary` (tried first) with `fallback`.
    pub fn new(primary: P, fallback: F) -> Self {
        let name = format!("{}+{}", primary.name(), fallback.name());
        Self {
            primary,
            fallback,
            name,
        }
    }

    /// The primary system.
    pub fn primary(&self) -> &P {
        &self.primary
    }

    /// The fallback system.
    pub fn fallback(&self) -> &F {
        &self.fallback
    }
}

impl<P: QaSystem, F: QaSystem> QaSystem for HybridSystem<P, F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn answer(&self, request: &QaRequest) -> QaResponse {
        let primary = self.primary.answer(request);
        if primary.answered() {
            return primary;
        }
        let fallback = self.fallback.answer(request);
        if fallback.answered() {
            fallback
        } else {
            primary
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Answer;
    use crate::service::Refusal;

    /// A scripted system answering only questions containing its keyword.
    struct Scripted {
        name: &'static str,
        keyword: &'static str,
        reply: &'static str,
        refusal: Refusal,
    }

    impl QaSystem for Scripted {
        fn name(&self) -> &str {
            self.name
        }
        fn answer(&self, request: &QaRequest) -> QaResponse {
            if request.question.contains(self.keyword) {
                QaResponse::from_answers(vec![Answer::ranked(self.reply, 1.0)])
            } else {
                QaResponse::refused(self.refusal)
            }
        }
    }

    fn hybrid() -> HybridSystem<Scripted, Scripted> {
        HybridSystem::new(
            Scripted {
                name: "KBQA",
                keyword: "population",
                reply: "390000",
                refusal: Refusal::NoTemplateMatched,
            },
            Scripted {
                name: "SWIP",
                keyword: "why",
                reply: "because",
                refusal: Refusal::NoEntityGrounded,
            },
        )
    }

    #[test]
    fn primary_wins_when_it_answers() {
        let h = hybrid();
        let a = h.answer_text("what is the population of honolulu");
        assert_eq!(a.top(), Some("390000"));
    }

    #[test]
    fn fallback_catches_refusals() {
        let h = hybrid();
        let a = h.answer_text("why is the sky blue");
        assert_eq!(a.top(), Some("because"));
        assert!(a.refusal.is_none());
    }

    #[test]
    fn both_refuse_keeps_primary_cause() {
        let h = hybrid();
        let response = h.answer_text("how do magnets work");
        assert!(!response.answered());
        assert_eq!(response.refusal, Some(Refusal::NoTemplateMatched));
    }

    #[test]
    fn name_is_composed() {
        assert_eq!(hybrid().name(), "KBQA+SWIP");
    }
}
