//! Evaluation metrics (paper Sec 7.3).
//!
//! QALD-style accounting: `#pro` (questions the system processed, i.e.
//! returned a non-null answer), `#ri` (right answers), `#par` (partially
//! right answers), from which precision `P = #ri/#pro`, partial precision
//! `P* = (#ri+#par)/#pro`, recall `R = #ri/#total`, `R* `, and the
//! BFQ-restricted recalls `R_BFQ`, `R*_BFQ` are derived.
//!
//! "Right" = the system's top answer matches a gold answer (normalized
//! token-wise). "Partially right" = some gold answer appears in the
//! remaining ranked answers, or — for multi-gold questions — the returned
//! set covers only part of the gold set.
//!
//! WebQuestions-style accounting (Table 10): averaged precision / recall /
//! F1 over per-question answer sets plus `P@1`, matching the official
//! evaluation script's shape.

use serde::{Deserialize, Serialize};

use kbqa_nlp::tokenize;

use crate::service::{QaRequest, QaSystem};

/// One evaluation question: text, acceptable answers, BFQ flag.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvalQuestion {
    /// Question text.
    pub question: String,
    /// Acceptable gold answers (surface strings); empty = no factoid answer.
    pub gold: Vec<String>,
    /// Whether the question is a BFQ (drives `R_BFQ`).
    pub is_bfq: bool,
}

/// QALD-style tallies and derived metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct QaldOutcome {
    /// Total questions.
    pub total: usize,
    /// BFQ questions.
    pub bfq_total: usize,
    /// Questions answered (non-null).
    pub processed: usize,
    /// Right answers.
    pub right: usize,
    /// Partially right answers.
    pub partial: usize,
}

impl QaldOutcome {
    /// `P = #ri / #pro`.
    pub fn precision(&self) -> f64 {
        ratio(self.right, self.processed)
    }

    /// `P* = (#ri + #par) / #pro`.
    pub fn partial_precision(&self) -> f64 {
        ratio(self.right + self.partial, self.processed)
    }

    /// `R = #ri / #total`.
    pub fn recall(&self) -> f64 {
        ratio(self.right, self.total)
    }

    /// `R* = (#ri + #par) / #total`.
    pub fn partial_recall(&self) -> f64 {
        ratio(self.right + self.partial, self.total)
    }

    /// `R_BFQ = #ri / #BFQ`.
    pub fn recall_bfq(&self) -> f64 {
        ratio(self.right, self.bfq_total)
    }

    /// `R*_BFQ = (#ri + #par) / #BFQ`.
    pub fn partial_recall_bfq(&self) -> f64 {
        ratio(self.right + self.partial, self.bfq_total)
    }
}

/// WebQuestions-style averaged metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WebqOutcome {
    /// Average precision over answered questions.
    pub precision: f64,
    /// Fraction of all questions whose top answer is right.
    pub p_at_1: f64,
    /// Average recall over all questions.
    pub recall: f64,
    /// Average per-question F1 over all questions.
    pub f1: f64,
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Normalize an answer string for comparison: strip digit-group separators
/// (`390,000` ≡ `390000`), then tokenize, lowercase and join.
pub fn normalize_answer(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut cleaned = String::with_capacity(s.len());
    for (i, c) in s.char_indices() {
        if c == ',' {
            let prev_digit = i > 0 && bytes[i - 1].is_ascii_digit();
            let next_digit = bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit());
            if prev_digit && next_digit {
                continue;
            }
        }
        cleaned.push(c);
    }
    tokenize(&cleaned).joined()
}

/// Does `answer` match any gold answer?
pub fn matches_gold(answer: &str, gold: &[String]) -> bool {
    let norm = normalize_answer(answer);
    gold.iter().any(|g| normalize_answer(g) == norm)
}

/// Evaluate a system under QALD-style accounting.
pub fn evaluate_qald(system: &dyn QaSystem, questions: &[EvalQuestion]) -> QaldOutcome {
    let mut outcome = QaldOutcome {
        total: questions.len(),
        bfq_total: questions.iter().filter(|q| q.is_bfq).count(),
        ..Default::default()
    };
    for q in questions {
        let response = system.answer(&QaRequest::new(&q.question));
        if !response.answered() {
            continue;
        }
        outcome.processed += 1;
        let values = response.value_strings();
        let top_right = matches_gold(values[0], &q.gold);
        if top_right {
            // Multi-gold questions where the system returns only a strict
            // subset count as right on the top answer — QALD grading accepts
            // any correct answer entity; set coverage shows up in WebQ F1.
            outcome.right += 1;
        } else if values.iter().skip(1).any(|v| matches_gold(v, &q.gold)) {
            outcome.partial += 1;
        }
    }
    outcome
}

/// Evaluate a system under WebQuestions-style averaged P/R/F1 + P@1.
pub fn evaluate_webquestions(system: &dyn QaSystem, questions: &[EvalQuestion]) -> WebqOutcome {
    let mut sum_precision = 0.0;
    let mut answered = 0usize;
    let mut sum_recall = 0.0;
    let mut sum_f1 = 0.0;
    let mut top1_right = 0usize;
    for q in questions {
        let gold: Vec<String> = q.gold.iter().map(|g| normalize_answer(g)).collect();
        let response = system.answer(&QaRequest::new(&q.question));
        if !response.answered() {
            continue;
        }
        answered += 1;
        let returned: Vec<String> = response
            .answers
            .iter()
            .map(|a| normalize_answer(&a.value))
            .collect();
        let hits = returned.iter().filter(|r| gold.contains(r)).count();
        let p = ratio(hits, returned.len());
        let r = ratio(hits, gold.len().max(1));
        sum_precision += p;
        sum_recall += r;
        if p + r > 0.0 {
            sum_f1 += 2.0 * p * r / (p + r);
        }
        if gold.contains(&returned[0]) {
            top1_right += 1;
        }
    }
    let total = questions.len();
    WebqOutcome {
        precision: if answered == 0 {
            0.0
        } else {
            sum_precision / answered as f64
        },
        p_at_1: ratio(top1_right, total),
        recall: if total == 0 {
            0.0
        } else {
            sum_recall / total as f64
        },
        f1: if total == 0 {
            0.0
        } else {
            sum_f1 / total as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Answer;
    use crate::service::{QaResponse, Refusal};

    /// Scripted system: a fixed map from question to ranked answers.
    struct Scripted(Vec<(&'static str, Vec<&'static str>)>);

    impl QaSystem for Scripted {
        fn name(&self) -> &str {
            "scripted"
        }
        fn answer(&self, request: &QaRequest) -> QaResponse {
            match self.0.iter().find(|(q, _)| *q == request.question) {
                Some((_, vs)) => QaResponse::from_answers(
                    vs.iter()
                        .enumerate()
                        .map(|(i, v)| Answer::ranked(*v, 1.0 / (i + 1) as f64))
                        .collect(),
                ),
                None => QaResponse::refused(Refusal::NoTemplateMatched),
            }
        }
    }

    fn questions() -> Vec<EvalQuestion> {
        vec![
            EvalQuestion {
                question: "q1".into(),
                gold: vec!["alpha".into()],
                is_bfq: true,
            },
            EvalQuestion {
                question: "q2".into(),
                gold: vec!["beta".into()],
                is_bfq: true,
            },
            EvalQuestion {
                question: "q3".into(),
                gold: vec!["gamma".into()],
                is_bfq: false,
            },
            EvalQuestion {
                question: "q4".into(),
                gold: vec!["delta".into()],
                is_bfq: true,
            },
        ]
    }

    #[test]
    fn qald_metrics_add_up() {
        // q1 right, q2 partial (gold at rank 2), q3 wrong, q4 unanswered.
        let system = Scripted(vec![
            ("q1", vec!["alpha"]),
            ("q2", vec!["nope", "beta"]),
            ("q3", vec!["wrong"]),
        ]);
        let outcome = evaluate_qald(&system, &questions());
        assert_eq!(outcome.total, 4);
        assert_eq!(outcome.bfq_total, 3);
        assert_eq!(outcome.processed, 3);
        assert_eq!(outcome.right, 1);
        assert_eq!(outcome.partial, 1);
        assert!((outcome.precision() - 1.0 / 3.0).abs() < 1e-12);
        assert!((outcome.partial_precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((outcome.recall() - 0.25).abs() < 1e-12);
        assert!((outcome.recall_bfq() - 1.0 / 3.0).abs() < 1e-12);
        assert!((outcome.partial_recall() - 0.5).abs() < 1e-12);
        assert!((outcome.partial_recall_bfq() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn refusals_do_not_hurt_precision() {
        let refuser = Scripted(vec![("q1", vec!["alpha"])]);
        let outcome = evaluate_qald(&refuser, &questions());
        assert_eq!(outcome.processed, 1);
        assert_eq!(outcome.precision(), 1.0);
        assert!(outcome.recall() < 0.5);
    }

    #[test]
    fn matching_is_normalized() {
        assert!(matches_gold("Barack Obama", &["barack obama".into()]));
        assert!(matches_gold("390,000", &["390000".into()]));
        assert!(!matches_gold("obama", &["barack obama".into()]));
    }

    #[test]
    fn webq_metrics_reward_set_coverage() {
        let questions = vec![
            EvalQuestion {
                question: "members".into(),
                gold: vec!["ann".into(), "bob".into()],
                is_bfq: true,
            },
            EvalQuestion {
                question: "other".into(),
                gold: vec!["x".into()],
                is_bfq: true,
            },
        ];
        // Returns half the member set; skips the other question.
        let system = Scripted(vec![("members", vec!["ann"])]);
        let outcome = evaluate_webquestions(&system, &questions);
        assert!((outcome.precision - 1.0).abs() < 1e-12);
        assert!((outcome.recall - 0.25).abs() < 1e-12); // 0.5 for q1, 0 for q2
        assert!((outcome.p_at_1 - 0.5).abs() < 1e-12);
        let f1_q1 = 2.0 * 1.0 * 0.5 / 1.5;
        assert!((outcome.f1 - f1_q1 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_safe() {
        let system = Scripted(vec![]);
        let outcome = evaluate_qald(&system, &[]);
        assert_eq!(outcome.precision(), 0.0);
        assert_eq!(outcome.recall(), 0.0);
        let webq = evaluate_webquestions(&system, &[]);
        assert_eq!(webq.f1, 0.0);
    }
}
