//! Predicate expansion (paper Sec 6).
//!
//! Many intents correspond to multi-edge paths (`marriage→person→name`), so
//! the offline learner must know which `(s, p⁺, o)` connections exist. The
//! naive per-node BFS is quadratic in practice; the paper's two scalability
//! levers are reproduced faithfully:
//!
//! * **Reduction on s** (Sec 6.2): expansion starts only from entities that
//!   occur in corpus questions — the caller supplies that source set.
//! * **Memory-efficient scan+join BFS** (Sec 6.2): each round performs one
//!   sequential scan of the triple log, joining triple subjects against the
//!   in-memory frontier built in the previous round (the store counts the
//!   scan passes; the complexity is `O(k·|K| + #spo)`).
//!
//! The Sec 6.3 restriction is honored: paths of length ≥ 2 are *emitted*
//! only when they end with a name-like predicate (configurable for
//! ablation), though non-name intermediate paths still extend the frontier.
//! [`valid_k`] reproduces the Infobox validation (Eq 29) behind Table 4's
//! choice of `k = 3`.

use kbqa_common::hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

use kbqa_rdf::{ExpandedPredicate, NodeId, PredicateId, TripleStore};

use crate::catalog::{PredId, PredicateCatalog};

/// Expansion parameters.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpansionConfig {
    /// Maximum path length `k` (the paper selects 3 via Table 4).
    pub max_len: usize,
    /// Keep the Sec 6.3 rule: length ≥ 2 paths must end with `name`.
    pub require_name_terminal: bool,
    /// Safety cap on emitted `(s, p⁺, o)` records (0 = unlimited). The
    /// paper's run stored 21M records; worlds here are far smaller, but a
    /// runaway configuration should degrade, not OOM.
    pub max_emitted: usize,
}

impl Default for ExpansionConfig {
    fn default() -> Self {
        Self {
            max_len: 3,
            require_name_terminal: true,
            max_emitted: 0,
        }
    }
}

impl ExpansionConfig {
    /// Direct predicates only (`k = 1`) — the Table 16 ablation baseline.
    pub fn direct_only() -> Self {
        Self {
            max_len: 1,
            ..Self::default()
        }
    }
}

/// The expansion output: interned paths plus the join indexes the learner
/// and the online engine need.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ExpansionResult {
    /// Interned predicate paths.
    pub catalog: PredicateCatalog,
    /// `s → [(p⁺, o)]` — every emitted connection grouped by subject.
    pub by_subject: FxHashMap<NodeId, Vec<(PredId, NodeId)>>,
    /// `(s, o) → [p⁺]` — the Eq (8)/Eq (24) probe "which predicates connect
    /// e and v?".
    pub pair_predicates: FxHashMap<(NodeId, NodeId), Vec<PredId>>,
    /// `(s, p⁺) → |V(s, p⁺)|` — the denominator of `P(v|e,p)` (Eq 6).
    pub value_counts: FxHashMap<(NodeId, PredId), u32>,
    /// Emitted record count per path length (index 0 unused).
    pub emitted_by_length: Vec<usize>,
    /// Whether `max_emitted` was hit (results are then partial).
    pub truncated: bool,
}

impl ExpansionResult {
    /// Total emitted `(s, p⁺, o)` records.
    pub fn emitted(&self) -> usize {
        self.emitted_by_length.iter().sum()
    }

    /// Predicates connecting a specific `(s, o)` pair.
    pub fn predicates_between(&self, s: NodeId, o: NodeId) -> &[PredId] {
        self.pair_predicates
            .get(&(s, o))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// `|V(s, p⁺)|` per the emitted records.
    pub fn value_count(&self, s: NodeId, p: PredId) -> usize {
        self.value_counts
            .get(&(s, p))
            .map(|&c| c as usize)
            .unwrap_or(0)
    }

    /// Distinct predicates emitted with the given path length.
    pub fn distinct_predicates_of_length(&self, len: usize) -> usize {
        let mut seen: FxHashSet<PredId> = FxHashSet::default();
        for entries in self.by_subject.values() {
            for &(p, _) in entries {
                if self.catalog.resolve(p).len() == len {
                    seen.insert(p);
                }
            }
        }
        seen.len()
    }
}

/// One frontier record: a partial path from `origin` ending at the map key.
#[derive(Clone, Debug)]
struct FrontierEntry {
    origin: NodeId,
    prefix: Vec<PredicateId>,
}

/// Run the expansion from `sources`.
pub fn expand(
    store: &TripleStore,
    sources: &FxHashSet<NodeId>,
    config: &ExpansionConfig,
) -> ExpansionResult {
    assert!(config.max_len >= 1, "max_len must be ≥ 1");
    let name_preds: FxHashSet<PredicateId> = store.name_predicates().iter().copied().collect();

    let mut result = ExpansionResult {
        emitted_by_length: vec![0; config.max_len + 1],
        ..Default::default()
    };
    let mut emitted_keys: FxHashSet<(NodeId, PredId, NodeId)> = FxHashSet::default();
    // endpoint → partial paths ending there.
    let mut frontier: FxHashMap<NodeId, Vec<FrontierEntry>> = FxHashMap::default();

    for round in 1..=config.max_len {
        let mut next_frontier: FxHashMap<NodeId, Vec<FrontierEntry>> = FxHashMap::default();
        // One sequential pass over the triple log (the "disk scan").
        for t in store.scan() {
            if round == 1 {
                if !sources.contains(&t.s) {
                    continue;
                }
                let path = vec![t.p];
                emit(
                    store,
                    config,
                    &mut result,
                    &mut emitted_keys,
                    t.s,
                    &path,
                    t.o,
                    &name_preds,
                );
                if round < config.max_len {
                    push_frontier(store, &mut next_frontier, t.o, t.s, path);
                }
            } else if let Some(entries) = frontier.get(&t.s) {
                for entry in entries {
                    let mut path = Vec::with_capacity(entry.prefix.len() + 1);
                    path.extend_from_slice(&entry.prefix);
                    path.push(t.p);
                    emit(
                        store,
                        config,
                        &mut result,
                        &mut emitted_keys,
                        entry.origin,
                        &path,
                        t.o,
                        &name_preds,
                    );
                    if round < config.max_len {
                        push_frontier(store, &mut next_frontier, t.o, entry.origin, path);
                    }
                }
            }
            if result.truncated {
                return result;
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() && round < config.max_len {
            break;
        }
    }
    result
}

/// Add a partial path to the next-round frontier (resources only; literals
/// have no out-edges and would only waste join probes).
fn push_frontier(
    store: &TripleStore,
    frontier: &mut FxHashMap<NodeId, Vec<FrontierEntry>>,
    endpoint: NodeId,
    origin: NodeId,
    prefix: Vec<PredicateId>,
) {
    if !store.dict().node_term(endpoint).is_resource() {
        return;
    }
    frontier
        .entry(endpoint)
        .or_default()
        .push(FrontierEntry { origin, prefix });
}

#[allow(clippy::too_many_arguments)]
fn emit(
    store: &TripleStore,
    config: &ExpansionConfig,
    result: &mut ExpansionResult,
    emitted_keys: &mut FxHashSet<(NodeId, PredId, NodeId)>,
    origin: NodeId,
    path: &[PredicateId],
    object: NodeId,
    name_preds: &FxHashSet<PredicateId>,
) {
    let len = path.len();
    // Sec 6.3: multi-edge paths must end with a name-like predicate (the
    // others "always have some very weak relations").
    if len >= 2
        && config.require_name_terminal
        && !name_preds.contains(path.last().expect("non-empty path"))
    {
        return;
    }
    // Self-loops carry no information ("X's something is X").
    if object == origin {
        return;
    }
    let _ = store;
    let pred = result.catalog.intern(ExpandedPredicate::new(path.to_vec()));
    if !emitted_keys.insert((origin, pred, object)) {
        return;
    }
    if config.max_emitted > 0 && emitted_keys.len() > config.max_emitted {
        result.truncated = true;
        return;
    }
    result.emitted_by_length[len] += 1;
    result
        .by_subject
        .entry(origin)
        .or_default()
        .push((pred, object));
    result
        .pair_predicates
        .entry((origin, object))
        .or_default()
        .push(pred);
    *result.value_counts.entry((origin, pred)).or_insert(0) += 1;
}

/// One row of the Table 4 computation: path length, emitted record count,
/// and how many records have Infobox support.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidK {
    /// Path length `k`.
    pub k: usize,
    /// `(s, p⁺, o)` records emitted at exactly this length.
    pub emitted: usize,
    /// Records whose `(s, o)` pair appears in the Infobox gold (Eq 29).
    pub valid: usize,
}

/// Reproduce Sec 6.3's `valid(k)` estimation: expand from the `top_entities`
/// highest-out-degree resources and count Infobox-supported records per
/// length.
pub fn valid_k(
    store: &TripleStore,
    infobox: &FxHashSet<(NodeId, NodeId)>,
    top_entities: usize,
    config: &ExpansionConfig,
) -> Vec<ValidK> {
    // "Frequency of an entity e = number of (s,p,o) triples with e = s."
    let mut degree: FxHashMap<NodeId, usize> = FxHashMap::default();
    for t in store.scan() {
        if store.dict().node_term(t.s).is_resource() {
            *degree.entry(t.s).or_default() += 1;
        }
    }
    let mut ranked: Vec<(usize, NodeId)> = degree.into_iter().map(|(n, d)| (d, n)).collect();
    ranked.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let sources: FxHashSet<NodeId> = ranked.iter().take(top_entities).map(|&(_, n)| n).collect();

    let expansion = expand(store, &sources, config);
    let mut rows: Vec<ValidK> = (1..=config.max_len)
        .map(|k| ValidK {
            k,
            emitted: 0,
            valid: 0,
        })
        .collect();
    for (&s, entries) in &expansion.by_subject {
        for &(p, o) in entries {
            let len = expansion.catalog.resolve(p).len();
            let row = &mut rows[len - 1];
            row.emitted += 1;
            if infobox.contains(&(s, o)) {
                row.valid += 1;
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_rdf::GraphBuilder;

    /// Fig. 1 toy KB plus a deliberately meaningless reachable value
    /// (spouse's dob).
    fn toy() -> (TripleStore, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let obama = b.resource("obama");
        let marriage = b.resource("marriage1");
        let michelle = b.resource("michelle");
        let honolulu = b.resource("honolulu");
        b.name(obama, "Barack Obama");
        b.name(michelle, "Michelle Obama");
        b.name(honolulu, "Honolulu");
        b.fact_year(obama, "dob", 1961);
        b.link(obama, "marriage", marriage);
        b.link(marriage, "person", michelle);
        b.fact_year(michelle, "dob", 1964);
        b.link(obama, "pob", honolulu);
        b.fact_int(honolulu, "population", 390_000);
        (b.build(), obama, michelle)
    }

    fn sources(nodes: &[NodeId]) -> FxHashSet<NodeId> {
        nodes.iter().copied().collect()
    }

    #[test]
    fn emits_direct_predicates_at_length_one() {
        let (store, obama, _) = toy();
        let result = expand(&store, &sources(&[obama]), &ExpansionConfig::direct_only());
        // obama: name, dob, marriage, pob = 4 direct edges.
        assert_eq!(result.emitted_by_length[1], 4);
        assert_eq!(result.emitted(), 4);
    }

    #[test]
    fn finds_marriage_person_name_at_k3() {
        let (store, obama, _) = toy();
        let result = expand(&store, &sources(&[obama]), &ExpansionConfig::default());
        let michelle_name = store.dict().find_str_literal("Michelle Obama").unwrap();
        let preds = result.predicates_between(obama, michelle_name);
        assert_eq!(preds.len(), 1);
        assert_eq!(
            result.catalog.render(preds[0], &store),
            "marriage→person→name"
        );
    }

    #[test]
    fn name_terminal_rule_blocks_spouse_dob() {
        let (store, obama, _) = toy();
        let result = expand(&store, &sources(&[obama]), &ExpansionConfig::default());
        let y1964 = store
            .dict()
            .find_term(kbqa_rdf::Term::Literal(kbqa_rdf::Literal::Year(1964)))
            .unwrap();
        assert!(result.predicates_between(obama, y1964).is_empty());
    }

    #[test]
    fn disabling_name_rule_reveals_weak_paths() {
        let (store, obama, _) = toy();
        let config = ExpansionConfig {
            require_name_terminal: false,
            ..Default::default()
        };
        let result = expand(&store, &sources(&[obama]), &config);
        let y1964 = store
            .dict()
            .find_term(kbqa_rdf::Term::Literal(kbqa_rdf::Literal::Year(1964)))
            .unwrap();
        let preds = result.predicates_between(obama, y1964);
        assert_eq!(preds.len(), 1);
        assert_eq!(
            result.catalog.render(preds[0], &store),
            "marriage→person→dob"
        );
    }

    #[test]
    fn pob_name_found_at_length_two() {
        let (store, obama, _) = toy();
        let result = expand(&store, &sources(&[obama]), &ExpansionConfig::default());
        let honolulu_name = store.dict().find_str_literal("Honolulu").unwrap();
        let preds = result.predicates_between(obama, honolulu_name);
        assert_eq!(preds.len(), 1);
        assert_eq!(result.catalog.render(preds[0], &store), "pob→name");
    }

    #[test]
    fn sources_restrict_expansion() {
        let (store, obama, michelle) = toy();
        let only_michelle = expand(&store, &sources(&[michelle]), &ExpansionConfig::default());
        assert!(!only_michelle.by_subject.contains_key(&obama));
        assert!(only_michelle.by_subject.contains_key(&michelle));
    }

    #[test]
    fn scan_passes_equal_k() {
        let (store, obama, _) = toy();
        let before = store.scan_passes();
        let _ = expand(&store, &sources(&[obama]), &ExpansionConfig::default());
        assert_eq!(store.scan_passes() - before, 3);
    }

    #[test]
    fn value_counts_match_reachable_objects() {
        let (store, obama, _) = toy();
        let result = expand(&store, &sources(&[obama]), &ExpansionConfig::default());
        let michelle_name = store.dict().find_str_literal("Michelle Obama").unwrap();
        let pred = result.predicates_between(obama, michelle_name)[0];
        assert_eq!(result.value_count(obama, pred), 1);
    }

    #[test]
    fn max_emitted_truncates_gracefully() {
        let (store, obama, michelle) = toy();
        let config = ExpansionConfig {
            max_emitted: 2,
            ..Default::default()
        };
        let result = expand(&store, &sources(&[obama, michelle]), &config);
        assert!(result.truncated);
        assert!(result.emitted() <= 3);
    }

    #[test]
    fn valid_k_counts_infobox_support() {
        let (store, obama, _) = toy();
        let michelle_name = store.dict().find_str_literal("Michelle Obama").unwrap();
        let y1961 = store
            .dict()
            .find_term(kbqa_rdf::Term::Literal(kbqa_rdf::Literal::Year(1961)))
            .unwrap();
        // Infobox: dob (len 1) and spouse (len 3) are meaningful.
        let infobox: FxHashSet<(NodeId, NodeId)> = [(obama, y1961), (obama, michelle_name)]
            .into_iter()
            .collect();
        let rows = valid_k(&store, &infobox, 10, &ExpansionConfig::default());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].k, 1);
        assert!(rows[0].valid >= 1, "dob should validate at k=1");
        assert!(rows[2].valid >= 1, "spouse should validate at k=3");
        // Emission at each length dominates validity (noise exists).
        assert!(rows[0].emitted >= rows[0].valid);
    }

    #[test]
    fn distinct_predicate_counting() {
        let (store, obama, michelle) = toy();
        let result = expand(
            &store,
            &sources(&[obama, michelle]),
            &ExpansionConfig::default(),
        );
        assert!(result.distinct_predicates_of_length(1) >= 3);
        assert!(result.distinct_predicates_of_length(3) >= 1);
    }
}
