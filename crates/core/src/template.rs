//! Templates: the paper's question representation.
//!
//! A template is *"a question with the mention of an entity replaced by the
//! category of the entity"* (Sec 3.2): `When was Barack Obama born?` with
//! mention `Barack Obama` conceptualized to `person` becomes
//! `when was $person born`. One question yields one template per candidate
//! concept (`t = t(q, e, c)`), and the offline learner estimates `P(p|t)`
//! per template.
//!
//! Templates are canonicalized to a single space-joined lowercase string and
//! interned to dense [`TemplateId`]s so the EM tables stay flat.

use kbqa_common::define_id;
use kbqa_common::interner::Interner;
use serde::{Deserialize, Serialize};

use kbqa_nlp::TokenizedText;
use kbqa_taxonomy::concept::slot_form;

define_id!(
    /// Dense id of an interned template.
    pub struct TemplateId
);

/// A template in canonical string form, e.g.
/// `how many people are there in $city`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Template {
    canonical: String,
}

impl Template {
    /// Derive `t(q, e, c)`: replace the mention token window `[start, end)`
    /// of `question` with the slot form of `concept_name`.
    pub fn derive(
        question: &TokenizedText,
        mention_start: usize,
        mention_end: usize,
        concept_name: &str,
    ) -> Self {
        debug_assert!(mention_start < mention_end && mention_end <= question.len());
        let mut parts: Vec<&str> = Vec::with_capacity(question.len());
        let slot = slot_form(concept_name);
        for (i, token) in question.tokens.iter().enumerate() {
            if i == mention_start {
                parts.push(&slot);
            }
            if i < mention_start || i >= mention_end {
                parts.push(&token.text);
            }
        }
        // Mention at the very end: slot goes last.
        if mention_start == question.len() {
            parts.push(&slot);
        }
        Self {
            canonical: parts.join(" "),
        }
    }

    /// Construct directly from a canonical string (used when replaying
    /// paraphrase pools, whose patterns are already canonical).
    pub fn from_canonical(s: &str) -> Self {
        Self {
            canonical: s.to_owned(),
        }
    }

    /// The canonical string.
    pub fn as_str(&self) -> &str {
        &self.canonical
    }

    /// The slot token (`$city`), if present.
    pub fn slot(&self) -> Option<&str> {
        self.canonical.split(' ').find(|w| w.starts_with('$'))
    }
}

impl std::fmt::Display for Template {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical)
    }
}

/// Bidirectional template ⇄ id catalog.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TemplateCatalog {
    interner: Interner,
}

impl TemplateCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a template.
    pub fn intern(&mut self, template: &Template) -> TemplateId {
        TemplateId::new(self.interner.intern(template.as_str()))
    }

    /// Look up without interning.
    pub fn get(&self, template: &Template) -> Option<TemplateId> {
        self.interner.get(template.as_str()).map(TemplateId::new)
    }

    /// Resolve an id back to its canonical string.
    pub fn resolve(&self, id: TemplateId) -> &str {
        self.interner.resolve(id.raw())
    }

    /// Number of distinct templates.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// Iterate `(id, canonical)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TemplateId, &str)> {
        self.interner.iter().map(|(i, s)| (TemplateId::new(i), s))
    }

    /// Rebuild lookup tables after deserialization.
    pub fn rebuild_index(&mut self) {
        self.interner.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_nlp::tokenize;

    #[test]
    fn derive_replaces_mention_with_slot() {
        let q = tokenize("How many people are there in Honolulu?");
        let t = Template::derive(&q, 6, 7, "city");
        assert_eq!(t.as_str(), "how many people are there in $city");
        assert_eq!(t.slot(), Some("$city"));
    }

    #[test]
    fn derive_mid_question_mention() {
        let q = tokenize("When was Barack Obama born?");
        let t = Template::derive(&q, 2, 4, "person");
        assert_eq!(t.as_str(), "when was $person born");
    }

    #[test]
    fn derive_possessive_question() {
        let q = tokenize("Who is Barack Obama's wife?");
        // tokens: who is barack obama 's wife
        let t = Template::derive(&q, 2, 4, "politician");
        assert_eq!(t.as_str(), "who is $politician 's wife");
    }

    #[test]
    fn derive_mention_at_start() {
        let q = tokenize("Honolulu population");
        let t = Template::derive(&q, 0, 1, "city");
        assert_eq!(t.as_str(), "$city population");
    }

    #[test]
    fn different_concepts_different_templates() {
        let q = tokenize("When was Barack Obama born?");
        let person = Template::derive(&q, 2, 4, "person");
        let politician = Template::derive(&q, 2, 4, "politician");
        assert_ne!(person, politician);
    }

    #[test]
    fn matches_paraphrase_pool_canonical_form() {
        // The corpus pool pattern "when was $e born" instantiated with an
        // entity and re-derived must round-trip to the pool's canonical form
        // with $e → $person.
        let q = tokenize("when was Alena Vostin born");
        let t = Template::derive(&q, 2, 4, "person");
        assert_eq!(t.as_str(), "when was $person born");
    }

    #[test]
    fn catalog_interning_roundtrip() {
        let mut catalog = TemplateCatalog::new();
        let q = tokenize("what is the population of Honolulu");
        let t = Template::derive(&q, 5, 6, "city");
        let id = catalog.intern(&t);
        assert_eq!(catalog.intern(&t), id);
        assert_eq!(catalog.get(&t), Some(id));
        assert_eq!(catalog.resolve(id), "what is the population of $city");
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn catalog_get_does_not_insert() {
        let catalog = TemplateCatalog::new();
        let t = Template::from_canonical("who is $person");
        assert_eq!(catalog.get(&t), None);
        assert!(catalog.is_empty());
    }

    #[test]
    fn display_is_canonical() {
        let t = Template::from_canonical("who is $person 's wife");
        assert_eq!(t.to_string(), "who is $person 's wife");
    }
}
