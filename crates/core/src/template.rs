//! Templates: the paper's question representation.
//!
//! A template is *"a question with the mention of an entity replaced by the
//! category of the entity"* (Sec 3.2): `When was Barack Obama born?` with
//! mention `Barack Obama` conceptualized to `person` becomes
//! `when was $person born`. One question yields one template per candidate
//! concept (`t = t(q, e, c)`), and the offline learner estimates `P(p|t)`
//! per template.
//!
//! Templates are canonicalized to a single space-joined lowercase string and
//! interned to dense [`TemplateId`]s so the EM tables stay flat.

use kbqa_common::define_id;
use kbqa_common::hash::FxHashMap;
use kbqa_common::interner::Interner;
use serde::{Deserialize, Serialize};

use kbqa_nlp::TokenizedText;
use kbqa_taxonomy::concept::{slot_form, ConceptId};
use kbqa_taxonomy::ConceptNetwork;

define_id!(
    /// Dense id of an interned template.
    pub struct TemplateId
);

/// A template in canonical string form, e.g.
/// `how many people are there in $city`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Template {
    canonical: String,
}

impl Template {
    /// Derive `t(q, e, c)`: replace the mention token window `[start, end)`
    /// of `question` with the slot form of `concept_name`.
    pub fn derive(
        question: &TokenizedText,
        mention_start: usize,
        mention_end: usize,
        concept_name: &str,
    ) -> Self {
        debug_assert!(mention_start < mention_end && mention_end <= question.len());
        let mut parts: Vec<&str> = Vec::with_capacity(question.len());
        let slot = slot_form(concept_name);
        for (i, token) in question.tokens.iter().enumerate() {
            if i == mention_start {
                parts.push(&slot);
            }
            if i < mention_start || i >= mention_end {
                parts.push(&token.text);
            }
        }
        // Mention at the very end: slot goes last.
        if mention_start == question.len() {
            parts.push(&slot);
        }
        Self {
            canonical: parts.join(" "),
        }
    }

    /// Construct directly from a canonical string (used when replaying
    /// paraphrase pools, whose patterns are already canonical).
    pub fn from_canonical(s: &str) -> Self {
        Self {
            canonical: s.to_owned(),
        }
    }

    /// The canonical string.
    pub fn as_str(&self) -> &str {
        &self.canonical
    }

    /// The slot token (`$city`), if present.
    pub fn slot(&self) -> Option<&str> {
        self.canonical.split(' ').find(|w| w.starts_with('$'))
    }
}

impl std::fmt::Display for Template {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical)
    }
}

/// The question-form marker replacing the concept slot inside an indexed
/// form. U+0001 can never appear in a canonical template: the tokenizer only
/// emits alphanumeric runs and `'`-clitics, and slot words start with `$`.
const FORM_MARKER: &str = "\u{1}";

/// Monotonic source of catalog generations (see
/// [`TemplateCatalog::generation`]).
fn next_generation() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static GENERATION: AtomicU64 = AtomicU64::new(1);
    GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// Bidirectional template ⇄ id catalog, with a precompiled
/// **question-form index** for the online hot path.
///
/// A canonical template `how many people are there in $city` factors into a
/// *question form* (`how many people are there in ⟨slot⟩`) and a *slot*
/// (`$city`). The online engine derives one candidate template per concept
/// for every grounded mention; with only the string interner it would have
/// to format and hash the full template string once per concept per request.
/// The form index splits that lookup: the form — which depends only on the
/// question and the mention window — resolves to a symbol **once**, and each
/// concept then costs a single `(form, slot)` map probe. Both steps reuse
/// caller-owned buffers, so the steady state allocates nothing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TemplateCatalog {
    interner: Interner,
    /// Slot words (`$city`) → dense slot symbol. Derived; rebuilt on load.
    #[serde(skip)]
    slots: Interner,
    /// Question forms (slot replaced by [`FORM_MARKER`]) → form symbol.
    #[serde(skip)]
    forms: Interner,
    /// `(form symbol, slot symbol)` → template id.
    #[serde(skip)]
    by_form_slot: FxHashMap<(u32, u32), TemplateId>,
    /// Identity of the derived index, for caches layered on top (the
    /// engine's per-scratch concept→slot table): fresh catalogs and every
    /// mutation get a new generation, so two catalogs share one only when
    /// they are clones with identical content. Serde-skipped: a deserialized
    /// catalog has an empty index until [`TemplateCatalog::rebuild_index`].
    #[serde(skip)]
    generation: u64,
}

impl Default for TemplateCatalog {
    fn default() -> Self {
        Self {
            interner: Interner::new(),
            slots: Interner::new(),
            forms: Interner::new(),
            by_form_slot: FxHashMap::default(),
            generation: next_generation(),
        }
    }
}

impl TemplateCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a template.
    pub fn intern(&mut self, template: &Template) -> TemplateId {
        let before = self.interner.len();
        let id = TemplateId::new(self.interner.intern(template.as_str()));
        if self.interner.len() > before {
            self.index_template(id);
            self.generation = next_generation();
        }
        id
    }

    /// Look up without interning.
    pub fn get(&self, template: &Template) -> Option<TemplateId> {
        self.interner.get(template.as_str()).map(TemplateId::new)
    }

    /// Resolve an id back to its canonical string.
    pub fn resolve(&self, id: TemplateId) -> &str {
        self.interner.resolve(id.raw())
    }

    /// Number of distinct templates.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// Iterate `(id, canonical)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TemplateId, &str)> {
        self.interner.iter().map(|(i, s)| (TemplateId::new(i), s))
    }

    /// Rebuild lookup tables (string interner buckets plus the form index)
    /// after deserialization.
    pub fn rebuild_index(&mut self) {
        self.interner.rebuild_index();
        self.slots = Interner::new();
        self.forms = Interner::new();
        self.by_form_slot = FxHashMap::default();
        for i in 0..self.interner.len() {
            self.index_template(TemplateId::new(i as u32));
        }
        self.generation = next_generation();
    }

    /// Identity of the derived form index. Changes on every mutation, so a
    /// cache keyed by it can never serve entries from a different catalog
    /// state.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The symbol of a slot word (`$city`), if any indexed template uses it.
    /// `None` means **no** template mentions the concept — the engine can
    /// skip the concept without hashing anything else.
    pub fn slot_symbol(&self, slot: &str) -> Option<u32> {
        self.slots.get(slot)
    }

    /// Resolve the question form of a mention window: the template the
    /// question would derive with the slot left abstract. `buf` is the
    /// caller's reusable assembly buffer. `None` means no template in the
    /// catalog has this form under **any** concept.
    pub fn form_symbol(
        &self,
        question: &TokenizedText,
        mention_start: usize,
        mention_end: usize,
        buf: &mut String,
    ) -> Option<u32> {
        debug_assert!(mention_start < mention_end && mention_end <= question.len());
        let before = question.tokens[..mention_start].iter();
        let after = question.tokens[mention_end..].iter();
        let words = before
            .map(|t| t.text.as_str())
            .chain(std::iter::once(FORM_MARKER))
            .chain(after.map(|t| t.text.as_str()));
        self.forms.get_words(words, buf)
    }

    /// The template interned for `(form, slot)`, if any. Together with
    /// [`TemplateCatalog::form_symbol`] and [`TemplateCatalog::slot_symbol`]
    /// this is the precompiled equivalent of deriving the template string
    /// and calling [`TemplateCatalog::get`].
    pub fn template_for(&self, form: u32, slot: u32) -> Option<TemplateId> {
        self.by_form_slot.get(&(form, slot)).copied()
    }

    /// Register a template in the form index. Templates without a slot word
    /// are not indexed: `Template::derive` always inserts one, so they can
    /// never be produced by a mention lookup. Only the *first* slot word is
    /// abstracted — the same position [`Template::slot`] reports — so a
    /// pathological canonical with several `$`-words keys on the first.
    fn index_template(&mut self, id: TemplateId) {
        let canonical = self.interner.resolve(id.raw()).to_owned();
        let Some(slot_pos) = canonical.split(' ').position(|w| w.starts_with('$')) else {
            return;
        };
        let slot = canonical.split(' ').nth(slot_pos).expect("slot in bounds");
        let slot_sym = self.slots.intern(slot);
        let form: Vec<&str> = canonical
            .split(' ')
            .enumerate()
            .map(|(i, w)| if i == slot_pos { FORM_MARKER } else { w })
            .collect();
        let form_sym = self.forms.intern(&form.join(" "));
        self.by_form_slot.insert((form_sym, slot_sym), id);
    }
}

/// A memoized `concept → slot symbol` table over one catalog state.
///
/// Rendering a concept as its slot word (`city` → `$city`) allocates a
/// string; the online engine does it for every candidate concept of every
/// grounded mention. This table pays that cost once per concept: after
/// warmup, a lookup is a vector index. Entries are validated against the
/// catalog's [`TemplateCatalog::generation`], so reusing one table across
/// requests — or accidentally across catalogs — can never return a symbol
/// from a stale index (the table silently resets instead).
#[derive(Clone, Debug, Default)]
pub struct SlotTable {
    generation: u64,
    /// Indexed by `ConceptId`: `None` = not yet computed; `Some(None)` = the
    /// concept's slot appears in no template; `Some(Some(sym))` = cached.
    slots: Vec<Option<Option<u32>>>,
}

impl SlotTable {
    /// Empty table; entries materialize on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The slot symbol of `concept` under `catalog`, or `None` when no
    /// template mentions the concept. Cached after the first call per
    /// catalog generation.
    pub fn slot_for(
        &mut self,
        catalog: &TemplateCatalog,
        network: &ConceptNetwork,
        concept: ConceptId,
    ) -> Option<u32> {
        if self.generation != catalog.generation() {
            self.slots.clear();
            self.generation = catalog.generation();
        }
        let index = concept.index();
        if index >= self.slots.len() {
            self.slots.resize(index + 1, None);
        }
        if let Some(cached) = self.slots[index] {
            return cached;
        }
        let slot = slot_form(network.concept_name(concept));
        let sym = catalog.slot_symbol(&slot);
        self.slots[index] = Some(sym);
        sym
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_nlp::tokenize;

    #[test]
    fn derive_replaces_mention_with_slot() {
        let q = tokenize("How many people are there in Honolulu?");
        let t = Template::derive(&q, 6, 7, "city");
        assert_eq!(t.as_str(), "how many people are there in $city");
        assert_eq!(t.slot(), Some("$city"));
    }

    #[test]
    fn derive_mid_question_mention() {
        let q = tokenize("When was Barack Obama born?");
        let t = Template::derive(&q, 2, 4, "person");
        assert_eq!(t.as_str(), "when was $person born");
    }

    #[test]
    fn derive_possessive_question() {
        let q = tokenize("Who is Barack Obama's wife?");
        // tokens: who is barack obama 's wife
        let t = Template::derive(&q, 2, 4, "politician");
        assert_eq!(t.as_str(), "who is $politician 's wife");
    }

    #[test]
    fn derive_mention_at_start() {
        let q = tokenize("Honolulu population");
        let t = Template::derive(&q, 0, 1, "city");
        assert_eq!(t.as_str(), "$city population");
    }

    #[test]
    fn different_concepts_different_templates() {
        let q = tokenize("When was Barack Obama born?");
        let person = Template::derive(&q, 2, 4, "person");
        let politician = Template::derive(&q, 2, 4, "politician");
        assert_ne!(person, politician);
    }

    #[test]
    fn matches_paraphrase_pool_canonical_form() {
        // The corpus pool pattern "when was $e born" instantiated with an
        // entity and re-derived must round-trip to the pool's canonical form
        // with $e → $person.
        let q = tokenize("when was Alena Vostin born");
        let t = Template::derive(&q, 2, 4, "person");
        assert_eq!(t.as_str(), "when was $person born");
    }

    #[test]
    fn catalog_interning_roundtrip() {
        let mut catalog = TemplateCatalog::new();
        let q = tokenize("what is the population of Honolulu");
        let t = Template::derive(&q, 5, 6, "city");
        let id = catalog.intern(&t);
        assert_eq!(catalog.intern(&t), id);
        assert_eq!(catalog.get(&t), Some(id));
        assert_eq!(catalog.resolve(id), "what is the population of $city");
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn catalog_get_does_not_insert() {
        let catalog = TemplateCatalog::new();
        let t = Template::from_canonical("who is $person");
        assert_eq!(catalog.get(&t), None);
        assert!(catalog.is_empty());
    }

    #[test]
    fn display_is_canonical() {
        let t = Template::from_canonical("who is $person 's wife");
        assert_eq!(t.to_string(), "who is $person 's wife");
    }

    /// The precompiled `(form, slot)` lookup must agree with deriving the
    /// template string and calling `get` — the equivalence the optimized
    /// kernel rests on.
    #[test]
    fn form_index_matches_string_lookup() {
        let mut catalog = TemplateCatalog::new();
        let q = tokenize("how many people are there in Honolulu");
        let city = catalog.intern(&Template::derive(&q, 6, 7, "city"));
        let location = catalog.intern(&Template::derive(&q, 6, 7, "location"));
        let mut buf = String::new();

        let form = catalog
            .form_symbol(&q, 6, 7, &mut buf)
            .expect("form indexed");
        let city_slot = catalog.slot_symbol("$city").expect("slot indexed");
        let location_slot = catalog.slot_symbol("$location").unwrap();
        assert_eq!(catalog.template_for(form, city_slot), Some(city));
        assert_eq!(catalog.template_for(form, location_slot), Some(location));
        // A concept no template mentions has no slot symbol at all.
        assert_eq!(catalog.slot_symbol("$galaxy"), None);
        // A window with no indexed form misses before any slot is consulted.
        assert_eq!(catalog.form_symbol(&q, 0, 2, &mut buf), None);
        // A different window over the same question is a different form.
        let wrong_window = catalog.form_symbol(&q, 5, 7, &mut buf);
        assert!(
            wrong_window.is_none()
                || catalog
                    .template_for(wrong_window.unwrap(), city_slot)
                    .is_none()
        );
    }

    #[test]
    fn form_index_survives_rebuild_and_bumps_generation() {
        let mut catalog = TemplateCatalog::new();
        let q = tokenize("what is the population of Honolulu");
        let id = catalog.intern(&Template::derive(&q, 5, 6, "city"));
        let g1 = catalog.generation();
        catalog.rebuild_index();
        let g2 = catalog.generation();
        assert_ne!(g1, g2, "rebuild must invalidate layered caches");
        let mut buf = String::new();
        let form = catalog.form_symbol(&q, 5, 6, &mut buf).unwrap();
        let slot = catalog.slot_symbol("$city").unwrap();
        assert_eq!(catalog.template_for(form, slot), Some(id));
        // Re-interning an existing template does not bump the generation.
        catalog.intern(&Template::derive(&q, 5, 6, "city"));
        assert_eq!(catalog.generation(), g2);
    }

    #[test]
    fn slot_table_caches_per_generation() {
        let mut nb = kbqa_taxonomy::NetworkBuilder::new();
        let city = nb.concept("city");
        let fruit = nb.concept("fruit");
        let network = nb.build();

        let mut catalog = TemplateCatalog::new();
        let q = tokenize("what is the population of Honolulu");
        catalog.intern(&Template::derive(&q, 5, 6, "city"));

        let mut table = SlotTable::new();
        let city_sym = table.slot_for(&catalog, &network, city);
        assert_eq!(city_sym, catalog.slot_symbol("$city"));
        assert!(city_sym.is_some());
        assert_eq!(table.slot_for(&catalog, &network, fruit), None);
        // Cached answers repeat.
        assert_eq!(table.slot_for(&catalog, &network, city), city_sym);
        // A catalog mutation invalidates the table.
        catalog.intern(&Template::derive(&q, 5, 6, "fruit"));
        assert!(table.slot_for(&catalog, &network, fruit).is_some());
    }
}
