//! BFQ-variant questions: ranking, comparison, listing (paper Sec 1).
//!
//! The paper's opening claim: *"If we can answer BFQs, then we will be able
//! to answer other types of questions, such as 1) ranking questions: which
//! city has the 3rd largest population?; 2) comparison questions: which city
//! has more people, Honolulu or New Jersey?; 3) listing questions: list
//! cities ordered by population"*. This module cashes that claim in: each
//! variant is compiled into a set of *probe BFQs* answered by the learned
//! engine, then aggregated (ranked / compared / listed) numerically.
//!
//! The probes go through the full template machinery — `what is the
//! population of X?`, `how many people are there in X?` — so the variant
//! layer inherits KBQA's paraphrase coverage instead of hard-coding
//! predicate names.

use serde::{Deserialize, Serialize};

use kbqa_nlp::tokenize;
use kbqa_rdf::NodeId;

use crate::engine::Answer;
use crate::service::{KbqaService, QaRequest, QaResponse, QaSystem, Refusal};

/// Variant-answering parameters.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VariantConfig {
    /// Maximum entities enumerated per concept (guards degenerate worlds).
    pub max_entities: usize,
    /// Entries returned by listing questions.
    pub list_limit: usize,
}

impl Default for VariantConfig {
    fn default() -> Self {
        Self {
            max_entities: 5_000,
            list_limit: 5,
        }
    }
}

/// A parsed variant question.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum VariantQuestion {
    /// `which <concept> has the <k> largest <attr>` (k = 1-based).
    Ranking {
        /// Subject concept word (`city`).
        concept: String,
        /// 1-based rank.
        k: usize,
        /// Ascending (`smallest`) or descending (`largest`).
        descending: bool,
        /// Attribute phrase (`population`).
        attribute: String,
    },
    /// `which <concept> has more <attr> , <a> or <b>`.
    Comparison {
        /// Subject concept word.
        concept: String,
        /// Attribute phrase (`people`).
        attribute: String,
        /// First entity mention.
        left: String,
        /// Second entity mention.
        right: String,
        /// `more` (descending) or `less/fewer`.
        more: bool,
    },
    /// `list <concept-plural> ordered by <attr>`.
    Listing {
        /// Subject concept word, singularized.
        concept: String,
        /// Attribute phrase.
        attribute: String,
    },
}

/// Parse an ordinal token: `1st`/`2nd`/`3rd`/`4th`…, `second`, `third`, …
fn parse_ordinal(word: &str) -> Option<usize> {
    match word {
        "first" => return Some(1),
        "second" => return Some(2),
        "third" => return Some(3),
        "fourth" => return Some(4),
        "fifth" => return Some(5),
        _ => {}
    }
    for suffix in ["st", "nd", "rd", "th"] {
        if let Some(digits) = word.strip_suffix(suffix) {
            if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                return digits.parse().ok();
            }
        }
    }
    None
}

/// Singularize a plural concept word (`cities` → `city`, `bands` → `band`).
fn singularize(word: &str) -> String {
    if let Some(stem) = word.strip_suffix("ies") {
        format!("{stem}y")
    } else if let Some(stem) = word.strip_suffix('s') {
        stem.to_owned()
    } else {
        word.to_owned()
    }
}

/// Parse a question into a variant form, if it is one.
pub fn parse_variant(question: &str) -> Option<VariantQuestion> {
    let tokens = tokenize(question);
    let words = tokens.words();
    let n = words.len();
    if n < 4 {
        return None;
    }

    // Listing: list <concept> ordered by <attr…>
    if words[0] == "list" && n >= 5 {
        if let Some(by_pos) = words.iter().position(|&w| w == "by") {
            if by_pos >= 3 && words[by_pos - 1] == "ordered" && by_pos + 1 < n {
                return Some(VariantQuestion::Listing {
                    concept: singularize(words[1]),
                    attribute: words[by_pos + 1..].join(" "),
                });
            }
        }
    }

    // Ranking: which <concept> has the <ordinal> largest|smallest <attr…>
    if words[0] == "which" && n >= 7 && words[2] == "has" && words[3] == "the" {
        if let Some(k) = parse_ordinal(words[4]) {
            let descending = matches!(words[5], "largest" | "biggest" | "highest" | "most");
            let ascending = matches!(words[5], "smallest" | "lowest" | "fewest" | "least");
            if (descending || ascending) && n > 6 {
                return Some(VariantQuestion::Ranking {
                    concept: words[1].to_owned(),
                    k,
                    descending,
                    attribute: words[6..].join(" "),
                });
            }
        }
    }

    // Comparison: which <concept> has more|less|fewer <attr…> <a> or <b>
    if words[0] == "which" && n >= 7 && words[2] == "has" {
        let more = matches!(words[3], "more");
        let less = matches!(words[3], "less" | "fewer");
        if more || less {
            if let Some(or_pos) = words.iter().rposition(|&w| w == "or") {
                if or_pos > 5 && or_pos + 1 < n {
                    // Attribute runs from word 4 up to the start of the first
                    // mention; without a parser we split at the point where
                    // the remaining words before "or" form the left mention.
                    // Heuristic: attribute is a single token (matches the
                    // paper's examples: "more people").
                    let attribute = words[4].to_owned();
                    let left = words[5..or_pos].join(" ");
                    let right = words[or_pos + 1..].join(" ");
                    if !left.is_empty() && !right.is_empty() {
                        return Some(VariantQuestion::Comparison {
                            concept: words[1].to_owned(),
                            attribute,
                            left,
                            right,
                            more,
                        });
                    }
                }
            }
        }
    }
    None
}

/// Answer variant questions by probing the BFQ service. Owns a (cheap)
/// service clone, so the variant layer is itself `Send + Sync` and
/// lifetime-free.
pub struct VariantQa {
    service: KbqaService,
    config: VariantConfig,
}

impl VariantQa {
    /// Wrap a service.
    pub fn new(service: KbqaService) -> Self {
        Self {
            service,
            config: VariantConfig::default(),
        }
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: VariantConfig) -> Self {
        self.config = config;
        self
    }

    /// Entities whose `category` matches the concept word.
    fn entities_of_concept(&self, concept: &str) -> Vec<NodeId> {
        let store = self.service.store();
        let Some(category) = store.dict().find_predicate("category") else {
            return Vec::new();
        };
        // Category values are capitalized words ("City"); try both forms.
        let mut out = Vec::new();
        for form in [capitalize(concept), concept.to_owned()] {
            if let Some(lit) = store.dict().find_str_literal(&form) {
                out.extend(store.subjects(category, lit));
            }
        }
        out.sort_unstable();
        out.dedup();
        out.truncate(self.config.max_entities);
        out
    }

    /// Probe the BFQ service for a numeric attribute of one entity.
    fn probe_numeric(&self, attribute: &str, entity_name: &str) -> Option<i64> {
        // Probe phrasings, most specific first; each goes through the full
        // learned-template machinery. Decomposition is disabled per request:
        // a failed probe must fail fast, not run the Sec 5 DP.
        let probes = [
            format!("what is the {attribute} of {entity_name}"),
            format!("how many {attribute} are there in {entity_name}"),
            format!("how many {attribute} does {entity_name} have"),
        ];
        for probe in &probes {
            let request = QaRequest::new(probe.as_str()).with_decompose(false);
            for answer in self.service.answer(&request).answers {
                if let Ok(v) = answer.value.parse::<i64>() {
                    return Some(v);
                }
            }
        }
        None
    }

    /// Score every entity of a concept on an attribute. Entities whose name
    /// grounds ambiguously are skipped: a probe BFQ about "Springfield"
    /// would mix the values of several Springfields and corrupt the ranking.
    fn scored_entities(&self, concept: &str, attribute: &str) -> Vec<(i64, String)> {
        let store = self.service.store();
        let mut scored = Vec::new();
        for entity in self.entities_of_concept(concept) {
            let name = store.surface(entity);
            if store.entities_named(&name).len() != 1 {
                continue;
            }
            if let Some(v) = self.probe_numeric(attribute, &name) {
                scored.push((v, name));
            }
        }
        scored
    }

    /// A ranked answer naming `name`, with variant-layer provenance and the
    /// KB node when the name grounds uniquely.
    fn named_answer(&self, name: String, score: f64, kind: &str, attribute: &str) -> Answer {
        let store = self.service.store();
        let node = match store.entities_named(&name) {
            [node] => Some(*node),
            _ => None,
        };
        let mut answer =
            Answer::ranked(name, score).with_provenance("", format!("variant:{kind}"), attribute);
        answer.node = node;
        answer
    }

    /// Answer a parsed variant question. `None` = the probes produced no
    /// usable numbers (or a genuine tie).
    pub fn answer_variant(&self, variant: &VariantQuestion) -> Option<Vec<Answer>> {
        match variant {
            VariantQuestion::Ranking {
                concept,
                k,
                descending,
                attribute,
            } => {
                let mut scored = self.scored_entities(concept, attribute);
                if *descending {
                    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                } else {
                    scored.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
                }
                let (_value, name) = scored.into_iter().nth(k.checked_sub(1)?)?;
                Some(vec![self.named_answer(name, 1.0, "ranking", attribute)])
            }
            VariantQuestion::Comparison {
                attribute,
                left,
                right,
                more,
                ..
            } => {
                let lv = self.probe_numeric(attribute, left)?;
                let rv = self.probe_numeric(attribute, right)?;
                if lv == rv {
                    return None; // genuinely tied — refuse rather than guess
                }
                let winner = if (lv > rv) == *more { left } else { right };
                // Return the canonical surface form, not the lowercased
                // mention, when the name grounds uniquely.
                let store = self.service.store();
                let canonical = match store.entities_named(winner) {
                    [node] => store.surface(*node),
                    _ => winner.clone(),
                };
                Some(vec![self.named_answer(
                    canonical,
                    1.0,
                    "comparison",
                    attribute,
                )])
            }
            VariantQuestion::Listing { concept, attribute } => {
                let mut scored = self.scored_entities(concept, attribute);
                scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                scored.truncate(self.config.list_limit);
                if scored.is_empty() {
                    return None;
                }
                let n = scored.len() as f64;
                Some(
                    scored
                        .into_iter()
                        .enumerate()
                        .map(|(i, (_, name))| {
                            self.named_answer(name, 1.0 - i as f64 / n, "listing", attribute)
                        })
                        .collect(),
                )
            }
        }
    }
}

impl QaSystem for VariantQa {
    fn name(&self) -> &str {
        "KBQA-variants"
    }

    fn answer(&self, request: &QaRequest) -> QaResponse {
        let Some(variant) = parse_variant(&request.question) else {
            // Not a ranking/comparison/listing form at all.
            return QaResponse::refused(Refusal::NoTemplateMatched);
        };
        match self.answer_variant(&variant) {
            Some(answers) => QaResponse::from_answers(answers),
            None => QaResponse::refused(Refusal::EmptyValueSet),
        }
    }
}

fn capitalize(word: &str) -> String {
    let mut chars = word.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ranking_questions() {
        let v = parse_variant("which city has the 3rd largest population").unwrap();
        assert_eq!(
            v,
            VariantQuestion::Ranking {
                concept: "city".into(),
                k: 3,
                descending: true,
                attribute: "population".into(),
            }
        );
        let v = parse_variant("which country has the second smallest area").unwrap();
        assert_eq!(
            v,
            VariantQuestion::Ranking {
                concept: "country".into(),
                k: 2,
                descending: false,
                attribute: "area".into(),
            }
        );
    }

    #[test]
    fn parses_comparison_questions() {
        let v = parse_variant("which city has more people , Honolulu or New Jersey").unwrap();
        assert_eq!(
            v,
            VariantQuestion::Comparison {
                concept: "city".into(),
                attribute: "people".into(),
                left: "honolulu".into(),
                right: "new jersey".into(),
                more: true,
            }
        );
    }

    #[test]
    fn parses_listing_questions() {
        let v = parse_variant("list cities ordered by population").unwrap();
        assert_eq!(
            v,
            VariantQuestion::Listing {
                concept: "city".into(),
                attribute: "population".into(),
            }
        );
    }

    #[test]
    fn rejects_plain_bfqs_and_noise() {
        assert!(parse_variant("what is the population of Honolulu").is_none());
        assert!(parse_variant("why is the sky blue").is_none());
        assert!(parse_variant("").is_none());
        assert!(parse_variant("which city has the best food").is_none());
    }

    #[test]
    fn ordinal_parsing() {
        assert_eq!(parse_ordinal("1st"), Some(1));
        assert_eq!(parse_ordinal("2nd"), Some(2));
        assert_eq!(parse_ordinal("3rd"), Some(3));
        assert_eq!(parse_ordinal("12th"), Some(12));
        assert_eq!(parse_ordinal("third"), Some(3));
        assert_eq!(parse_ordinal("rd"), None);
        assert_eq!(parse_ordinal("fast"), None);
        assert_eq!(parse_ordinal("x1st"), None);
    }

    #[test]
    fn singularization() {
        assert_eq!(singularize("cities"), "city");
        assert_eq!(singularize("bands"), "band");
        assert_eq!(singularize("countries"), "country");
        assert_eq!(singularize("person"), "person");
    }
}
