//! The online answering procedure (paper Sec 3.3) — the inference kernel.
//!
//! Given a user question `q₀`, compute
//! `P(v|q₀) = Σ_{e,t,p} P(v|e,p)·P(p|t)·P(t|e,q₀)·P(e|q₀)` (Eq 7) and return
//! the argmax value. The enumeration mirrors the paper's complexity
//! argument: entities per question, concepts per entity, and values per
//! (entity, predicate) are bounded constants, so the run is `O(|P|)` in the
//! number of predicates a template distributes over.
//!
//! The engine *refuses* when any stage of the enumeration has no support —
//! the behaviour behind the `#pro` column in the QALD tables: a
//! high-precision system answers fewer questions rather than guessing. Each
//! refusal carries its cause as a [`Refusal`].
//!
//! [`QaEngine`] borrows its substrate for a lifetime; it is the internal
//! kernel that [`crate::service::KbqaService`] wraps for serving. New
//! integrations should talk to the service, not the engine.

use std::borrow::Cow;

use kbqa_common::hash::FxHashMap;
use kbqa_common::topk::TopK;
use serde::{Deserialize, Serialize};

use kbqa_nlp::{tokenize, GazetteerNer, Mention, TokenizedText};
use kbqa_rdf::{NodeId, TripleStore};
use kbqa_taxonomy::Conceptualizer;

use crate::decompose::PatternIndex;
use crate::learner::LearnedModel;
use crate::model;
use crate::service::{QaRequest, QaResponse, Refusal};

/// Online engine parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Ranked answers to retain.
    pub top_k: usize,
    /// Skip predicates with `P(p|t)` below this mass (precision guard; the
    /// paper notes KBQA "uses a relatively strict rule for template
    /// matching").
    pub min_theta: f64,
    /// Concepts considered per entity mention.
    pub max_concepts: usize,
    /// Attempt complex-question decomposition when direct BFQ answering
    /// finds nothing (requires a pattern index).
    pub decompose: bool,
    /// Values carried between decomposition steps.
    pub chain_width: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            top_k: 5,
            min_theta: 0.05,
            max_concepts: 4,
            decompose: true,
            chain_width: 3,
        }
    }
}

/// A ranked answer with provenance (which entity/template/predicate
/// produced it) — the paper's Example 1 walk, made inspectable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Answer {
    /// The answer value's surface form.
    pub value: String,
    /// The value node, when the answer came from a KB lookup.
    pub node: Option<NodeId>,
    /// Accumulated probability mass (unnormalized posterior).
    pub score: f64,
    /// Surface of the grounded question entity.
    pub entity: String,
    /// Canonical template that matched (or a system-specific descriptor for
    /// non-template systems).
    pub template: String,
    /// Rendered predicate path (`marriage→person→name`).
    pub predicate: String,
}

impl Answer {
    /// A bare ranked value without provenance, for systems (or tests) that
    /// only score surface strings.
    pub fn ranked(value: impl Into<String>, score: f64) -> Self {
        Self {
            value: value.into(),
            node: None,
            score,
            entity: String::new(),
            template: String::new(),
            predicate: String::new(),
        }
    }

    /// Attach provenance to a ranked value.
    pub fn with_provenance(
        mut self,
        entity: impl Into<String>,
        template: impl Into<String>,
        predicate: impl Into<String>,
    ) -> Self {
        self.entity = entity.into();
        self.template = template.into();
        self.predicate = predicate.into();
        self
    }
}

/// Per-question uncertainty statistics (paper Table 6).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChoiceStats {
    /// Candidate entities for the question (`P(e|q)` choices).
    pub entities: usize,
    /// Templates per entity-question pair, averaged (`P(t|e,q)` choices).
    pub templates_per_pair: f64,
    /// Predicates per matched template, averaged (`P(p|t)` choices).
    pub predicates_per_template: f64,
    /// Values per (entity, predicate), averaged (`P(v|e,p)` choices).
    pub values_per_pair: f64,
}

/// The KBQA online engine (the inference kernel behind
/// [`crate::service::KbqaService`]).
pub struct QaEngine<'a> {
    store: &'a TripleStore,
    conceptualizer: &'a Conceptualizer,
    model: &'a LearnedModel,
    ner: Cow<'a, GazetteerNer>,
    pattern_index: Option<Cow<'a, PatternIndex>>,
    config: EngineConfig,
}

impl<'a> QaEngine<'a> {
    /// Build an engine over a store, taxonomy and learned model. The NER
    /// gazetteer is derived from the store's name index — an O(names) cost;
    /// services should derive it once and use [`QaEngine::with_shared`].
    pub fn new(
        store: &'a TripleStore,
        conceptualizer: &'a Conceptualizer,
        model: &'a LearnedModel,
    ) -> Self {
        Self {
            store,
            conceptualizer,
            model,
            ner: Cow::Owned(GazetteerNer::from_store(store)),
            pattern_index: None,
            config: EngineConfig::default(),
        }
    }

    /// Build an engine borrowing every component — free construction over
    /// pre-built artifacts.
    pub fn with_shared(
        store: &'a TripleStore,
        conceptualizer: &'a Conceptualizer,
        model: &'a LearnedModel,
        ner: &'a GazetteerNer,
    ) -> Self {
        Self {
            store,
            conceptualizer,
            model,
            ner: Cow::Borrowed(ner),
            pattern_index: None,
            config: EngineConfig::default(),
        }
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach an owned corpus pattern index enabling complex-question
    /// decomposition (Sec 5).
    pub fn with_pattern_index(mut self, index: PatternIndex) -> Self {
        self.pattern_index = Some(Cow::Owned(index));
        self
    }

    /// Attach a borrowed pattern index (the service path).
    pub fn with_pattern_index_ref(mut self, index: &'a PatternIndex) -> Self {
        self.pattern_index = Some(Cow::Borrowed(index));
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The pattern index, when attached.
    pub fn pattern_index(&self) -> Option<&PatternIndex> {
        self.pattern_index.as_deref()
    }

    /// The underlying store.
    pub fn store(&self) -> &TripleStore {
        self.store
    }

    /// The NER in use.
    pub fn ner(&self) -> &GazetteerNer {
        &self.ner
    }

    /// A reborrowed engine running under a different configuration — how
    /// per-request overrides run without touching shared state.
    fn reconfigured(&self, config: EngineConfig) -> QaEngine<'_> {
        QaEngine {
            store: self.store,
            conceptualizer: self.conceptualizer,
            model: self.model,
            ner: Cow::Borrowed(self.ner.as_ref()),
            pattern_index: self.pattern_index.as_deref().map(Cow::Borrowed),
            config,
        }
    }

    /// Answer a question as a BFQ: the Eq (7) enumeration. Returns ranked
    /// answers with provenance; empty = refusal (use
    /// [`QaEngine::answer_bfq_explained`] for the cause).
    pub fn answer_bfq(&self, question: &str) -> Vec<Answer> {
        self.answer_bfq_explained(question).unwrap_or_default()
    }

    /// BFQ answering with the refusal cause on the error path.
    pub fn answer_bfq_explained(&self, question: &str) -> Result<Vec<Answer>, Refusal> {
        let tokens = tokenize(question);
        self.bfq_kernel(&tokens)
    }

    /// BFQ answering over pre-tokenized text (the decomposition DP calls
    /// this on substrings).
    pub fn answer_bfq_tokens(&self, tokens: &TokenizedText) -> Vec<Answer> {
        self.bfq_kernel(tokens).unwrap_or_default()
    }

    /// The Eq (7) enumeration with refusal tracking: each stage that comes
    /// up empty names itself, in pipeline order.
    fn bfq_kernel(&self, tokens: &TokenizedText) -> Result<Vec<Answer>, Refusal> {
        if tokens.is_empty() {
            return Err(Refusal::NoEntityGrounded);
        }
        let groundings = self.groundings(tokens);
        if groundings.is_empty() {
            return Err(Refusal::NoEntityGrounded);
        }
        let p_entity = model::entity_probability(groundings.len());

        struct Best {
            score: f64,
            entity: NodeId,
            template: crate::template::TemplateId,
            pred: crate::catalog::PredId,
        }
        let mut scores: FxHashMap<NodeId, f64> = FxHashMap::default();
        let mut provenance: FxHashMap<NodeId, Best> = FxHashMap::default();
        let mut any_template = false;
        let mut any_predicate = false;

        for (entity, mention) in &groundings {
            let templates = model::templates_for_mention(
                tokens,
                mention,
                *entity,
                self.conceptualizer,
                self.config.max_concepts,
            );
            for (template, p_template) in templates {
                let Some(tid) = self.model.templates.get(&template) else {
                    continue;
                };
                any_template = true;
                for &(pred, theta) in self.model.theta.predicates_for(tid) {
                    if theta < self.config.min_theta {
                        break; // rows are sorted descending
                    }
                    any_predicate = true;
                    let path = self.model.predicates.resolve(pred);
                    for (value, p_value) in model::value_distribution(self.store, *entity, path) {
                        let contribution = p_entity * p_template * theta * p_value;
                        let total = scores.entry(value).or_insert(0.0);
                        *total += contribution;
                        let better = provenance
                            .get(&value)
                            .map(|b| contribution > b.score)
                            .unwrap_or(true);
                        if better {
                            provenance.insert(
                                value,
                                Best {
                                    score: contribution,
                                    entity: *entity,
                                    template: tid,
                                    pred,
                                },
                            );
                        }
                    }
                }
            }
        }

        if scores.is_empty() {
            return Err(if !any_template {
                Refusal::NoTemplateMatched
            } else if !any_predicate {
                Refusal::NoPredicateAboveTheta
            } else {
                Refusal::EmptyValueSet
            });
        }

        let mut top = TopK::new(self.config.top_k);
        for (value, score) in scores {
            top.push(score, value);
        }
        Ok(top
            .into_sorted_vec()
            .into_iter()
            .map(|(score, node)| {
                let best = &provenance[&node];
                Answer {
                    value: self.store.surface(node),
                    node: Some(node),
                    score,
                    entity: self.store.surface(best.entity),
                    template: self.model.templates.resolve(best.template).to_owned(),
                    predicate: self.model.predicates.render(best.pred, self.store),
                }
            })
            .collect())
    }

    /// Answer a request: direct BFQ inference, decomposition fallback, and
    /// per-request configuration overrides. This is the full online
    /// procedure the service exposes.
    pub fn answer_request(&self, request: &QaRequest) -> QaResponse {
        let config = request.effective_config(&self.config);
        let engine = self.reconfigured(config);
        let tokens = tokenize(&request.question);
        let mut response = match engine.bfq_kernel(&tokens) {
            Ok(answers) => QaResponse::from_answers(answers),
            Err(refusal) => {
                let decomposed = if engine.config.decompose {
                    engine.pattern_index().and_then(|index| {
                        crate::decompose::answer_complex(&engine, index, &request.question)
                    })
                } else {
                    None
                };
                match decomposed {
                    Some(mut answers) if !answers.is_empty() => {
                        // The chain executor carries up to chain_width
                        // candidates; the response contract is top_k.
                        answers.truncate(engine.config.top_k);
                        QaResponse::from_answers(answers)
                    }
                    // Keep the direct-path cause: it names the first stage
                    // that failed, which is the actionable signal.
                    _ => QaResponse::refused(refusal),
                }
            }
        };
        if request.explain {
            response.stats = Some(engine.question_statistics(&request.question));
        }
        response
    }

    /// Answer a bare question with this engine's defaults.
    pub fn answer_question(&self, question: &str) -> QaResponse {
        self.answer_request(&QaRequest::new(question))
    }

    /// Can this text be answered as a primitive BFQ? (The δ of Eq 28.)
    pub fn is_answerable(&self, tokens: &TokenizedText) -> bool {
        !self.answer_bfq_tokens(tokens).is_empty()
    }

    /// Distinct `(entity, widest mention)` groundings of a question.
    fn groundings(&self, tokens: &TokenizedText) -> Vec<(NodeId, Mention)> {
        let mut best: FxHashMap<NodeId, Mention> = FxHashMap::default();
        for m in self.ner.find_all_mentions(tokens) {
            for &node in &m.nodes {
                let keep = match best.get(&node) {
                    Some(prev) => m.len() > prev.len(),
                    None => true,
                };
                if keep {
                    best.insert(node, m.clone());
                }
            }
        }
        let mut out: Vec<(NodeId, Mention)> = best.into_iter().collect();
        out.sort_unstable_by_key(|(n, _)| *n);
        out
    }

    /// Table 6 statistics for one question: how many choices each random
    /// variable has.
    pub fn question_statistics(&self, question: &str) -> ChoiceStats {
        let tokens = tokenize(question);
        let groundings = self.groundings(&tokens);
        let mut template_counts: Vec<usize> = Vec::new();
        let mut predicate_counts: Vec<usize> = Vec::new();
        let mut value_counts: Vec<usize> = Vec::new();
        for (entity, mention) in &groundings {
            let templates = model::templates_for_mention(
                &tokens,
                mention,
                *entity,
                self.conceptualizer,
                usize::MAX,
            );
            template_counts.push(templates.len());
            for (template, _) in &templates {
                if let Some(tid) = self.model.templates.get(template) {
                    let row = self.model.theta.predicates_for(tid);
                    if !row.is_empty() {
                        predicate_counts.push(row.len());
                    }
                    for &(pred, _) in row {
                        let path = self.model.predicates.resolve(pred);
                        let n = kbqa_rdf::path::object_count_via_path(self.store, *entity, path);
                        if n > 0 {
                            value_counts.push(n);
                        }
                    }
                }
            }
        }
        let avg = |v: &[usize]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<usize>() as f64 / v.len() as f64
            }
        };
        ChoiceStats {
            entities: groundings.len(),
            templates_per_pair: avg(&template_counts),
            predicates_per_template: avg(&predicate_counts),
            values_per_pair: avg(&value_counts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_corpus::{CorpusConfig, QaCorpus, World, WorldConfig};

    use crate::learner::{Learner, LearnerConfig};

    fn setup() -> (World, LearnedModel) {
        let world = World::generate(WorldConfig::tiny(42));
        let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 800));
        let ner = GazetteerNer::from_store(&world.store);
        let learner = Learner::new(
            &world.store,
            &world.conceptualizer,
            &ner,
            &world.predicate_classes,
        );
        let pairs: Vec<(&str, &str)> = corpus
            .pairs
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str()))
            .collect();
        let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
        (world, model)
    }

    #[test]
    fn answers_population_questions_correctly() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let pop = world.intent_by_name("city_population").unwrap();
        let mut right = 0;
        let mut asked = 0;
        for &city in world.subjects_of(pop).iter().take(10) {
            let gold = world.gold_values(pop, city);
            if gold.is_empty() {
                continue;
            }
            asked += 1;
            let q = format!("how many people are there in {}", world.store.surface(city));
            let answers = engine.answer_bfq(&q);
            if answers
                .first()
                .map(|a| gold.contains(&a.value))
                .unwrap_or(false)
            {
                right += 1;
            }
        }
        assert!(asked >= 5);
        assert!(
            right * 10 >= asked * 7,
            "only {right}/{asked} population questions answered correctly"
        );
    }

    #[test]
    fn answers_carry_provenance() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world
            .subjects_of(pop)
            .iter()
            .copied()
            .find(|&c| !world.gold_values(pop, c).is_empty())
            .unwrap();
        let q = format!("what is the population of {}", world.store.surface(city));
        let answers = engine.answer_bfq(&q);
        assert!(!answers.is_empty());
        let a = &answers[0];
        assert_eq!(a.predicate, "population");
        assert!(a.template.contains('$'), "template: {}", a.template);
        assert_eq!(a.entity, world.store.surface(city));
        assert!(a.node.is_some(), "engine answers carry the value node");
    }

    #[test]
    fn refuses_unknown_questions_with_cause() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        assert!(engine.answer_bfq("what is the meaning of life").is_empty());
        // No mention of any KB entity: the earliest stage refuses.
        assert_eq!(
            engine.answer_bfq_explained("why is the sky blue"),
            Err(Refusal::NoEntityGrounded)
        );
        assert!(!engine.answer_question("why is the sky blue").answered());
    }

    #[test]
    fn unseen_paraphrase_is_refused_as_unmatched_template() {
        // The benchmark "hard paraphrase" behaviour: a valid question whose
        // template was never learned gets no answer (precision over recall),
        // and the refusal names the template stage.
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world.subjects_of(pop)[0];
        let q = format!(
            "please enumerate the inhabitant count of {}",
            world.store.surface(city)
        );
        assert_eq!(
            engine.answer_bfq_explained(&q),
            Err(Refusal::NoTemplateMatched)
        );
    }

    #[test]
    fn spouse_questions_traverse_expanded_predicates() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let spouse = world.intent_by_name("person_spouse").unwrap();
        let married: Vec<_> = world
            .subjects_of(spouse)
            .iter()
            .copied()
            .filter(|&s| !world.gold_values(spouse, s).is_empty())
            .take(8)
            .collect();
        assert!(!married.is_empty());
        let mut right = 0;
        for person in &married {
            let gold = world.gold_values(spouse, *person);
            let q = format!("who is {} married to", world.store.surface(*person));
            let answers = engine.answer_bfq(&q);
            if answers
                .first()
                .map(|a| gold.contains(&a.value))
                .unwrap_or(false)
            {
                right += 1;
            }
        }
        assert!(
            right * 2 >= married.len(),
            "spouse accuracy too low: {right}/{}",
            married.len()
        );
    }

    #[test]
    fn question_statistics_report_choices() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world.subjects_of(pop)[0];
        let q = format!("what is the population of {}", world.store.surface(city));
        let stats = engine.question_statistics(&q);
        assert!(stats.entities >= 1);
        assert!(stats.templates_per_pair >= 1.0);
    }

    #[test]
    fn request_interface_answers_and_explains() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world
            .subjects_of(pop)
            .iter()
            .copied()
            .find(|&c| !world.gold_values(pop, c).is_empty())
            .unwrap();
        let q = format!("population of {}", world.store.surface(city));
        let response = engine.answer_request(&QaRequest::new(&q).with_explain(true));
        assert!(response.answered());
        assert!(response.top().is_some());
        let stats = response.stats.as_ref().expect("explain attaches stats");
        assert!(stats.entities >= 1);
        assert_eq!(response.value_strings().len(), response.answers.len());
    }

    #[test]
    fn min_theta_gates_low_confidence_predicates() {
        let (world, model) = setup();
        let strict =
            QaEngine::new(&world.store, &world.conceptualizer, &model).with_config(EngineConfig {
                min_theta: 0.99,
                ..Default::default()
            });
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world.subjects_of(pop)[0];
        let q = format!("how many people live in {}", world.store.surface(city));
        let lenient = QaEngine::new(&world.store, &world.conceptualizer, &model);
        // Strict answers ⊆ lenient answers.
        assert!(strict.answer_bfq(&q).len() <= lenient.answer_bfq(&q).len());
    }

    #[test]
    fn per_request_config_matches_engine_config() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let strict_engine =
            QaEngine::new(&world.store, &world.conceptualizer, &model).with_config(EngineConfig {
                min_theta: 0.99,
                top_k: 1,
                ..Default::default()
            });
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world.subjects_of(pop)[0];
        let q = format!("how many people live in {}", world.store.surface(city));
        // A per-request override must behave exactly like an engine built
        // with that configuration.
        let via_request =
            engine.answer_request(&QaRequest::new(&q).with_min_theta(0.99).with_top_k(1));
        let via_engine = strict_engine.answer_question(&q);
        assert_eq!(via_request, via_engine);
    }
}
