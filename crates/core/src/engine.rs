//! The online answering procedure (paper Sec 3.3).
//!
//! Given a user question `q₀`, compute
//! `P(v|q₀) = Σ_{e,t,p} P(v|e,p)·P(p|t)·P(t|e,q₀)·P(e|q₀)` (Eq 7) and return
//! the argmax value. The enumeration mirrors the paper's complexity
//! argument: entities per question, concepts per entity, and values per
//! (entity, predicate) are bounded constants, so the run is `O(|P|)` in the
//! number of predicates a template distributes over.
//!
//! The engine *refuses* (returns no answer) when no learned template
//! matches — the behaviour behind the `#pro` column in the QALD tables: a
//! high-precision system answers fewer questions rather than guessing.

use kbqa_common::hash::FxHashMap;
use kbqa_common::topk::TopK;
use serde::{Deserialize, Serialize};

use kbqa_nlp::{tokenize, GazetteerNer, Mention, TokenizedText};
use kbqa_rdf::{NodeId, TripleStore};
use kbqa_taxonomy::Conceptualizer;

use crate::decompose::PatternIndex;
use crate::learner::LearnedModel;
use crate::model;

/// Online engine parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Ranked answers to retain.
    pub top_k: usize,
    /// Skip predicates with `P(p|t)` below this mass (precision guard; the
    /// paper notes KBQA "uses a relatively strict rule for template
    /// matching").
    pub min_theta: f64,
    /// Concepts considered per entity mention.
    pub max_concepts: usize,
    /// Attempt complex-question decomposition when direct BFQ answering
    /// finds nothing (requires a pattern index).
    pub decompose: bool,
    /// Values carried between decomposition steps.
    pub chain_width: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            top_k: 5,
            min_theta: 0.05,
            max_concepts: 4,
            decompose: true,
            chain_width: 3,
        }
    }
}

/// A ranked answer with provenance (which entity/template/predicate
/// produced it) — the paper's Example 1 walk, made inspectable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Answer {
    /// The answer value's surface form.
    pub value: String,
    /// The value node.
    pub node: NodeId,
    /// Accumulated probability mass (unnormalized posterior).
    pub score: f64,
    /// Surface of the grounded question entity.
    pub entity: String,
    /// Canonical template that matched.
    pub template: String,
    /// Rendered predicate path (`marriage→person→name`).
    pub predicate: String,
}

/// A system-level answer: ranked values (shared across KBQA and baselines).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SystemAnswer {
    /// `(value, score)` sorted by descending score.
    pub values: Vec<(String, f64)>,
}

impl SystemAnswer {
    /// The top-ranked value.
    pub fn top(&self) -> Option<&str> {
        self.values.first().map(|(v, _)| v.as_str())
    }

    /// All value strings in rank order.
    pub fn value_strings(&self) -> Vec<&str> {
        self.values.iter().map(|(v, _)| v.as_str()).collect()
    }
}

/// The interface shared by KBQA and every baseline system: answer a natural
/// language question or refuse (`None`).
pub trait QaSystem {
    /// Short display name for result tables.
    fn name(&self) -> &str;
    /// Answer or refuse.
    fn answer(&self, question: &str) -> Option<SystemAnswer>;
}

/// Per-question uncertainty statistics (paper Table 6).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChoiceStats {
    /// Candidate entities for the question (`P(e|q)` choices).
    pub entities: usize,
    /// Templates per entity-question pair, averaged (`P(t|e,q)` choices).
    pub templates_per_pair: f64,
    /// Predicates per matched template, averaged (`P(p|t)` choices).
    pub predicates_per_template: f64,
    /// Values per (entity, predicate), averaged (`P(v|e,p)` choices).
    pub values_per_pair: f64,
}

/// The KBQA online engine.
pub struct QaEngine<'a> {
    store: &'a TripleStore,
    conceptualizer: &'a Conceptualizer,
    model: &'a LearnedModel,
    ner: GazetteerNer,
    pattern_index: Option<PatternIndex>,
    config: EngineConfig,
}

impl<'a> QaEngine<'a> {
    /// Build an engine over a store, taxonomy and learned model. The NER
    /// gazetteer is derived from the store's name index.
    pub fn new(
        store: &'a TripleStore,
        conceptualizer: &'a Conceptualizer,
        model: &'a LearnedModel,
    ) -> Self {
        Self {
            store,
            conceptualizer,
            model,
            ner: GazetteerNer::from_store(store),
            pattern_index: None,
            config: EngineConfig::default(),
        }
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Attach the corpus pattern index enabling complex-question
    /// decomposition (Sec 5).
    pub fn with_pattern_index(mut self, index: PatternIndex) -> Self {
        self.pattern_index = Some(index);
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The pattern index, when attached.
    pub fn pattern_index(&self) -> Option<&PatternIndex> {
        self.pattern_index.as_ref()
    }

    /// The underlying store.
    pub fn store(&self) -> &TripleStore {
        self.store
    }

    /// The NER in use.
    pub fn ner(&self) -> &GazetteerNer {
        &self.ner
    }

    /// Answer a question as a BFQ: the Eq (7) enumeration. Returns ranked
    /// answers with provenance; empty = refusal.
    pub fn answer_bfq(&self, question: &str) -> Vec<Answer> {
        let tokens = tokenize(question);
        self.answer_bfq_tokens(&tokens)
    }

    /// BFQ answering over pre-tokenized text (the decomposition DP calls
    /// this on substrings).
    pub fn answer_bfq_tokens(&self, tokens: &TokenizedText) -> Vec<Answer> {
        if tokens.is_empty() {
            return Vec::new();
        }
        let groundings = self.groundings(tokens);
        if groundings.is_empty() {
            return Vec::new();
        }
        let p_entity = model::entity_probability(groundings.len());

        struct Best {
            score: f64,
            entity: NodeId,
            template: crate::template::TemplateId,
            pred: crate::catalog::PredId,
        }
        let mut scores: FxHashMap<NodeId, f64> = FxHashMap::default();
        let mut provenance: FxHashMap<NodeId, Best> = FxHashMap::default();

        for (entity, mention) in &groundings {
            let templates = model::templates_for_mention(
                tokens,
                mention,
                *entity,
                self.conceptualizer,
                self.config.max_concepts,
            );
            for (template, p_template) in templates {
                let Some(tid) = self.model.templates.get(&template) else {
                    continue;
                };
                for &(pred, theta) in self.model.theta.predicates_for(tid) {
                    if theta < self.config.min_theta {
                        break; // rows are sorted descending
                    }
                    let path = self.model.predicates.resolve(pred);
                    for (value, p_value) in
                        model::value_distribution(self.store, *entity, path)
                    {
                        let contribution = p_entity * p_template * theta * p_value;
                        let total = scores.entry(value).or_insert(0.0);
                        *total += contribution;
                        let better = provenance
                            .get(&value)
                            .map(|b| contribution > b.score)
                            .unwrap_or(true);
                        if better {
                            provenance.insert(
                                value,
                                Best {
                                    score: contribution,
                                    entity: *entity,
                                    template: tid,
                                    pred,
                                },
                            );
                        }
                    }
                }
            }
        }

        let mut top = TopK::new(self.config.top_k);
        for (value, score) in scores {
            top.push(score, value);
        }
        top.into_sorted_vec()
            .into_iter()
            .map(|(score, node)| {
                let best = &provenance[&node];
                Answer {
                    value: self.store.surface(node),
                    node,
                    score,
                    entity: self.store.surface(best.entity),
                    template: self.model.templates.resolve(best.template).to_owned(),
                    predicate: self.model.predicates.render(best.pred, self.store),
                }
            })
            .collect()
    }

    /// Can this text be answered as a primitive BFQ? (The δ of Eq 28.)
    pub fn is_answerable(&self, tokens: &TokenizedText) -> bool {
        !self.answer_bfq_tokens(tokens).is_empty()
    }

    /// Distinct `(entity, widest mention)` groundings of a question.
    fn groundings(&self, tokens: &TokenizedText) -> Vec<(NodeId, Mention)> {
        let mut best: FxHashMap<NodeId, Mention> = FxHashMap::default();
        for m in self.ner.find_all_mentions(tokens) {
            for &node in &m.nodes {
                let keep = match best.get(&node) {
                    Some(prev) => m.len() > prev.len(),
                    None => true,
                };
                if keep {
                    best.insert(node, m.clone());
                }
            }
        }
        let mut out: Vec<(NodeId, Mention)> = best.into_iter().collect();
        out.sort_unstable_by_key(|(n, _)| *n);
        out
    }

    /// Table 6 statistics for one question: how many choices each random
    /// variable has.
    pub fn question_statistics(&self, question: &str) -> ChoiceStats {
        let tokens = tokenize(question);
        let groundings = self.groundings(&tokens);
        let mut template_counts: Vec<usize> = Vec::new();
        let mut predicate_counts: Vec<usize> = Vec::new();
        let mut value_counts: Vec<usize> = Vec::new();
        for (entity, mention) in &groundings {
            let templates = model::templates_for_mention(
                &tokens,
                mention,
                *entity,
                self.conceptualizer,
                usize::MAX,
            );
            template_counts.push(templates.len());
            for (template, _) in &templates {
                if let Some(tid) = self.model.templates.get(template) {
                    let row = self.model.theta.predicates_for(tid);
                    if !row.is_empty() {
                        predicate_counts.push(row.len());
                    }
                    for &(pred, _) in row {
                        let path = self.model.predicates.resolve(pred);
                        let n = kbqa_rdf::path::object_count_via_path(
                            self.store, *entity, path,
                        );
                        if n > 0 {
                            value_counts.push(n);
                        }
                    }
                }
            }
        }
        let avg = |v: &[usize]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<usize>() as f64 / v.len() as f64
            }
        };
        ChoiceStats {
            entities: groundings.len(),
            templates_per_pair: avg(&template_counts),
            predicates_per_template: avg(&predicate_counts),
            values_per_pair: avg(&value_counts),
        }
    }
}

impl QaSystem for QaEngine<'_> {
    fn name(&self) -> &str {
        "KBQA"
    }

    fn answer(&self, question: &str) -> Option<SystemAnswer> {
        let direct = self.answer_bfq(question);
        if !direct.is_empty() {
            return Some(SystemAnswer {
                values: direct.into_iter().map(|a| (a.value, a.score)).collect(),
            });
        }
        if self.config.decompose {
            if let Some(index) = &self.pattern_index {
                return crate::decompose::answer_complex(self, index, question);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_corpus::{CorpusConfig, QaCorpus, World, WorldConfig};

    use crate::learner::{Learner, LearnerConfig};

    fn setup() -> (World, LearnedModel) {
        let world = World::generate(WorldConfig::tiny(42));
        let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 800));
        let ner = GazetteerNer::from_store(&world.store);
        let learner = Learner::new(
            &world.store,
            &world.conceptualizer,
            &ner,
            &world.predicate_classes,
        );
        let pairs: Vec<(&str, &str)> = corpus
            .pairs
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str()))
            .collect();
        let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
        (world, model)
    }

    #[test]
    fn answers_population_questions_correctly() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let pop = world.intent_by_name("city_population").unwrap();
        let mut right = 0;
        let mut asked = 0;
        for &city in world.subjects_of(pop).iter().take(10) {
            let gold = world.gold_values(pop, city);
            if gold.is_empty() {
                continue;
            }
            asked += 1;
            let q = format!(
                "how many people are there in {}",
                world.store.surface(city)
            );
            let answers = engine.answer_bfq(&q);
            if answers.first().map(|a| gold.contains(&a.value)).unwrap_or(false) {
                right += 1;
            }
        }
        assert!(asked >= 5);
        assert!(
            right * 10 >= asked * 7,
            "only {right}/{asked} population questions answered correctly"
        );
    }

    #[test]
    fn answers_carry_provenance() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world
            .subjects_of(pop)
            .iter()
            .copied()
            .find(|&c| !world.gold_values(pop, c).is_empty())
            .unwrap();
        let q = format!("what is the population of {}", world.store.surface(city));
        let answers = engine.answer_bfq(&q);
        assert!(!answers.is_empty());
        let a = &answers[0];
        assert_eq!(a.predicate, "population");
        assert!(a.template.contains('$'), "template: {}", a.template);
        assert_eq!(a.entity, world.store.surface(city));
    }

    #[test]
    fn refuses_unknown_questions() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        assert!(engine.answer_bfq("what is the meaning of life").is_empty());
        assert!(QaSystem::answer(&engine, "why is the sky blue").is_none());
    }

    #[test]
    fn unseen_paraphrase_is_refused() {
        // The benchmark "hard paraphrase" behaviour: a valid question whose
        // template was never learned gets no answer (precision over recall).
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world.subjects_of(pop)[0];
        let q = format!(
            "please enumerate the inhabitant count of {}",
            world.store.surface(city)
        );
        assert!(engine.answer_bfq(&q).is_empty());
    }

    #[test]
    fn spouse_questions_traverse_expanded_predicates() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let spouse = world.intent_by_name("person_spouse").unwrap();
        let married: Vec<_> = world
            .subjects_of(spouse)
            .iter()
            .copied()
            .filter(|&s| !world.gold_values(spouse, s).is_empty())
            .take(8)
            .collect();
        assert!(!married.is_empty());
        let mut right = 0;
        for person in &married {
            let gold = world.gold_values(spouse, *person);
            let q = format!("who is {} married to", world.store.surface(*person));
            let answers = engine.answer_bfq(&q);
            if answers.first().map(|a| gold.contains(&a.value)).unwrap_or(false) {
                right += 1;
            }
        }
        assert!(
            right * 2 >= married.len(),
            "spouse accuracy too low: {right}/{}",
            married.len()
        );
    }

    #[test]
    fn question_statistics_report_choices() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world.subjects_of(pop)[0];
        let q = format!("what is the population of {}", world.store.surface(city));
        let stats = engine.question_statistics(&q);
        assert!(stats.entities >= 1);
        assert!(stats.templates_per_pair >= 1.0);
    }

    #[test]
    fn system_answer_interface() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        assert_eq!(engine.name(), "KBQA");
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world
            .subjects_of(pop)
            .iter()
            .copied()
            .find(|&c| !world.gold_values(pop, c).is_empty())
            .unwrap();
        let q = format!("population of {}", world.store.surface(city));
        let answer = QaSystem::answer(&engine, &q);
        assert!(answer.is_some());
        let answer = answer.unwrap();
        assert!(answer.top().is_some());
        assert_eq!(answer.value_strings().len(), answer.values.len());
    }

    #[test]
    fn min_theta_gates_low_confidence_predicates() {
        let (world, model) = setup();
        let strict = QaEngine::new(&world.store, &world.conceptualizer, &model).with_config(
            EngineConfig {
                min_theta: 0.99,
                ..Default::default()
            },
        );
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world.subjects_of(pop)[0];
        let q = format!("how many people live in {}", world.store.surface(city));
        let lenient = QaEngine::new(&world.store, &world.conceptualizer, &model);
        // Strict answers ⊆ lenient answers.
        assert!(strict.answer_bfq(&q).len() <= lenient.answer_bfq(&q).len());
    }
}
