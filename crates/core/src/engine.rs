//! The online answering procedure (paper Sec 3.3) — the inference kernel.
//!
//! Given a user question `q₀`, compute
//! `P(v|q₀) = Σ_{e,t,p} P(v|e,p)·P(p|t)·P(t|e,q₀)·P(e|q₀)` (Eq 7) and return
//! the argmax value. The enumeration mirrors the paper's complexity
//! argument: entities per question, concepts per entity, and values per
//! (entity, predicate) are bounded constants, so the run is `O(|P|)` in the
//! number of predicates a template distributes over.
//!
//! The engine *refuses* when any stage of the enumeration has no support —
//! the behaviour behind the `#pro` column in the QALD tables: a
//! high-precision system answers fewer questions rather than guessing. Each
//! refusal carries its cause as a [`Refusal`].
//!
//! [`QaEngine`] borrows its substrate for a lifetime; it is the internal
//! kernel that [`crate::service::KbqaService`] wraps for serving. New
//! integrations should talk to the service, not the engine.

use std::borrow::Cow;

use kbqa_common::hash::FxHashMap;
use kbqa_common::topk::TopK;
use kbqa_obs::{Stage, StageTrace};
use serde::{Deserialize, Serialize};

use kbqa_nlp::{tokenize, tokenize_into, GazetteerNer, Mention, MentionBuffer, TokenizedText};
use kbqa_rdf::path::PathWorkspace;
use kbqa_rdf::{NodeId, TripleStore};
use kbqa_taxonomy::{ConceptId, Conceptualizer};

use crate::catalog::PredId;
use crate::decompose::PatternIndex;
use crate::learner::LearnedModel;
use crate::model;
use crate::service::{QaRequest, QaResponse, Refusal};
use crate::template::{SlotTable, TemplateId};

/// Online engine parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Ranked answers to retain.
    pub top_k: usize,
    /// Skip predicates with `P(p|t)` below this mass (precision guard; the
    /// paper notes KBQA "uses a relatively strict rule for template
    /// matching").
    pub min_theta: f64,
    /// Concepts considered per entity mention.
    pub max_concepts: usize,
    /// Attempt complex-question decomposition when direct BFQ answering
    /// finds nothing (requires a pattern index).
    pub decompose: bool,
    /// Values carried between decomposition steps.
    pub chain_width: usize,
    /// Opt-in top-k floor pruning: skip `(template, predicate)` rows whose
    /// entire remaining probability mass — plus all mass already pruned —
    /// cannot close the gap between the current k-th best partial sum and
    /// the best sum outside the top-k (the runner-up).
    ///
    /// **Off by default**, and a *heuristic*: the cumulative gap bound
    /// covers unseen values and the current runner-up, but a later retained
    /// row can still reshuffle partial sums in ways no online bound
    /// forecloses. On the generated benchmark suite the ranked value set is
    /// unchanged (`tests/kernel_equivalence.rs` pins it); reported scores
    /// of retained answers may omit pruned tail mass either way, so
    /// deployments that cache or diff responses byte-for-byte must leave
    /// this off.
    #[serde(default)]
    pub floor_prune: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            top_k: 5,
            min_theta: 0.05,
            max_concepts: 4,
            decompose: true,
            chain_width: 3,
            floor_prune: false,
        }
    }
}

/// A ranked answer with provenance (which entity/template/predicate
/// produced it) — the paper's Example 1 walk, made inspectable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Answer {
    /// The answer value's surface form.
    pub value: String,
    /// The value node, when the answer came from a KB lookup.
    pub node: Option<NodeId>,
    /// Accumulated probability mass (unnormalized posterior).
    pub score: f64,
    /// Surface of the grounded question entity.
    pub entity: String,
    /// Canonical template that matched (or a system-specific descriptor for
    /// non-template systems).
    pub template: String,
    /// Rendered predicate path (`marriage→person→name`).
    pub predicate: String,
}

impl Answer {
    /// A bare ranked value without provenance, for systems (or tests) that
    /// only score surface strings.
    pub fn ranked(value: impl Into<String>, score: f64) -> Self {
        Self {
            value: value.into(),
            node: None,
            score,
            entity: String::new(),
            template: String::new(),
            predicate: String::new(),
        }
    }

    /// Attach provenance to a ranked value.
    pub fn with_provenance(
        mut self,
        entity: impl Into<String>,
        template: impl Into<String>,
        predicate: impl Into<String>,
    ) -> Self {
        self.entity = entity.into();
        self.template = template.into();
        self.predicate = predicate.into();
        self
    }
}

/// Per-question uncertainty statistics (paper Table 6).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ChoiceStats {
    /// Candidate entities for the question (`P(e|q)` choices).
    pub entities: usize,
    /// Templates per entity-question pair, averaged (`P(t|e,q)` choices).
    pub templates_per_pair: f64,
    /// Predicates per matched template, averaged (`P(p|t)` choices).
    pub predicates_per_template: f64,
    /// Values per (entity, predicate), averaged (`P(v|e,p)` choices).
    pub values_per_pair: f64,
}

/// Best single contribution seen for a value, with the `(entity, template,
/// predicate)` walk that produced it — the provenance reported on answers.
#[derive(Clone, Copy, Debug)]
struct BestProvenance {
    score: f64,
    entity: NodeId,
    template: TemplateId,
    pred: PredId,
}

/// Reusable working memory for one engine call-site.
///
/// Every transient the Eq (7) enumeration needs — mention buffers, concept
/// and template distributions, score/provenance maps, the value arena, the
/// top-k accumulators — lives here and is **cleared, not reallocated**
/// between requests. A warmed-up scratch makes [`QaEngine::score_bfq`]
/// allocation-free, which is what keeps the online procedure's cost a
/// function of `|P|` (paper Sec 3.3) instead of the allocator.
///
/// Scratches are plain owned values: create one per worker thread (or per
/// batch chunk) and thread it through `*_with` entry points. Contents never
/// leak across requests — every kernel run starts by clearing what it uses —
/// and the concept→slot table revalidates against the model catalog's
/// generation, so reusing a scratch against a different engine or a freshly
/// swapped model is safe.
#[derive(Debug)]
pub struct ScratchSpace {
    /// NER output: flat mention spans + candidate-node arena.
    mentions: MentionBuffer,
    /// Widest-mention selection: node → span index.
    best_mention: FxHashMap<NodeId, u32>,
    /// Distinct `(entity, widest span)` groundings, sorted by node.
    groundings: Vec<(NodeId, u32)>,
    /// Concept distribution of the current mention.
    concepts: Vec<(ConceptId, f64)>,
    /// Matched `(template, P(t|e,q))` pairs of the current mention.
    templates: Vec<(TemplateId, f64)>,
    /// Memoized concept → slot symbol table (validated per catalog
    /// generation).
    slot_table: SlotTable,
    /// Question-form assembly buffer.
    form_buf: String,
    /// Accumulated `P(v|q)` mass per value.
    scores: FxHashMap<NodeId, f64>,
    /// Best-contribution provenance per value.
    provenance: FxHashMap<NodeId, BestProvenance>,
    /// Values in first-touch order — the deterministic ranking feed.
    order: Vec<NodeId>,
    /// `(entity, predicate) → range into `values``: one traversal per pair
    /// per question, replayed when paraphrase templates repeat a predicate.
    value_cache: FxHashMap<(NodeId, PredId), (u32, u32)>,
    /// Value arena backing `value_cache` ranges.
    values: Vec<NodeId>,
    /// Path-traversal frontier state.
    path_ws: PathWorkspace,
    /// Final ranking accumulator.
    topk: TopK<NodeId>,
    /// Ranked `(score, value)` output staging.
    ranked: Vec<(f64, NodeId)>,
    /// Scratch accumulator for pruning-slack refreshes (top k+1: the k-th
    /// best plus the runner-up).
    floor_topk: TopK<NodeId>,
    /// Drain staging for `floor_topk`.
    floor_buf: Vec<(f64, NodeId)>,
    /// Reused question tokenization (`tokenize_into` target): the serving
    /// path stops paying the tokenizer's allocations after warmup.
    pub(crate) question_tokens: TokenizedText,
    /// Reused sub-question buffer for the decompose DP's `O(|q|²)`
    /// substring probes (`TokenizedText::slice_into` target).
    pub(crate) sub_tokens: TokenizedText,
    /// Cumulative count of floor-pruned rows/suffixes (telemetry: lets
    /// tests and benches confirm the pruning path actually exercises).
    pruned: u64,
    /// Bitmask of shards this request's value lookups routed to (bit =
    /// shard id; [`kbqa_rdf::shard::MAX_SHARDS`] caps shard counts at 64).
    /// Reset by the service per request; popcount = `shard_fanout`.
    pub(crate) shard_mask: u64,
    /// First shard a lookup routed to (`u32::MAX` = none): the lane the
    /// service attributes this question's telemetry to.
    pub(crate) shard_primary: u32,
    /// Per-request stage timer. Disarmed by default (a single predicted
    /// branch per stage boundary); the service arms it for sampled or
    /// `explain` requests, and callers owning a scratch can arm it
    /// directly via [`kbqa_obs::StageTrace::begin`]. Fixed-size — keeps
    /// the kernel allocation-free either way.
    pub trace: StageTrace,
}

impl Default for ScratchSpace {
    fn default() -> Self {
        // Pre-size the maps and vectors for a typical question (a few
        // groundings, a handful of templates, tens of values): one up-front
        // allocation each instead of grow-and-rehash churn, which is what a
        // one-shot caller pays. Reused scratches amortize this to zero.
        fn map16<K, V>() -> FxHashMap<K, V> {
            FxHashMap::with_capacity_and_hasher(16, Default::default())
        }
        Self {
            mentions: MentionBuffer::new(),
            best_mention: map16(),
            groundings: Vec::with_capacity(16),
            concepts: Vec::with_capacity(8),
            templates: Vec::with_capacity(8),
            slot_table: SlotTable::new(),
            form_buf: String::with_capacity(64),
            scores: map16(),
            provenance: map16(),
            order: Vec::with_capacity(16),
            value_cache: map16(),
            values: Vec::with_capacity(32),
            path_ws: PathWorkspace::new(),
            topk: TopK::new(1),
            ranked: Vec::with_capacity(8),
            floor_topk: TopK::new(1),
            floor_buf: Vec::new(),
            question_tokens: TokenizedText::default(),
            sub_tokens: TokenizedText::default(),
            pruned: 0,
            shard_mask: 0,
            shard_primary: u32::MAX,
            trace: StageTrace::new(),
        }
    }
}

impl ScratchSpace {
    /// A fresh scratch. Buffers start empty and grow to their steady-state
    /// capacity over the first few requests.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many θ-rows (or row suffixes) the top-k floor has pruned over
    /// this scratch's lifetime. Diagnostic only.
    pub fn pruned_events(&self) -> u64 {
        self.pruned
    }

    /// Bitmask of shards value lookups have routed to (bit = shard id).
    /// The service resets it per request; callers driving the engine
    /// directly see the ORed mask across their calls. Diagnostic only.
    pub fn shard_mask(&self) -> u64 {
        self.shard_mask
    }
}

/// The KBQA online engine (the inference kernel behind
/// [`crate::service::KbqaService`]).
pub struct QaEngine<'a> {
    store: &'a TripleStore,
    conceptualizer: &'a Conceptualizer,
    model: &'a LearnedModel,
    ner: Cow<'a, GazetteerNer>,
    pattern_index: Option<Cow<'a, PatternIndex>>,
    /// When set, `V(e, p)` lookups route to the owning shard's store (the
    /// scatter half of scatter-gather); everything else stays global. See
    /// [`crate::shard::ShardRouter`].
    shards: Option<&'a crate::shard::ShardRouter>,
    /// The model epoch value lookups are pinned to when the router's lanes
    /// are remote workers (the two-phase reload refuses a mixed-epoch
    /// merge); irrelevant to local lanes.
    shard_epoch: u64,
    config: EngineConfig,
}

impl<'a> QaEngine<'a> {
    /// Build an engine over a store, taxonomy and learned model. The NER
    /// gazetteer is derived from the store's name index — an O(names) cost;
    /// services should derive it once and use [`QaEngine::with_shared`].
    pub fn new(
        store: &'a TripleStore,
        conceptualizer: &'a Conceptualizer,
        model: &'a LearnedModel,
    ) -> Self {
        Self {
            store,
            conceptualizer,
            model,
            ner: Cow::Owned(GazetteerNer::from_store(store)),
            pattern_index: None,
            shards: None,
            shard_epoch: 0,
            config: EngineConfig::default(),
        }
    }

    /// Build an engine borrowing every component — free construction over
    /// pre-built artifacts.
    pub fn with_shared(
        store: &'a TripleStore,
        conceptualizer: &'a Conceptualizer,
        model: &'a LearnedModel,
        ner: &'a GazetteerNer,
    ) -> Self {
        Self {
            store,
            conceptualizer,
            model,
            ner: Cow::Borrowed(ner),
            pattern_index: None,
            shards: None,
            shard_epoch: 0,
            config: EngineConfig::default(),
        }
    }

    /// Override the configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Route value lookups through a shard router (scatter-gather mode).
    /// Grounding, materialization, and accumulation stay global, so answers
    /// are byte-identical to the unsharded kernel.
    pub fn with_shards(mut self, router: &'a crate::shard::ShardRouter) -> Self {
        self.shards = Some(router);
        self
    }

    /// Pin remote value lookups to `epoch` (the snapshot's model epoch).
    /// Workers refuse an epoch they have not committed, so a two-phase
    /// reload can never mix epochs within one request or batch.
    pub fn with_shard_epoch(mut self, epoch: u64) -> Self {
        self.shard_epoch = epoch;
        self
    }

    /// Attach an owned corpus pattern index enabling complex-question
    /// decomposition (Sec 5).
    pub fn with_pattern_index(mut self, index: PatternIndex) -> Self {
        self.pattern_index = Some(Cow::Owned(index));
        self
    }

    /// Attach a borrowed pattern index (the service path).
    pub fn with_pattern_index_ref(mut self, index: &'a PatternIndex) -> Self {
        self.pattern_index = Some(Cow::Borrowed(index));
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The pattern index, when attached.
    pub fn pattern_index(&self) -> Option<&PatternIndex> {
        self.pattern_index.as_deref()
    }

    /// The underlying store.
    pub fn store(&self) -> &TripleStore {
        self.store
    }

    /// The NER in use.
    pub fn ner(&self) -> &GazetteerNer {
        &self.ner
    }

    /// A reborrowed engine running under a different configuration — how
    /// per-request overrides run without touching shared state.
    fn reconfigured(&self, config: EngineConfig) -> QaEngine<'_> {
        QaEngine {
            store: self.store,
            conceptualizer: self.conceptualizer,
            model: self.model,
            ner: Cow::Borrowed(self.ner.as_ref()),
            pattern_index: self.pattern_index.as_deref().map(Cow::Borrowed),
            shards: self.shards,
            shard_epoch: self.shard_epoch,
            config,
        }
    }

    /// Answer a question as a BFQ: the Eq (7) enumeration. Returns ranked
    /// answers with provenance; empty = refusal (use
    /// [`QaEngine::answer_bfq_explained`] for the cause).
    pub fn answer_bfq(&self, question: &str) -> Vec<Answer> {
        self.answer_bfq_explained(question).unwrap_or_default()
    }

    /// BFQ answering with the refusal cause on the error path.
    pub fn answer_bfq_explained(&self, question: &str) -> Result<Vec<Answer>, Refusal> {
        self.answer_bfq_explained_with(question, &mut ScratchSpace::default())
    }

    /// [`QaEngine::answer_bfq_explained`] over a caller-owned scratch —
    /// the steady-state serving path. Tokenization reuses the scratch's
    /// buffer (taken out for the kernel call, put back after), so repeat
    /// requests stop allocating for it.
    pub fn answer_bfq_explained_with(
        &self,
        question: &str,
        scratch: &mut ScratchSpace,
    ) -> Result<Vec<Answer>, Refusal> {
        let mut tokens = std::mem::take(&mut scratch.question_tokens);
        tokenize_into(question, &mut tokens);
        let result = self.bfq_kernel(&tokens, scratch);
        scratch.question_tokens = tokens;
        result
    }

    /// BFQ answering over pre-tokenized text (the decomposition DP calls
    /// this on substrings).
    pub fn answer_bfq_tokens(&self, tokens: &TokenizedText) -> Vec<Answer> {
        self.answer_bfq_tokens_with(tokens, &mut ScratchSpace::default())
    }

    /// [`QaEngine::answer_bfq_tokens`] over a caller-owned scratch.
    pub fn answer_bfq_tokens_with(
        &self,
        tokens: &TokenizedText,
        scratch: &mut ScratchSpace,
    ) -> Vec<Answer> {
        self.bfq_kernel(tokens, scratch).unwrap_or_default()
    }

    /// The optimized Eq (7) enumeration: scoring plus answer
    /// materialization. Output-equivalent to
    /// [`QaEngine::bfq_kernel_reference`] (the equivalence suite pins this
    /// byte-for-byte over the generated benchmark).
    fn bfq_kernel(
        &self,
        tokens: &TokenizedText,
        scratch: &mut ScratchSpace,
    ) -> Result<Vec<Answer>, Refusal> {
        self.score_bfq(tokens, scratch)?;
        let answers = self.materialize_answers(scratch);
        // Materialization folds into the rank/top-k stage: it walks the
        // ranked list score_bfq staged.
        scratch.trace.lap(Stage::RankTopK);
        Ok(answers)
    }

    /// The scoring phase of the optimized kernel: entity grounding, template
    /// lookup, predicate scan and value accumulation, ending with the ranked
    /// `(score, value)` list staged inside `scratch`. Returns the number of
    /// ranked answers.
    ///
    /// This is the engine's **zero-allocation path**: after warmup (buffers
    /// at their steady-state capacity, slot table populated) a call performs
    /// no heap allocation — the property the allocation-counting test pins.
    /// Split from the materializing kernel so benchmarks and tests can
    /// measure scoring without the cost of building owned [`Answer`]s.
    ///
    /// Enumeration order is identical to the reference kernel; on top of it,
    /// two exact savings and one opt-in pruning rule:
    ///
    /// * **Precompiled template lookup** — the question form resolves once
    ///   per mention and each concept is a `(form, slot)` map probe
    ///   ([`crate::template::TemplateCatalog`]); no template string exists.
    /// * **Value-set memoization** — `V(e, p⁺)` is enumerated once per
    ///   `(entity, predicate)` per question and replayed from an arena when
    ///   paraphrase templates repeat the predicate. Same values, same order.
    /// * **Top-k floor pruning** ([`EngineConfig::floor_prune`], off by
    ///   default) — a template row (or row suffix) is skipped when the mass
    ///   it could contribute, **plus every previously pruned bound**, cannot
    ///   close the current gap between the k-th best partial sum and the
    ///   runner-up outside the top-k: neither an unseen value nor the
    ///   runner-up, topped up by all pruned mass, could overtake the k-th
    ///   (ties lose to earlier insertions). The gap only exists once ≥
    ///   `top_k` values scored, so refusal causes are never affected. A
    ///   heuristic, not a guarantee — see [`EngineConfig::floor_prune`].
    pub fn score_bfq(
        &self,
        tokens: &TokenizedText,
        scratch: &mut ScratchSpace,
    ) -> Result<usize, Refusal> {
        if tokens.is_empty() {
            return Err(Refusal::NoEntityGrounded);
        }
        self.groundings_into(tokens, scratch);
        scratch.trace.lap(Stage::NerGrounding);
        if scratch.groundings.is_empty() {
            return Err(Refusal::NoEntityGrounded);
        }
        let p_entity = model::entity_probability(scratch.groundings.len());
        let top_k = self.config.top_k;

        let ScratchSpace {
            mentions,
            groundings,
            concepts,
            templates,
            slot_table,
            form_buf,
            scores,
            provenance,
            order,
            value_cache,
            values,
            path_ws,
            topk,
            ranked,
            floor_topk,
            floor_buf,
            pruned,
            shard_mask,
            shard_primary,
            trace,
            ..
        } = scratch;
        scores.clear();
        provenance.clear();
        order.clear();
        value_cache.clear();
        values.clear();

        let floor_prune = self.config.floor_prune;
        // Prunable slack: the current k-th best partial sum minus the best
        // partial sum *outside* the current top-k (the runner-up). A prune
        // is only taken while `lost + bound ≤ gap`, where `lost`
        // accumulates every previously skipped bound — so neither an unseen
        // value absorbing all pruned mass nor the runner-up topped up by it
        // could overtake the current k-th. (Heuristic, not a proof: later
        // retained rows can still reshuffle sums; the benchmark suite pins
        // that top-k membership survives in practice.)
        let mut gap = f64::NEG_INFINITY;
        let mut lost = 0.0;
        // Did any contribution land since the last gap refresh?
        let mut touched = false;
        // Contributing rows since the last refresh: the gap is refreshed on
        // a stride so its O(|values| · log k) rebuild doesn't swamp the
        // savings on wide enumerations. A stale gap only ever under-prunes.
        let mut rows_since_refresh = 0usize;
        const GAP_REFRESH_STRIDE: usize = 4;
        let mut any_template = false;
        let mut any_predicate = false;

        for &(entity, span_idx) in groundings.iter() {
            let span = mentions.spans()[span_idx as usize];
            // The two halves of `model::template_ids_for_mention`, called
            // separately so taxonomy time and template-probe time land in
            // their own stages. Semantics are identical to the fused call.
            let form = model::conceptualize_mention(
                tokens,
                span.start,
                span.end,
                entity,
                self.conceptualizer,
                &self.model.templates,
                form_buf,
                concepts,
            );
            trace.lap(Stage::Conceptualize);
            templates.clear();
            if let Some(form) = form {
                model::resolve_template_ids(
                    form,
                    self.config.max_concepts,
                    &self.model.templates,
                    self.conceptualizer,
                    slot_table,
                    concepts,
                    templates,
                );
            }
            trace.lap(Stage::TemplateMatch);
            any_template |= !templates.is_empty();
            for &(tid, p_template) in templates.iter() {
                let row = self.model.theta.predicates_for(tid);
                // Mirror the reference exactly: a row participates iff its
                // first entry clears min_theta (rows sorted descending).
                let row_live = row
                    .first()
                    .map(|&(_, theta)| theta >= self.config.min_theta)
                    .unwrap_or(false);
                if !row_live {
                    continue;
                }
                any_predicate = true;
                // `remaining` (the θ ≥ min_theta prefix mass) is only
                // consumed by pruning; exact mode skips the extra row pass.
                let mut remaining = 0.0;
                if floor_prune {
                    for &(_, theta) in row {
                        if theta < self.config.min_theta {
                            break;
                        }
                        remaining += theta;
                    }
                    if lost + p_entity * p_template * remaining <= gap {
                        lost += p_entity * p_template * remaining;
                        *pruned += 1;
                        continue; // whole row below the slack
                    }
                }
                for &(pred, theta) in row {
                    if theta < self.config.min_theta {
                        break;
                    }
                    if floor_prune {
                        if lost + p_entity * p_template * remaining <= gap {
                            lost += p_entity * p_template * remaining;
                            *pruned += 1;
                            break; // row suffix below the slack
                        }
                        remaining -= theta;
                    }
                    let range = match value_cache.get(&(entity, pred)) {
                        Some(&r) => r,
                        None => {
                            // Time up to here is θ-row scanning; the KB
                            // traversal itself is the value-lookup stage.
                            trace.lap(Stage::PredicateScore);
                            let start = values.len() as u32;
                            let path = self.model.predicates.resolve(pred);
                            // Scatter: the traversal runs on the entity's
                            // owning shard when the path fits the closure
                            // the cut replicated; longer paths (a swapped
                            // model can intern them) fall back to the
                            // global store so correctness never depends on
                            // closure depth.
                            match self.shards {
                                Some(router)
                                    if !router.is_degenerate()
                                        && path.len() <= router.plan().closure_depth() =>
                                {
                                    let owner = router.owner(entity);
                                    *shard_mask |= 1u64 << owner;
                                    if *shard_primary == u32::MAX {
                                        *shard_primary = owner as u32;
                                    }
                                    router.lookup_into(
                                        owner,
                                        entity,
                                        path,
                                        self.shard_epoch,
                                        path_ws,
                                        values,
                                    );
                                }
                                _ => kbqa_rdf::path::objects_via_path_into(
                                    self.store, entity, path, path_ws, values,
                                ),
                            }
                            let end = values.len() as u32;
                            value_cache.insert((entity, pred), (start, end));
                            trace.lap(Stage::ValueLookup);
                            (start, end)
                        }
                    };
                    if range.0 == range.1 {
                        continue;
                    }
                    let p_value = 1.0 / (range.1 - range.0) as f64;
                    touched = true;
                    for vi in range.0..range.1 {
                        let value = values[vi as usize];
                        let contribution = p_entity * p_template * theta * p_value;
                        let total = scores.entry(value).or_insert_with(|| {
                            order.push(value);
                            0.0
                        });
                        *total += contribution;
                        let better = provenance
                            .get(&value)
                            .map(|b| contribution > b.score)
                            .unwrap_or(true);
                        if better {
                            provenance.insert(
                                value,
                                BestProvenance {
                                    score: contribution,
                                    entity,
                                    template: tid,
                                    pred,
                                },
                            );
                        }
                    }
                }
                // Refresh the prunable slack from the current partial sums —
                // only when contributions landed since the last refresh
                // (pruned rows cannot move it), and on a stride once a gap
                // exists. The k-th best and the runner-up both come from one
                // top-(k+1) pass: [`TopK::floor`] of the (k+1)-capacity
                // accumulator *is* the runner-up when more than k values
                // exist; with exactly k values only unseen values compete,
                // and any sum bounds them, so the slack is the k-th sum.
                if floor_prune && touched && order.len() >= top_k {
                    rows_since_refresh += 1;
                    if gap == f64::NEG_INFINITY || rows_since_refresh >= GAP_REFRESH_STRIDE {
                        floor_topk.reset(top_k + 1);
                        for &v in order.iter() {
                            floor_topk.push(scores[&v], v);
                        }
                        let runner_up = floor_topk.floor().max(0.0);
                        floor_topk.drain_sorted_into(floor_buf);
                        let kth = floor_buf[top_k - 1].0;
                        gap = kth - runner_up;
                        touched = false;
                        rows_since_refresh = 0;
                    }
                }
            }
            // Flush this grounding's tail (contribution accumulation, gap
            // refreshes, θ-row scanning after the last lookup) so it cannot
            // smear into the next mention's conceptualize lap.
            trace.lap(Stage::PredicateScore);
        }

        if scores.is_empty() {
            return Err(if !any_template {
                Refusal::NoTemplateMatched
            } else if !any_predicate {
                Refusal::NoPredicateAboveTheta
            } else {
                Refusal::EmptyValueSet
            });
        }

        topk.reset(top_k);
        for &value in order.iter() {
            topk.push(scores[&value], value);
        }
        topk.drain_sorted_into(ranked);
        trace.lap(Stage::RankTopK);
        Ok(ranked.len())
    }

    /// Materialize owned [`Answer`]s from the ranked list staged by
    /// [`QaEngine::score_bfq`]. The only allocating stage of the kernel —
    /// answers are owned output by contract.
    fn materialize_answers(&self, scratch: &ScratchSpace) -> Vec<Answer> {
        scratch
            .ranked
            .iter()
            .map(|&(score, node)| {
                let best = &scratch.provenance[&node];
                Answer {
                    value: self.store.surface_ref(node).into_owned(),
                    node: Some(node),
                    score,
                    entity: self.store.surface_ref(best.entity).into_owned(),
                    template: self.model.templates.resolve(best.template).to_owned(),
                    predicate: self.model.predicates.render(best.pred, self.store),
                }
            })
            .collect()
    }

    /// The retained **reference enumeration**: the naive Eq (7) kernel the
    /// optimized path is validated against (`tests/kernel_equivalence.rs`
    /// asserts byte-identical answers, scores, provenance and refusal causes
    /// over the generated benchmark suite). It allocates freely — template
    /// strings per concept, fresh maps per call, cloned mentions — and
    /// consults no cache; keep it boring.
    ///
    /// Both kernels rank equal-scored values by **first-touch enumeration
    /// order** (entity, then template rank, then predicate rank), the
    /// deterministic order the engine has always promised via
    /// [`TopK`]'s insertion-order tie-breaking.
    pub fn bfq_kernel_reference(&self, tokens: &TokenizedText) -> Result<Vec<Answer>, Refusal> {
        if tokens.is_empty() {
            return Err(Refusal::NoEntityGrounded);
        }
        let groundings = self.groundings(tokens);
        if groundings.is_empty() {
            return Err(Refusal::NoEntityGrounded);
        }
        let p_entity = model::entity_probability(groundings.len());

        let mut scores: FxHashMap<NodeId, f64> = FxHashMap::default();
        let mut provenance: FxHashMap<NodeId, BestProvenance> = FxHashMap::default();
        let mut order: Vec<NodeId> = Vec::new();
        let mut any_template = false;
        let mut any_predicate = false;

        for (entity, mention) in &groundings {
            let templates = model::templates_for_mention(
                tokens,
                mention,
                *entity,
                self.conceptualizer,
                self.config.max_concepts,
            );
            for (template, p_template) in templates {
                let Some(tid) = self.model.templates.get(&template) else {
                    continue;
                };
                any_template = true;
                for &(pred, theta) in self.model.theta.predicates_for(tid) {
                    if theta < self.config.min_theta {
                        break; // rows are sorted descending
                    }
                    any_predicate = true;
                    let path = self.model.predicates.resolve(pred);
                    for (value, p_value) in model::value_distribution(self.store, *entity, path) {
                        let contribution = p_entity * p_template * theta * p_value;
                        let total = scores.entry(value).or_insert_with(|| {
                            order.push(value);
                            0.0
                        });
                        *total += contribution;
                        let better = provenance
                            .get(&value)
                            .map(|b| contribution > b.score)
                            .unwrap_or(true);
                        if better {
                            provenance.insert(
                                value,
                                BestProvenance {
                                    score: contribution,
                                    entity: *entity,
                                    template: tid,
                                    pred,
                                },
                            );
                        }
                    }
                }
            }
        }

        if scores.is_empty() {
            return Err(if !any_template {
                Refusal::NoTemplateMatched
            } else if !any_predicate {
                Refusal::NoPredicateAboveTheta
            } else {
                Refusal::EmptyValueSet
            });
        }

        let mut top = TopK::new(self.config.top_k);
        for &value in &order {
            top.push(scores[&value], value);
        }
        Ok(top
            .into_sorted_vec()
            .into_iter()
            .map(|(score, node)| {
                let best = &provenance[&node];
                Answer {
                    value: self.store.surface(node),
                    node: Some(node),
                    score,
                    entity: self.store.surface(best.entity),
                    template: self.model.templates.resolve(best.template).to_owned(),
                    predicate: self.model.predicates.render(best.pred, self.store),
                }
            })
            .collect())
    }

    /// Answer a request: direct BFQ inference, decomposition fallback, and
    /// per-request configuration overrides. This is the full online
    /// procedure the service exposes.
    pub fn answer_request(&self, request: &QaRequest) -> QaResponse {
        self.answer_request_with(request, &mut ScratchSpace::default())
    }

    /// [`QaEngine::answer_request`] over a caller-owned scratch — what the
    /// service's per-worker serving loop calls. When the request carries no
    /// overrides (the common case), the engine runs as-is instead of
    /// building a reconfigured view.
    pub fn answer_request_with(
        &self,
        request: &QaRequest,
        scratch: &mut ScratchSpace,
    ) -> QaResponse {
        let config = request.effective_config(&self.config);
        if config == self.config {
            self.answer_configured(request, scratch)
        } else {
            self.reconfigured(config)
                .answer_configured(request, scratch)
        }
    }

    /// The request pipeline under this engine's own configuration. The
    /// question tokenization reuses the scratch's buffer (taken out for
    /// the kernel call, put back after).
    fn answer_configured(&self, request: &QaRequest, scratch: &mut ScratchSpace) -> QaResponse {
        let mut tokens = std::mem::take(&mut scratch.question_tokens);
        tokenize_into(&request.question, &mut tokens);
        scratch.trace.lap(Stage::Parse);
        let kernel = self.bfq_kernel(&tokens, scratch);
        scratch.question_tokens = tokens;
        let mut response = match kernel {
            Ok(answers) => QaResponse::from_answers(answers),
            Err(refusal) => {
                let decomposed = if self.config.decompose {
                    self.pattern_index().and_then(|index| {
                        crate::decompose::answer_complex_with(
                            self,
                            index,
                            &request.question,
                            scratch,
                        )
                    })
                } else {
                    None
                };
                match decomposed {
                    Some(mut answers) if !answers.is_empty() => {
                        // The chain executor carries up to chain_width
                        // candidates; the response contract is top_k.
                        answers.truncate(self.config.top_k);
                        QaResponse::from_answers(answers)
                    }
                    // Keep the direct-path cause: it names the first stage
                    // that failed, which is the actionable signal.
                    _ => QaResponse::refused(refusal),
                }
            }
        };
        if request.explain {
            response.stats = Some(self.question_statistics(&request.question));
        }
        response
    }

    /// Answer a bare question with this engine's defaults.
    pub fn answer_question(&self, question: &str) -> QaResponse {
        self.answer_request(&QaRequest::new(question))
    }

    /// Can this text be answered as a primitive BFQ? (The δ of Eq 28.)
    pub fn is_answerable(&self, tokens: &TokenizedText) -> bool {
        self.is_answerable_with(tokens, &mut ScratchSpace::default())
    }

    /// [`QaEngine::is_answerable`] over a caller-owned scratch: runs only
    /// the scoring phase — the decomposition DP asks this for `O(|q|²)`
    /// substrings, none of which need materialized answers.
    pub fn is_answerable_with(&self, tokens: &TokenizedText, scratch: &mut ScratchSpace) -> bool {
        self.score_bfq(tokens, scratch).is_ok()
    }

    /// Distinct `(entity, widest mention)` groundings of a question — the
    /// owned variant backing [`QaEngine::bfq_kernel_reference`] and the
    /// Table 6 statistics.
    fn groundings(&self, tokens: &TokenizedText) -> Vec<(NodeId, Mention)> {
        let mut best: FxHashMap<NodeId, Mention> = FxHashMap::default();
        for m in self.ner.find_all_mentions(tokens) {
            for &node in &m.nodes {
                let keep = match best.get(&node) {
                    Some(prev) => m.len() > prev.len(),
                    None => true,
                };
                if keep {
                    best.insert(node, m.clone());
                }
            }
        }
        let mut out: Vec<(NodeId, Mention)> = best.into_iter().collect();
        out.sort_unstable_by_key(|(n, _)| *n);
        out
    }

    /// [`QaEngine::groundings`] into the scratch: identical selection
    /// (widest mention per node, first-seen wins ties, sorted by node) with
    /// mentions kept as **indices into the NER buffer** instead of clones.
    fn groundings_into(&self, tokens: &TokenizedText, scratch: &mut ScratchSpace) {
        let ScratchSpace {
            mentions,
            best_mention,
            groundings,
            ..
        } = scratch;
        self.ner.find_all_mentions_into(tokens, mentions);
        best_mention.clear();
        for (idx, span) in mentions.spans().iter().enumerate() {
            for &node in mentions.nodes(span) {
                let keep = match best_mention.get(&node) {
                    Some(&prev) => span.len() > mentions.spans()[prev as usize].len(),
                    None => true,
                };
                if keep {
                    best_mention.insert(node, idx as u32);
                }
            }
        }
        groundings.clear();
        groundings.extend(best_mention.iter().map(|(&n, &i)| (n, i)));
        groundings.sort_unstable_by_key(|&(n, _)| n);
    }

    /// Table 6 statistics for one question: how many choices each random
    /// variable has.
    pub fn question_statistics(&self, question: &str) -> ChoiceStats {
        let tokens = tokenize(question);
        let groundings = self.groundings(&tokens);
        let mut template_counts: Vec<usize> = Vec::new();
        let mut predicate_counts: Vec<usize> = Vec::new();
        let mut value_counts: Vec<usize> = Vec::new();
        for (entity, mention) in &groundings {
            let templates = model::templates_for_mention(
                &tokens,
                mention,
                *entity,
                self.conceptualizer,
                usize::MAX,
            );
            template_counts.push(templates.len());
            for (template, _) in &templates {
                if let Some(tid) = self.model.templates.get(template) {
                    let row = self.model.theta.predicates_for(tid);
                    if !row.is_empty() {
                        predicate_counts.push(row.len());
                    }
                    for &(pred, _) in row {
                        let path = self.model.predicates.resolve(pred);
                        let n = kbqa_rdf::path::object_count_via_path(self.store, *entity, path);
                        if n > 0 {
                            value_counts.push(n);
                        }
                    }
                }
            }
        }
        let avg = |v: &[usize]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<usize>() as f64 / v.len() as f64
            }
        };
        ChoiceStats {
            entities: groundings.len(),
            templates_per_pair: avg(&template_counts),
            predicates_per_template: avg(&predicate_counts),
            values_per_pair: avg(&value_counts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_corpus::{CorpusConfig, QaCorpus, World, WorldConfig};

    use crate::learner::{Learner, LearnerConfig};

    fn setup() -> (World, LearnedModel) {
        let world = World::generate(WorldConfig::tiny(42));
        let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 800));
        let ner = GazetteerNer::from_store(&world.store);
        let learner = Learner::new(
            &world.store,
            &world.conceptualizer,
            &ner,
            &world.predicate_classes,
        );
        let pairs: Vec<(&str, &str)> = corpus
            .pairs
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str()))
            .collect();
        let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
        (world, model)
    }

    #[test]
    fn answers_population_questions_correctly() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let pop = world.intent_by_name("city_population").unwrap();
        let mut right = 0;
        let mut asked = 0;
        for &city in world.subjects_of(pop).iter().take(10) {
            let gold = world.gold_values(pop, city);
            if gold.is_empty() {
                continue;
            }
            asked += 1;
            let q = format!("how many people are there in {}", world.store.surface(city));
            let answers = engine.answer_bfq(&q);
            if answers
                .first()
                .map(|a| gold.contains(&a.value))
                .unwrap_or(false)
            {
                right += 1;
            }
        }
        assert!(asked >= 5);
        assert!(
            right * 10 >= asked * 7,
            "only {right}/{asked} population questions answered correctly"
        );
    }

    #[test]
    fn answers_carry_provenance() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world
            .subjects_of(pop)
            .iter()
            .copied()
            .find(|&c| !world.gold_values(pop, c).is_empty())
            .unwrap();
        let q = format!("what is the population of {}", world.store.surface(city));
        let answers = engine.answer_bfq(&q);
        assert!(!answers.is_empty());
        let a = &answers[0];
        assert_eq!(a.predicate, "population");
        assert!(a.template.contains('$'), "template: {}", a.template);
        assert_eq!(a.entity, world.store.surface(city));
        assert!(a.node.is_some(), "engine answers carry the value node");
    }

    #[test]
    fn refuses_unknown_questions_with_cause() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        assert!(engine.answer_bfq("what is the meaning of life").is_empty());
        // No mention of any KB entity: the earliest stage refuses.
        assert_eq!(
            engine.answer_bfq_explained("why is the sky blue"),
            Err(Refusal::NoEntityGrounded)
        );
        assert!(!engine.answer_question("why is the sky blue").answered());
    }

    #[test]
    fn unseen_paraphrase_is_refused_as_unmatched_template() {
        // The benchmark "hard paraphrase" behaviour: a valid question whose
        // template was never learned gets no answer (precision over recall),
        // and the refusal names the template stage.
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world.subjects_of(pop)[0];
        let q = format!(
            "please enumerate the inhabitant count of {}",
            world.store.surface(city)
        );
        assert_eq!(
            engine.answer_bfq_explained(&q),
            Err(Refusal::NoTemplateMatched)
        );
    }

    #[test]
    fn spouse_questions_traverse_expanded_predicates() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let spouse = world.intent_by_name("person_spouse").unwrap();
        let married: Vec<_> = world
            .subjects_of(spouse)
            .iter()
            .copied()
            .filter(|&s| !world.gold_values(spouse, s).is_empty())
            .take(8)
            .collect();
        assert!(!married.is_empty());
        let mut right = 0;
        for person in &married {
            let gold = world.gold_values(spouse, *person);
            let q = format!("who is {} married to", world.store.surface(*person));
            let answers = engine.answer_bfq(&q);
            if answers
                .first()
                .map(|a| gold.contains(&a.value))
                .unwrap_or(false)
            {
                right += 1;
            }
        }
        assert!(
            right * 2 >= married.len(),
            "spouse accuracy too low: {right}/{}",
            married.len()
        );
    }

    #[test]
    fn question_statistics_report_choices() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world.subjects_of(pop)[0];
        let q = format!("what is the population of {}", world.store.surface(city));
        let stats = engine.question_statistics(&q);
        assert!(stats.entities >= 1);
        assert!(stats.templates_per_pair >= 1.0);
    }

    #[test]
    fn request_interface_answers_and_explains() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world
            .subjects_of(pop)
            .iter()
            .copied()
            .find(|&c| !world.gold_values(pop, c).is_empty())
            .unwrap();
        let q = format!("population of {}", world.store.surface(city));
        let response = engine.answer_request(&QaRequest::new(&q).with_explain(true));
        assert!(response.answered());
        assert!(response.top().is_some());
        let stats = response.stats.as_ref().expect("explain attaches stats");
        assert!(stats.entities >= 1);
        assert_eq!(response.value_strings().len(), response.answers.len());
    }

    #[test]
    fn min_theta_gates_low_confidence_predicates() {
        let (world, model) = setup();
        let strict =
            QaEngine::new(&world.store, &world.conceptualizer, &model).with_config(EngineConfig {
                min_theta: 0.99,
                ..Default::default()
            });
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world.subjects_of(pop)[0];
        let q = format!("how many people live in {}", world.store.surface(city));
        let lenient = QaEngine::new(&world.store, &world.conceptualizer, &model);
        // Strict answers ⊆ lenient answers.
        assert!(strict.answer_bfq(&q).len() <= lenient.answer_bfq(&q).len());
    }

    #[test]
    fn per_request_config_matches_engine_config() {
        let (world, model) = setup();
        let engine = QaEngine::new(&world.store, &world.conceptualizer, &model);
        let strict_engine =
            QaEngine::new(&world.store, &world.conceptualizer, &model).with_config(EngineConfig {
                min_theta: 0.99,
                top_k: 1,
                ..Default::default()
            });
        let pop = world.intent_by_name("city_population").unwrap();
        let city = world.subjects_of(pop)[0];
        let q = format!("how many people live in {}", world.store.surface(city));
        // A per-request override must behave exactly like an engine built
        // with that configuration.
        let via_request =
            engine.answer_request(&QaRequest::new(&q).with_min_theta(0.99).with_top_k(1));
        let via_engine = strict_engine.answer_question(&q);
        assert_eq!(via_request, via_engine);
    }
}
