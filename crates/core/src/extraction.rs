//! Entity–value extraction from QA pairs (paper Sec 4.1).
//!
//! Eq (8): `EVᵢ = {(e, v) | e ⊂ qᵢ, v ⊂ aᵢ, ∃p, (e, p, v) ∈ K}` — candidate
//! pairs are an entity mentioned in the question and a value mentioned in
//! the answer that the KB connects by some (expanded) predicate. Rather than
//! enumerating all answer substrings, we enumerate the KB neighborhood of
//! each question entity (the emitted `(e, p⁺, o)` records from
//! [`crate::expansion`]) and test each object's surface form for containment
//! in the answer — same set, near-linear cost.
//!
//! The **refinement** step (Sec 4.1.1) filters noise pairs like Example 2's
//! `(Barack Obama, "politician")`: the question's UIUC answer class must
//! agree with the class of the connecting predicate (the paper labels
//! predicates manually; worlds supply those labels).
//!
//! Each surviving `(q, e, v)` triple becomes an [`Observation`] carrying the
//! *factored* fixed probabilities of Eq (19): `P(e|q)` (Eq 4), the template
//! distribution `P(t|e,q)`, and `P(v|e,p)` per candidate predicate — the EM
//! step then only multiplies in `θ_pt`.

use kbqa_common::hash::FxHashMap;
use serde::{Deserialize, Serialize};

use kbqa_nlp::{classify_question, tokenize, AnswerClass, GazetteerNer, Mention};
use kbqa_rdf::{ExpandedPredicate, NodeId, TripleStore};
use kbqa_taxonomy::Conceptualizer;

use crate::expansion::ExpansionResult;
use crate::model;
use crate::template::{TemplateCatalog, TemplateId};

/// Extraction parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExtractionConfig {
    /// Apply the Sec 4.1.1 answer-type refinement filter.
    pub refine_by_class: bool,
    /// Cap on distinct entities considered per question.
    pub max_entities_per_question: usize,
    /// Cap on concepts (→ templates) per entity mention.
    pub max_concepts: usize,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        Self {
            refine_by_class: true,
            max_entities_per_question: 8,
            max_concepts: 4,
        }
    }
}

/// One extracted `(q, e, v)` triple with its factored fixed probabilities.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Observation {
    /// Index of the source QA pair.
    pub pair_index: usize,
    /// The question entity.
    pub entity: NodeId,
    /// The extracted value node.
    pub value: NodeId,
    /// `P(e|q)` (Eq 4).
    pub p_entity: f64,
    /// `(template, P(t|e,q))` — one per candidate concept.
    pub templates: Vec<(TemplateId, f64)>,
    /// `(predicate, P(v|e,p))` — one per KB connection between e and v.
    pub predicates: Vec<(crate::catalog::PredId, f64)>,
}

/// The extractor: wires the NER, the expansion index and the class labels.
pub struct Extractor<'a> {
    store: &'a TripleStore,
    conceptualizer: &'a Conceptualizer,
    ner: &'a GazetteerNer,
    expansion: &'a ExpansionResult,
    predicate_classes: &'a FxHashMap<ExpandedPredicate, AnswerClass>,
    config: ExtractionConfig,
}

impl<'a> Extractor<'a> {
    /// Construct an extractor.
    pub fn new(
        store: &'a TripleStore,
        conceptualizer: &'a Conceptualizer,
        ner: &'a GazetteerNer,
        expansion: &'a ExpansionResult,
        predicate_classes: &'a FxHashMap<ExpandedPredicate, AnswerClass>,
        config: ExtractionConfig,
    ) -> Self {
        Self {
            store,
            conceptualizer,
            ner,
            expansion,
            predicate_classes,
            config,
        }
    }

    /// Extract observations from an entire corpus of `(question, answer)`
    /// pairs, interning templates into `templates`.
    pub fn extract_corpus<'q>(
        &self,
        pairs: impl IntoIterator<Item = (&'q str, &'q str)>,
        templates: &mut TemplateCatalog,
    ) -> Vec<Observation> {
        let mut observations = Vec::new();
        for (index, (question, answer)) in pairs.into_iter().enumerate() {
            self.extract_pair(index, question, answer, templates, &mut observations);
        }
        observations
    }

    /// Extract the EV pairs of one QA pair, appending observations.
    pub fn extract_pair(
        &self,
        pair_index: usize,
        question: &str,
        answer: &str,
        templates: &mut TemplateCatalog,
        out: &mut Vec<Observation>,
    ) {
        let q_tokens = tokenize(question);
        if q_tokens.is_empty() {
            return;
        }
        let a_tokens = tokenize(answer);
        if a_tokens.is_empty() {
            return;
        }
        let a_words = a_tokens.words();
        let question_class = classify_question(&q_tokens);

        // Candidate entities: all grounded mentions, keeping the widest
        // mention per entity (for template derivation).
        let mentions = self.ner.find_all_mentions(&q_tokens);
        let mut best_mention: FxHashMap<NodeId, Mention> = FxHashMap::default();
        for m in mentions {
            for &node in &m.nodes {
                let keep = match best_mention.get(&node) {
                    Some(prev) => m.len() > prev.len(),
                    None => true,
                };
                if keep {
                    best_mention.insert(node, m.clone());
                }
            }
        }
        if best_mention.is_empty() {
            return;
        }
        let mut entities: Vec<NodeId> = best_mention.keys().copied().collect();
        entities.sort_unstable();
        entities.truncate(self.config.max_entities_per_question);

        // EV candidates per entity: KB neighbors whose surface occurs in the
        // answer (Eq 8), refined by answer-type agreement (Sec 4.1.1).
        struct Candidate {
            entity: NodeId,
            value: NodeId,
            predicates: Vec<(crate::catalog::PredId, f64)>,
        }
        let mut candidates: Vec<Candidate> = Vec::new();
        for &entity in &entities {
            let Some(neighbors) = self.expansion.by_subject.get(&entity) else {
                continue;
            };
            // Group the (p⁺, o) records by o so each value yields one
            // observation with all its connecting predicates.
            let mut by_value: FxHashMap<NodeId, Vec<crate::catalog::PredId>> = FxHashMap::default();
            for &(pred, object) in neighbors {
                by_value.entry(object).or_default().push(pred);
            }
            let mut values: Vec<(NodeId, Vec<crate::catalog::PredId>)> =
                by_value.into_iter().collect();
            values.sort_unstable_by_key(|(v, _)| *v);
            for (value, preds) in values {
                // Eq (8)'s `v ⊂ aᵢ`: values are *strings in the answer*, so
                // only literal nodes qualify. A resource-valued edge like
                // `capital` is reachable as text only through its
                // name-terminated expansion (`capital→name`), keeping one
                // canonical predicate per textual value.
                if !self.store.dict().node_term(value).is_literal() {
                    continue;
                }
                let surface = self.store.surface(value);
                if !contains_phrase(&a_words, &surface) {
                    continue;
                }
                let kept: Vec<(crate::catalog::PredId, f64)> = preds
                    .into_iter()
                    .filter(|&p| {
                        !self.config.refine_by_class || self.class_allows(p, question_class)
                    })
                    .map(|p| {
                        let count = self.expansion.value_count(entity, p).max(1);
                        (p, 1.0 / count as f64)
                    })
                    .collect();
                if !kept.is_empty() {
                    candidates.push(Candidate {
                        entity,
                        value,
                        predicates: kept,
                    });
                }
            }
        }
        if candidates.is_empty() {
            return;
        }

        // Eq (4): P(e|q) uniform over the entities present in the EV set.
        let mut ev_entities: Vec<NodeId> = candidates.iter().map(|c| c.entity).collect();
        ev_entities.sort_unstable();
        ev_entities.dedup();
        let p_entity = model::entity_probability(ev_entities.len());

        // Template distributions are shared per entity; compute once.
        let mut template_cache: FxHashMap<NodeId, Vec<(TemplateId, f64)>> = FxHashMap::default();
        for candidate in candidates {
            let entry = template_cache.entry(candidate.entity).or_insert_with(|| {
                let mention = &best_mention[&candidate.entity];
                model::templates_for_mention(
                    &q_tokens,
                    mention,
                    candidate.entity,
                    self.conceptualizer,
                    self.config.max_concepts,
                )
                .into_iter()
                .map(|(t, p)| (templates.intern(&t), p))
                .collect()
            });
            if entry.is_empty() {
                continue;
            }
            out.push(Observation {
                pair_index,
                entity: candidate.entity,
                value: candidate.value,
                p_entity,
                templates: entry.clone(),
                predicates: candidate.predicates,
            });
        }
    }

    /// Entity sets per pair, for the Sec 7.5 entity-identification
    /// comparison (our joint extraction vs. an independent NER).
    pub fn extracted_entities(&self, question: &str, answer: &str) -> Vec<NodeId> {
        let mut tmp_catalog = TemplateCatalog::new();
        let mut obs = Vec::new();
        self.extract_pair(0, question, answer, &mut tmp_catalog, &mut obs);
        let mut entities: Vec<NodeId> = obs.into_iter().map(|o| o.entity).collect();
        entities.sort_unstable();
        entities.dedup();
        entities
    }

    fn class_allows(&self, pred: crate::catalog::PredId, question_class: AnswerClass) -> bool {
        let path = self.expansion.catalog.resolve(pred);
        match self.predicate_classes.get(path) {
            Some(class) => *class == question_class,
            // Unlabeled predicates pass (the paper labels only a few
            // thousand; unlabeled ones cannot be filtered).
            None => true,
        }
    }
}

/// Does `phrase` occur as a contiguous token subsequence of `haystack`?
/// Token-wise matching avoids substring false positives ("19" in "1961").
fn contains_phrase(haystack: &[&str], phrase: &str) -> bool {
    let needle = tokenize(phrase);
    if needle.is_empty() || needle.len() > haystack.len() {
        return false;
    }
    let needle_words = needle.words();
    haystack
        .windows(needle_words.len())
        .any(|w| w == needle_words.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_common::hash::FxHashSet;
    use kbqa_rdf::GraphBuilder;
    use kbqa_taxonomy::NetworkBuilder;

    use crate::expansion::{expand, ExpansionConfig};

    struct Fixture {
        store: TripleStore,
        conceptualizer: Conceptualizer,
        ner: GazetteerNer,
        expansion: ExpansionResult,
        classes: FxHashMap<ExpandedPredicate, AnswerClass>,
        obama: NodeId,
    }

    /// Paper Fig. 1 / Table 3 setting: Obama with dob, category, spouse.
    fn fixture() -> Fixture {
        let mut b = GraphBuilder::new();
        let obama = b.resource("obama");
        let marriage = b.resource("m1");
        let michelle = b.resource("michelle");
        b.name(obama, "Barack Obama");
        b.name(michelle, "Michelle Obama");
        b.fact_year(obama, "dob", 1961);
        b.fact_str(obama, "category", "Politician");
        b.link(obama, "marriage", marriage);
        b.link(marriage, "person", michelle);
        b.fact_year(michelle, "dob", 1964);
        let store = b.build();

        let mut nb = NetworkBuilder::new();
        let person = nb.concept("person");
        let politician = nb.concept("politician");
        nb.is_a(obama, person, 0.6);
        nb.is_a(obama, politician, 0.4);
        nb.is_a(michelle, person, 1.0);
        let conceptualizer = Conceptualizer::new(nb.build());

        let ner = GazetteerNer::from_store(&store);
        let sources: FxHashSet<NodeId> = [obama, michelle].into_iter().collect();
        let expansion = expand(&store, &sources, &ExpansionConfig::default());

        let mut classes: FxHashMap<ExpandedPredicate, AnswerClass> = FxHashMap::default();
        let p = |name: &str| store.dict().find_predicate(name).unwrap();
        classes.insert(ExpandedPredicate::single(p("dob")), AnswerClass::Numeric);
        classes.insert(
            ExpandedPredicate::single(p("category")),
            AnswerClass::Description,
        );
        classes.insert(ExpandedPredicate::single(p("name")), AnswerClass::Entity);
        classes.insert(
            ExpandedPredicate::new(vec![p("marriage"), p("person"), p("name")]),
            AnswerClass::Human,
        );
        Fixture {
            store,
            conceptualizer,
            ner,
            expansion,
            classes,
            obama,
        }
    }

    fn extract(fx: &Fixture, config: ExtractionConfig, q: &str, a: &str) -> Vec<Observation> {
        let extractor = Extractor::new(
            &fx.store,
            &fx.conceptualizer,
            &fx.ner,
            &fx.expansion,
            &fx.classes,
            config,
        );
        let mut templates = TemplateCatalog::new();
        let mut out = Vec::new();
        extractor.extract_pair(0, q, a, &mut templates, &mut out);
        out
    }

    #[test]
    fn extracts_the_dob_value_from_a_noisy_reply() {
        let fx = fixture();
        let obs = extract(
            &fx,
            ExtractionConfig::default(),
            "When was Barack Obama born?",
            "The politician was born in 1961.",
        );
        // Refinement keeps 1961 (NUM = NUM) and rejects "politician"
        // (category → DESC ≠ NUM) and the entity's own name (ENTY ≠ NUM).
        assert_eq!(obs.len(), 1);
        let o = &obs[0];
        assert_eq!(o.entity, fx.obama);
        assert_eq!(fx.store.dict().render(o.value), "1961");
        assert_eq!(o.predicates.len(), 1);
    }

    #[test]
    fn without_refinement_the_noise_pair_survives() {
        let fx = fixture();
        let config = ExtractionConfig {
            refine_by_class: false,
            ..Default::default()
        };
        let obs = extract(
            &fx,
            config,
            "When was Barack Obama born?",
            "The politician was born in 1961.",
        );
        // Now both 1961 and "Politician" are extracted (Example 2's noise).
        let values: Vec<String> = obs
            .iter()
            .map(|o| fx.store.dict().render(o.value))
            .collect();
        assert!(values.contains(&"1961".to_owned()));
        assert!(values.contains(&"Politician".to_owned()), "{values:?}");
    }

    #[test]
    fn spouse_value_extracted_through_expanded_predicate() {
        let fx = fixture();
        let obs = extract(
            &fx,
            ExtractionConfig::default(),
            "Who is the wife of Barack Obama?",
            "His wife is Michelle Obama.",
        );
        assert_eq!(obs.len(), 1);
        let o = &obs[0];
        let path = fx.expansion.catalog.resolve(o.predicates[0].0);
        assert_eq!(path.render(&fx.store), "marriage→person→name");
    }

    #[test]
    fn templates_cover_candidate_concepts() {
        let fx = fixture();
        let obs = extract(
            &fx,
            ExtractionConfig::default(),
            "When was Barack Obama born?",
            "He was born in 1961.",
        );
        assert_eq!(obs.len(), 1);
        // Obama conceptualizes to person and politician → two templates
        // (paper Sec 2: q1 yields `when was $person born?` and
        // `when was $politician born?`).
        assert_eq!(obs[0].templates.len(), 2);
    }

    #[test]
    fn no_observation_when_answer_has_no_kb_value() {
        let fx = fixture();
        let obs = extract(
            &fx,
            ExtractionConfig::default(),
            "When was Barack Obama born?",
            "I have no idea, sorry!",
        );
        assert!(obs.is_empty());
    }

    #[test]
    fn no_observation_without_a_question_entity() {
        let fx = fixture();
        let obs = extract(
            &fx,
            ExtractionConfig::default(),
            "When was the treaty signed?",
            "It was signed in 1961.",
        );
        assert!(obs.is_empty());
    }

    #[test]
    fn p_entity_uniform_over_ev_entities() {
        let fx = fixture();
        // Both Obama and Michelle appear; answer holds both dobs, so the EV
        // set contains both entities → P(e|q) = 1/2.
        let obs = extract(
            &fx,
            ExtractionConfig::default(),
            "When were Barack Obama and Michelle Obama born?",
            "He was born in 1961 and she was born in 1964.",
        );
        assert!(obs.len() >= 2);
        for o in &obs {
            assert!((o.p_entity - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn value_probability_reflects_multiplicity() {
        let fx = fixture();
        let obs = extract(
            &fx,
            ExtractionConfig::default(),
            "When was Barack Obama born?",
            "1961.",
        );
        assert_eq!(obs.len(), 1);
        // dob has a single value → P(v|e,p) = 1.
        assert!((obs[0].predicates[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contains_phrase_matches_token_boundaries() {
        let haystack = ["born", "in", "1961"];
        assert!(contains_phrase(&haystack, "1961"));
        assert!(contains_phrase(&haystack, "in 1961"));
        assert!(!contains_phrase(&haystack, "19"));
        assert!(!contains_phrase(&haystack, "1961 exactly"));
        assert!(!contains_phrase(&haystack, ""));
    }

    #[test]
    fn extracted_entities_helper() {
        let fx = fixture();
        let extractor = Extractor::new(
            &fx.store,
            &fx.conceptualizer,
            &fx.ner,
            &fx.expansion,
            &fx.classes,
            ExtractionConfig::default(),
        );
        let entities =
            extractor.extracted_entities("When was Barack Obama born?", "He was born in 1961.");
        assert_eq!(entities, vec![fx.obama]);
    }
}
