//! The fixed probability terms of the generative model (paper Sec 3.2).
//!
//! The generative chain (Fig. 4) is
//! `P(q, e, t, p, v) = P(q)·P(e|q)·P(t|e,q)·P(p|t)·P(v|e,p)` (Eq 2).
//! `P(p|t)` is the learned parameter (see [`crate::em`]); everything else is
//! computed directly:
//!
//! * `P(q)` — constant `α` (Eq 11), dropped from all argmax computations.
//! * `P(e|q)` — uniform over the candidate entities (offline: entities in
//!   the extracted EV set, Eq 4; online: entities recognized in the
//!   question).
//! * `P(t|e,q) = P(c|e,q)` — the conceptualizer's context-aware concept
//!   distribution (Eq 5).
//! * `P(v|e,p)` — uniform over `V(e, p)` (Eq 6), generalized to expanded
//!   predicates by path traversal (Sec 6.1).

use kbqa_nlp::{Mention, TokenizedText};
use kbqa_rdf::{ExpandedPredicate, NodeId, TripleStore};
use kbqa_taxonomy::{ConceptId, Conceptualizer};

use crate::template::{SlotTable, Template, TemplateCatalog, TemplateId};

/// Derive the template distribution `P(t|e,q)` for a grounded mention:
/// one template per candidate concept, weighted by `P(c|e, context)`.
///
/// `max_concepts` bounds the per-entity concept fan-out (the paper treats
/// concepts-per-entity as a constant in the complexity analysis, Sec 3.3).
pub fn templates_for_mention(
    question: &TokenizedText,
    mention: &Mention,
    entity: NodeId,
    conceptualizer: &Conceptualizer,
    max_concepts: usize,
) -> Vec<(Template, f64)> {
    // Context = question tokens outside the mention window.
    let context: Vec<&str> = question
        .tokens
        .iter()
        .enumerate()
        .filter(|(i, _)| *i < mention.start || *i >= mention.end)
        .map(|(_, t)| t.text.as_str())
        .collect();
    let dist = conceptualizer.conceptualize(entity, &context);
    dist.iter()
        .take(max_concepts)
        .map(|(concept, prob)| {
            let name = conceptualizer.network().concept_name(concept);
            (
                Template::derive(question, mention.start, mention.end, name),
                prob,
            )
        })
        .collect()
}

/// The hot-path variant of [`templates_for_mention`]: the same distribution,
/// resolved straight to [`TemplateId`]s through the catalog's precompiled
/// `(form, slot)` index — no template string is ever formatted or hashed.
///
/// Semantics match the naive pipeline exactly: a `(template, probability)`
/// pair appears in `out` **iff** deriving the template string for that
/// concept and looking it up in `catalog` would succeed, in the same
/// (descending-probability) order. Concepts whose slot occurs in no template
/// are skipped by a cached table probe, and when the question form itself is
/// unknown the conceptualizer is not even consulted — the result is empty
/// either way.
///
/// All buffers (`slots`, `concepts`, `form_buf`, `out`) are caller-owned and
/// reused; the steady state performs no heap allocation.
///
/// Composed from [`conceptualize_mention`] and [`resolve_template_ids`] —
/// the engine calls the halves directly so its stage tracer can attribute
/// taxonomy time and template-probe time separately.
#[allow(clippy::too_many_arguments)]
pub fn template_ids_for_mention(
    question: &TokenizedText,
    mention_start: usize,
    mention_end: usize,
    entity: NodeId,
    conceptualizer: &Conceptualizer,
    max_concepts: usize,
    catalog: &TemplateCatalog,
    slots: &mut SlotTable,
    concepts: &mut Vec<(ConceptId, f64)>,
    form_buf: &mut String,
    out: &mut Vec<(TemplateId, f64)>,
) {
    out.clear();
    let Some(form) = conceptualize_mention(
        question,
        mention_start,
        mention_end,
        entity,
        conceptualizer,
        catalog,
        form_buf,
        concepts,
    ) else {
        return;
    };
    resolve_template_ids(
        form,
        max_concepts,
        catalog,
        conceptualizer,
        slots,
        concepts,
        out,
    );
}

/// The conceptualization half of [`template_ids_for_mention`]: resolve the
/// mention's question form against the catalog and fill `concepts` with the
/// context-aware `P(c|e, context)` distribution. Returns the interned form
/// symbol, or `None` when no catalog template has this form — in which case
/// the conceptualizer is never consulted.
#[allow(clippy::too_many_arguments)]
pub fn conceptualize_mention(
    question: &TokenizedText,
    mention_start: usize,
    mention_end: usize,
    entity: NodeId,
    conceptualizer: &Conceptualizer,
    catalog: &TemplateCatalog,
    form_buf: &mut String,
    concepts: &mut Vec<(ConceptId, f64)>,
) -> Option<u32> {
    let form = catalog.form_symbol(question, mention_start, mention_end, form_buf)?;
    let context = question
        .tokens
        .iter()
        .enumerate()
        .filter(|(i, _)| *i < mention_start || *i >= mention_end)
        .map(|(_, t)| t.text.as_str());
    conceptualizer.conceptualize_into(entity, context, concepts);
    Some(form)
}

/// The template-resolution half of [`template_ids_for_mention`]: probe the
/// catalog's precompiled `(form, slot)` index for each candidate concept,
/// appending `(template, probability)` pairs to `out` in concept order.
pub fn resolve_template_ids(
    form: u32,
    max_concepts: usize,
    catalog: &TemplateCatalog,
    conceptualizer: &Conceptualizer,
    slots: &mut SlotTable,
    concepts: &[(ConceptId, f64)],
    out: &mut Vec<(TemplateId, f64)>,
) {
    for &(concept, prob) in concepts.iter().take(max_concepts) {
        let Some(slot) = slots.slot_for(catalog, conceptualizer.network(), concept) else {
            continue;
        };
        if let Some(tid) = catalog.template_for(form, slot) {
            out.push((tid, prob));
        }
    }
}

/// `P(v|e,p)` by live path traversal (Eq 6 / Sec 6.1): `1/|V(e,p)|` when
/// `v ∈ V(e,p)`, else 0.
pub fn value_probability(
    store: &TripleStore,
    entity: NodeId,
    path: &ExpandedPredicate,
    value: NodeId,
) -> f64 {
    let values = kbqa_rdf::path::objects_via_path(store, entity, path);
    if values.contains(&value) {
        1.0 / values.len() as f64
    } else {
        0.0
    }
}

/// All `(value, P(v|e,p))` pairs for an entity and predicate path — the
/// online engine's value enumeration.
pub fn value_distribution(
    store: &TripleStore,
    entity: NodeId,
    path: &ExpandedPredicate,
) -> Vec<(NodeId, f64)> {
    let values = kbqa_rdf::path::objects_via_path(store, entity, path);
    if values.is_empty() {
        return Vec::new();
    }
    let p = 1.0 / values.len() as f64;
    values.into_iter().map(|v| (v, p)).collect()
}

/// Uniform `P(e|q)` over `n` candidate entities (Eq 4's denominator).
pub fn entity_probability(n_candidates: usize) -> f64 {
    if n_candidates == 0 {
        0.0
    } else {
        1.0 / n_candidates as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_nlp::tokenize;
    use kbqa_rdf::GraphBuilder;
    use kbqa_taxonomy::NetworkBuilder;

    fn setup() -> (TripleStore, Conceptualizer, NodeId) {
        let mut b = GraphBuilder::new();
        let honolulu = b.resource("honolulu");
        b.name(honolulu, "Honolulu");
        b.fact_int(honolulu, "population", 390_000);
        let store = b.build();

        let mut nb = NetworkBuilder::new();
        let city = nb.concept("city");
        let location = nb.concept("location");
        nb.is_a(honolulu, city, 0.7);
        nb.is_a(honolulu, location, 0.3);
        nb.context_evidence(city, "population", 5.0);
        nb.context_evidence(location, "near", 5.0);
        (store, Conceptualizer::new(nb.build()), honolulu)
    }

    #[test]
    fn templates_weighted_by_concept_distribution() {
        let (_store, conceptualizer, honolulu) = setup();
        let q = tokenize("what is the population of Honolulu");
        let mention = Mention {
            start: 5,
            end: 6,
            nodes: vec![honolulu],
        };
        let templates = templates_for_mention(&q, &mention, honolulu, &conceptualizer, 4);
        assert_eq!(templates.len(), 2);
        // "population" context pulls toward $city.
        assert_eq!(templates[0].0.as_str(), "what is the population of $city");
        assert!(templates[0].1 > templates[1].1);
        let total: f64 = templates.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_concepts_truncates() {
        let (_store, conceptualizer, honolulu) = setup();
        let q = tokenize("what is the population of Honolulu");
        let mention = Mention {
            start: 5,
            end: 6,
            nodes: vec![honolulu],
        };
        let templates = templates_for_mention(&q, &mention, honolulu, &conceptualizer, 1);
        assert_eq!(templates.len(), 1);
    }

    #[test]
    fn template_ids_match_string_derivation() {
        let (_store, conceptualizer, honolulu) = setup();
        let mut catalog = TemplateCatalog::new();
        let q = tokenize("what is the population of Honolulu");
        let mention = Mention {
            start: 5,
            end: 6,
            nodes: vec![honolulu],
        };
        // Index only the $city reading; $location must be skipped exactly as
        // a failed string lookup would skip it.
        let city_id = catalog.intern(&Template::derive(&q, 5, 6, "city"));

        let mut slots = SlotTable::new();
        let mut concepts = Vec::new();
        let mut form_buf = String::new();
        let mut out = Vec::new();
        for max_concepts in [4usize, 1] {
            template_ids_for_mention(
                &q,
                5,
                6,
                honolulu,
                &conceptualizer,
                max_concepts,
                &catalog,
                &mut slots,
                &mut concepts,
                &mut form_buf,
                &mut out,
            );
            let expected: Vec<(TemplateId, f64)> =
                templates_for_mention(&q, &mention, honolulu, &conceptualizer, max_concepts)
                    .into_iter()
                    .filter_map(|(t, p)| catalog.get(&t).map(|id| (id, p)))
                    .collect();
            assert_eq!(out, expected);
            assert_eq!(out, vec![(city_id, expected[0].1)]);
        }
        // Unknown question form: empty without consulting the taxonomy.
        template_ids_for_mention(
            &tokenize("please enumerate Honolulu"),
            2,
            3,
            honolulu,
            &conceptualizer,
            4,
            &catalog,
            &mut slots,
            &mut concepts,
            &mut form_buf,
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn value_probability_is_uniform_over_values() {
        let (store, _c, honolulu) = setup();
        let pop = store.dict().find_predicate("population").unwrap();
        let path = ExpandedPredicate::single(pop);
        let v = store
            .dict()
            .find_term(kbqa_rdf::Term::Literal(kbqa_rdf::Literal::Int(390_000)))
            .unwrap();
        assert_eq!(value_probability(&store, honolulu, &path, v), 1.0);
        // A non-value gets probability zero.
        let name = store.dict().find_str_literal("Honolulu").unwrap();
        assert_eq!(value_probability(&store, honolulu, &path, name), 0.0);
    }

    #[test]
    fn value_distribution_sums_to_one() {
        let (store, _c, honolulu) = setup();
        let pop = store.dict().find_predicate("population").unwrap();
        let dist = value_distribution(&store, honolulu, &ExpandedPredicate::single(pop));
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entity_probability_uniform() {
        assert_eq!(entity_probability(4), 0.25);
        assert_eq!(entity_probability(0), 0.0);
    }
}
