//! Learned-model introspection.
//!
//! The paper's case studies (Table 17: templates learned for
//! `marriage→person→name`; Table 18: example expanded predicates) are
//! queries over the learned model; this module makes them a library API so
//! operators can audit what a model knows without the experiment harness.

use kbqa_rdf::{ExpandedPredicate, TripleStore};

use crate::catalog::PredId;
use crate::learner::LearnedModel;
use crate::template::TemplateId;

/// Templates whose argmax predicate is `path`, ranked by `support · θ`
/// (well-evidenced, confident templates first). Returns
/// `(template id, canonical string, support, θ)`.
pub fn templates_for_predicate<'m>(
    model: &'m LearnedModel,
    path: &ExpandedPredicate,
) -> Vec<(TemplateId, &'m str, u32, f64)> {
    let Some(target) = model.predicates.get(path) else {
        return Vec::new();
    };
    let mut rows: Vec<(TemplateId, &str, u32, f64)> = Vec::new();
    for (tid, support) in model.templates_by_support() {
        if support == 0 {
            continue;
        }
        if let Some((top, theta)) = model.theta.top_predicate(tid) {
            if top == target {
                rows.push((tid, model.templates.resolve(tid), support, theta));
            }
        }
    }
    rows.sort_by(|a, b| {
        let score_a = a.2 as f64 * a.3;
        let score_b = b.2 as f64 * b.3;
        score_b.total_cmp(&score_a).then(a.0.cmp(&b.0))
    });
    rows
}

/// Predicates ranked by total template support (how much of the model's
/// evidence flows through each), restricted to paths of length ≥ `min_len`.
/// Returns `(predicate id, path, total support)`.
pub fn top_predicates(
    model: &LearnedModel,
    min_len: usize,
) -> Vec<(PredId, ExpandedPredicate, u32)> {
    let mut support: kbqa_common::hash::FxHashMap<PredId, u32> = Default::default();
    for (tid, s) in model.templates_by_support() {
        if let Some((p, _)) = model.theta.top_predicate(tid) {
            *support.entry(p).or_default() += s;
        }
    }
    let mut rows: Vec<(PredId, ExpandedPredicate, u32)> = support
        .into_iter()
        .filter(|&(p, _)| model.predicates.resolve(p).len() >= min_len)
        .map(|(p, s)| (p, model.predicates.resolve(p).clone(), s))
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    rows
}

/// One-line-per-fact model summary for logs and tooling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelSummary {
    /// Templates with θ mass.
    pub templates: usize,
    /// Distinct predicates referenced by θ.
    pub predicates: usize,
    /// Templates whose argmax predicate is a single edge.
    pub direct_templates: usize,
    /// Templates whose argmax predicate is a multi-edge path.
    pub expanded_templates: usize,
    /// Observations consumed during learning.
    pub observations: usize,
}

/// Compute the summary.
pub fn summary(model: &LearnedModel) -> ModelSummary {
    let mut direct = 0;
    let mut expanded = 0;
    for (tid, row) in model.theta.iter() {
        if row.is_empty() {
            continue;
        }
        let _ = tid;
        let (p, _) = row[0];
        if model.predicates.resolve(p).len() == 1 {
            direct += 1;
        } else {
            expanded += 1;
        }
    }
    ModelSummary {
        templates: model.theta.supported_templates(),
        predicates: model.theta.distinct_predicates(),
        direct_templates: direct,
        expanded_templates: expanded,
        observations: model.stats.observations,
    }
}

/// Render a human-readable model report (top templates per predicate).
pub fn report(model: &LearnedModel, store: &TripleStore, per_predicate: usize) -> String {
    let mut out = String::new();
    let s = summary(model);
    out.push_str(&format!(
        "model: {} templates over {} predicates ({} direct / {} expanded), {} observations\n",
        s.templates, s.predicates, s.direct_templates, s.expanded_templates, s.observations
    ));
    for (pred, path, support) in top_predicates(model, 1) {
        out.push_str(&format!(
            "\n{} (support {}):\n",
            path.render(store),
            support
        ));
        let _ = pred;
        for (_, canonical, sup, theta) in templates_for_predicate(model, &path)
            .into_iter()
            .take(per_predicate)
        {
            out.push_str(&format!("  {canonical}  (n={sup}, θ={theta:.2})\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_corpus::{CorpusConfig, QaCorpus, World, WorldConfig};
    use kbqa_nlp::GazetteerNer;

    use crate::learner::{Learner, LearnerConfig};

    fn learned() -> (World, LearnedModel) {
        let world = World::generate(WorldConfig::tiny(42));
        let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(1, 700));
        let ner = GazetteerNer::from_store(&world.store);
        let learner = Learner::new(
            &world.store,
            &world.conceptualizer,
            &ner,
            &world.predicate_classes,
        );
        let pairs: Vec<(&str, &str)> = corpus
            .pairs
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str()))
            .collect();
        let (model, _) = learner.learn(&pairs, &LearnerConfig::default());
        (world, model)
    }

    #[test]
    fn spouse_templates_are_retrievable() {
        let (world, model) = learned();
        let spouse = world.intent_by_name("person_spouse").unwrap();
        let rows = templates_for_predicate(&model, &spouse.path);
        assert!(!rows.is_empty(), "no spouse templates");
        for (_, canonical, support, theta) in &rows {
            assert!(canonical.contains('$'));
            assert!(*support > 0);
            assert!(*theta > 0.0);
        }
        // Ranked by support·θ descending.
        for w in rows.windows(2) {
            assert!(w[0].2 as f64 * w[0].3 >= w[1].2 as f64 * w[1].3 - 1e-9);
        }
    }

    #[test]
    fn unknown_predicate_yields_empty() {
        let (world, model) = learned();
        let date = world.store.dict().find_predicate("date").unwrap();
        let never_learned = ExpandedPredicate::new(vec![date, date, date]);
        assert!(templates_for_predicate(&model, &never_learned).is_empty());
    }

    #[test]
    fn top_predicates_respects_min_len() {
        let (_world, model) = learned();
        let all = top_predicates(&model, 1);
        let multi = top_predicates(&model, 2);
        assert!(all.len() > multi.len());
        for (_, path, _) in &multi {
            assert!(path.len() >= 2);
        }
        // Sorted descending by support.
        for w in all.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }

    #[test]
    fn summary_accounts_for_every_supported_template() {
        let (_world, model) = learned();
        let s = summary(&model);
        assert_eq!(s.templates, s.direct_templates + s.expanded_templates);
        assert!(s.expanded_templates > 0, "no expanded-predicate templates");
        assert_eq!(s.observations, model.stats.observations);
    }

    #[test]
    fn report_renders() {
        let (world, model) = learned();
        let text = report(&model, &world.store, 2);
        assert!(text.contains("model:"));
        assert!(text.contains("θ="));
        assert!(text.contains('→'), "no expanded predicate in report");
    }
}
