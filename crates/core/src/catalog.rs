//! Predicate catalog: dense interning of expanded predicates.
//!
//! The EM tables and the online engine address predicates (single-edge and
//! expanded alike) through dense [`PredId`]s; the catalog owns the
//! id ⇄ [`ExpandedPredicate`] mapping. Single-edge predicates and paths
//! share one id space, matching the paper's uniform treatment after Sec 6.1
//! ("the KBQA model … is flexible for expanded predicates; we only need some
//! slight changes").

use kbqa_common::define_id;
use kbqa_common::hash::FxHashMap;
use serde::{Deserialize, Serialize};

use kbqa_rdf::{ExpandedPredicate, PredicateId, TripleStore};

define_id!(
    /// Dense id of an interned (possibly expanded) predicate.
    pub struct PredId
);

/// Bidirectional `ExpandedPredicate ⇄ PredId` catalog.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PredicateCatalog {
    paths: Vec<ExpandedPredicate>,
    #[serde(skip)]
    ids: FxHashMap<ExpandedPredicate, PredId>,
}

impl PredicateCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a predicate path.
    pub fn intern(&mut self, path: ExpandedPredicate) -> PredId {
        if let Some(&id) = self.ids.get(&path) {
            return id;
        }
        let id = PredId::new(u32::try_from(self.paths.len()).expect("pred id overflow"));
        self.ids.insert(path.clone(), id);
        self.paths.push(path);
        id
    }

    /// Intern a single-edge predicate.
    pub fn intern_single(&mut self, p: PredicateId) -> PredId {
        self.intern(ExpandedPredicate::single(p))
    }

    /// Look up without interning.
    pub fn get(&self, path: &ExpandedPredicate) -> Option<PredId> {
        self.ids.get(path).copied()
    }

    /// Resolve an id to its path.
    pub fn resolve(&self, id: PredId) -> &ExpandedPredicate {
        &self.paths[id.index()]
    }

    /// Render an id through the store's dictionary (`marriage→person→name`).
    pub fn render(&self, id: PredId, store: &TripleStore) -> String {
        self.resolve(id).render(store)
    }

    /// Number of interned predicates.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Iterate all `(id, path)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PredId, &ExpandedPredicate)> {
        self.paths
            .iter()
            .enumerate()
            .map(|(i, p)| (PredId::new(i as u32), p))
    }

    /// Rebuild the lookup map after deserialization.
    pub fn rebuild_index(&mut self) {
        self.ids = self
            .paths
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), PredId::new(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_rdf::GraphBuilder;

    #[test]
    fn interning_is_idempotent() {
        let mut b = GraphBuilder::new();
        let p1 = b.predicate("population");
        let p2 = b.predicate("dob");
        let mut catalog = PredicateCatalog::new();
        let a = catalog.intern_single(p1);
        let b2 = catalog.intern_single(p1);
        let c = catalog.intern_single(p2);
        assert_eq!(a, b2);
        assert_ne!(a, c);
        assert_eq!(catalog.len(), 2);
    }

    #[test]
    fn paths_and_singles_share_id_space() {
        let mut b = GraphBuilder::new();
        let marriage = b.predicate("marriage");
        let person = b.predicate("person");
        let name = b.predicate("name");
        let mut catalog = PredicateCatalog::new();
        let single = catalog.intern_single(marriage);
        let path = catalog.intern(ExpandedPredicate::new(vec![marriage, person, name]));
        assert_ne!(single, path);
        assert_eq!(catalog.resolve(path).len(), 3);
        assert_eq!(catalog.resolve(single).len(), 1);
    }

    #[test]
    fn render_through_store() {
        let mut b = GraphBuilder::new();
        let marriage = b.predicate("marriage");
        let person = b.predicate("person");
        let mut catalog = PredicateCatalog::new();
        let id = catalog.intern(ExpandedPredicate::new(vec![marriage, person]));
        let store = b.build();
        assert_eq!(catalog.render(id, &store), "marriage→person");
    }

    #[test]
    fn rebuild_index_restores_lookups() {
        let mut b = GraphBuilder::new();
        let p = b.predicate("x");
        let mut catalog = PredicateCatalog::new();
        let id = catalog.intern_single(p);
        let mut stripped = PredicateCatalog {
            paths: catalog.paths.clone(),
            ids: Default::default(),
        };
        stripped.rebuild_index();
        assert_eq!(stripped.get(&ExpandedPredicate::single(p)), Some(id));
    }
}
