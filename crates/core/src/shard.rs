//! The in-process scatter-gather shard router.
//!
//! [`ShardRouter`] owns the materialized shards of a
//! [`ShardPlan`]: N self-contained
//! [`TripleStore`]s, per-shard fault flags, and the per-shard telemetry
//! lanes ([`kbqa_obs::ShardObs`]). The engine consults it at exactly one
//! point — the `V(e, p)` value lookup in the BFQ kernel — so a sharded
//! engine *grounds globally, looks up shard-locally, and accumulates
//! globally*:
//!
//! 1. NER grounding and conceptualization run against the global store and
//!    gazetteer (entity identity is global — the paper's Eq (7) enumerates
//!    one global grounding set).
//! 2. Each grounding's KB traversals fan out to **only the owning shard**
//!    (subject hash). Distinct groundings may hit distinct shards; the
//!    union is the question's `shard_fanout`.
//! 3. Contributions accumulate in the same sequential global grounding
//!    order as the unsharded kernel, into one global
//!    [`TopK`](kbqa_common::topk::TopK) whose `floor` bound rejects every
//!    non-winner at push time — so the merged ranking (answers, score
//!    bits, provenance, tie order) is byte-identical to the single-store
//!    kernel. `tests/shard_equivalence.rs` pins this across shard counts.
//!
//! Paths longer than the plan's closure depth (a swapped-in model may
//! intern longer expanded predicates than the cut replicated) fall back to
//! the global store per lookup — correctness never depends on the closure
//! being deep enough.
//!
//! **Fault isolation:** each shard carries a poison flag (for fault
//! injection and, later, multi-process workers whose sockets die). Routing
//! to a poisoned shard panics with a typed [`ShardPanic`] payload; the
//! service catches it at the request boundary and degrades that question to
//! a typed [`Refusal::ShardUnavailable`](crate::service::Refusal) instead
//! of taking the process down.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use kbqa_obs::ShardObs;
use kbqa_rdf::shard::{partition, ShardPlan, ShardStats};
use kbqa_rdf::{NodeId, TripleStore};

/// Panic payload carried when a lookup routes to a poisoned shard; the
/// service downcasts it to attribute the failure to the right lane.
#[derive(Clone, Copy, Debug)]
pub struct ShardPanic(pub usize);

/// The shard router: plan + materialized shard stores + fault flags +
/// telemetry lanes.
///
/// With a 1-shard plan the router is **degenerate**: no shard stores are
/// materialized and the engine runs the plain single-store path — `--shards
/// 1` is the PR4-baseline path, not a copy of the world.
#[derive(Debug)]
pub struct ShardRouter {
    plan: ShardPlan,
    stores: Vec<Arc<TripleStore>>,
    faults: Vec<AtomicU8>,
    stats: ShardStats,
    obs: ShardObs,
}

impl ShardRouter {
    /// Partition `store` per `plan` and build the router. A 1-shard plan
    /// builds the degenerate router (no partitioning, no copies).
    pub fn from_store(store: &TripleStore, plan: ShardPlan) -> Self {
        if plan.shards() <= 1 {
            return Self::degenerate(plan);
        }
        let (stores, stats) = partition(store, &plan);
        Self::assemble(plan, stores.into_iter().map(Arc::new).collect(), stats)
    }

    /// A router over pre-built shard stores — the persist warm-start path
    /// (per-shard snapshots map straight in, no re-partitioning).
    pub fn from_stores(plan: ShardPlan, stores: Vec<Arc<TripleStore>>, stats: ShardStats) -> Self {
        assert_eq!(
            stores.len(),
            plan.shards(),
            "shard store count must match the plan"
        );
        Self::assemble(plan, stores, stats)
    }

    fn degenerate(plan: ShardPlan) -> Self {
        Self {
            plan,
            stores: Vec::new(),
            faults: (0..1).map(|_| AtomicU8::new(0)).collect(),
            stats: ShardStats::default(),
            obs: ShardObs::new(1),
        }
    }

    fn assemble(plan: ShardPlan, stores: Vec<Arc<TripleStore>>, stats: ShardStats) -> Self {
        let n = stores.len();
        Self {
            plan,
            stores,
            faults: (0..n).map(|_| AtomicU8::new(0)).collect(),
            stats,
            obs: ShardObs::new(n),
        }
    }

    /// The plan this router materializes.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Balance/replication stats of the cut (empty for a degenerate
    /// router).
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// Per-shard telemetry lanes + fan-out distribution.
    pub fn obs(&self) -> &ShardObs {
        &self.obs
    }

    /// Whether this is the 1-shard degenerate router (engine runs the
    /// plain single-store path).
    pub fn is_degenerate(&self) -> bool {
        self.stores.is_empty()
    }

    /// Number of shards actually materialized (0 when degenerate).
    pub fn shard_count(&self) -> usize {
        self.stores.len()
    }

    /// The materialized shard stores, indexed by shard id.
    pub fn stores(&self) -> &[Arc<TripleStore>] {
        &self.stores
    }

    /// The shard store for shard `i`, fault-checked: panics with a typed
    /// [`ShardPanic`] payload when the shard is poisoned — the simulated
    /// equivalent of a dead shard worker mid-query.
    #[inline]
    pub fn shard_store(&self, i: usize) -> &TripleStore {
        if self.faults[i].load(Ordering::Relaxed) != 0 {
            std::panic::panic_any(ShardPanic(i));
        }
        &self.stores[i]
    }

    /// The owner shard of `entity` under the plan.
    #[inline]
    pub fn owner(&self, entity: NodeId) -> usize {
        self.plan.owner(entity)
    }

    /// Poison shard `i`: subsequent lookups routed there panic (and are
    /// isolated by the service). Fault-injection/testing surface.
    pub fn inject_fault(&self, i: usize) {
        self.faults[i].store(1, Ordering::Relaxed);
    }

    /// Heal a poisoned shard.
    pub fn heal(&self, i: usize) {
        self.faults[i].store(0, Ordering::Relaxed);
    }

    /// Whether shard `i` is currently poisoned.
    pub fn is_poisoned(&self, i: usize) -> bool {
        self.faults
            .get(i)
            .map(|f| f.load(Ordering::Relaxed) != 0)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_rdf::GraphBuilder;

    fn store() -> TripleStore {
        let mut b = GraphBuilder::new();
        for i in 0..20 {
            let c = b.resource(&format!("e{i}"));
            b.name(c, &format!("Entity {i}"));
            b.fact_int(c, "population", i64::from(i));
        }
        b.build()
    }

    #[test]
    fn one_shard_plan_is_degenerate() {
        let router = ShardRouter::from_store(&store(), ShardPlan::new(1));
        assert!(router.is_degenerate());
        assert_eq!(router.shard_count(), 0);
        assert_eq!(router.obs().shards(), 1);
    }

    #[test]
    fn poisoned_shard_panics_with_typed_payload() {
        let router = ShardRouter::from_store(&store(), ShardPlan::new(2));
        assert!(!router.is_poisoned(1));
        router.inject_fault(1);
        assert!(router.is_poisoned(1));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            router.shard_store(1);
        }))
        .unwrap_err();
        let panic = err.downcast_ref::<ShardPanic>().expect("typed payload");
        assert_eq!(panic.0, 1);
        router.heal(1);
        let _ = router.shard_store(1);
    }

    #[test]
    fn shard_stores_carry_adjacency_indexes() {
        let router = ShardRouter::from_store(&store(), ShardPlan::new(4));
        for s in router.stores() {
            assert!(s.has_adjacency_index());
        }
    }
}
