//! The scatter-gather shard router: in-process lanes or remote workers.
//!
//! [`ShardRouter`] owns the lanes of a
//! [`ShardPlan`]: either N self-contained
//! [`TripleStore`]s (in-process serving) or N [`RemoteShard`] clients
//! speaking the wire protocol to out-of-process `kbqa-shardd` workers —
//! plus per-shard fault flags and the per-shard telemetry lanes
//! ([`kbqa_obs::ShardObs`]). The engine consults it at exactly one
//! point — the `V(e, p)` value lookup in the BFQ kernel — so a sharded
//! engine *grounds globally, looks up shard-locally, and accumulates
//! globally*:
//!
//! 1. NER grounding and conceptualization run against the global store and
//!    gazetteer (entity identity is global — the paper's Eq (7) enumerates
//!    one global grounding set).
//! 2. Each grounding's KB traversals fan out to **only the owning shard**
//!    (subject hash). Distinct groundings may hit distinct shards; the
//!    union is the question's `shard_fanout`.
//! 3. Contributions accumulate in the same sequential global grounding
//!    order as the unsharded kernel, into one global
//!    [`TopK`](kbqa_common::topk::TopK) whose `floor` bound rejects every
//!    non-winner at push time — so the merged ranking (answers, score
//!    bits, provenance, tie order) is byte-identical to the single-store
//!    kernel. `tests/shard_equivalence.rs` pins this across shard counts,
//!    and the server's chaos suite pins it across *deployment shapes*
//!    (remote lanes run the same traversal on the same snapshot bytes).
//!
//! Paths longer than the plan's closure depth (a swapped-in model may
//! intern longer expanded predicates than the cut replicated) fall back to
//! the global store per lookup — correctness never depends on the closure
//! being deep enough.
//!
//! **Fault isolation:** each shard carries a poison flag (fault injection
//! for local lanes; for remote lanes the supervisor sets it while a worker
//! is dead, hung, or parked so lookups fail fast without burning a network
//! deadline). Routing to a poisoned shard — or exhausting a remote lane's
//! deadline/retry budget — panics with a typed [`ShardPanic`] payload; the
//! service catches it at the request boundary and degrades that question to
//! a typed [`Refusal::ShardUnavailable`](crate::service::Refusal) instead
//! of taking the process down.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use kbqa_obs::ShardObs;
use kbqa_rdf::path::{objects_via_path_into, ExpandedPredicate, PathWorkspace};
pub use kbqa_rdf::shard::ShardStats;
use kbqa_rdf::shard::{partition, ShardPlan};
use kbqa_rdf::{NodeId, TripleStore};

use crate::remote::RemoteShard;

/// Panic payload carried when a lookup routes to a poisoned shard (or a
/// remote lane exhausts its deadline/retry budget); the service downcasts
/// it to attribute the failure to the right lane.
#[derive(Clone, Copy, Debug)]
pub struct ShardPanic(pub usize);

/// The per-shard serving substrate: materialized stores in this process,
/// or wire-protocol clients to one worker process per shard.
#[derive(Debug)]
enum Lanes {
    Local(Vec<Arc<TripleStore>>),
    Remote(Vec<RemoteShard>),
}

impl Lanes {
    fn len(&self) -> usize {
        match self {
            Lanes::Local(stores) => stores.len(),
            Lanes::Remote(lanes) => lanes.len(),
        }
    }
}

/// The shard router: plan + lanes (local stores or remote workers) +
/// fault flags + telemetry.
///
/// With a 1-shard plan the router is **degenerate**: no lanes are
/// materialized and the engine runs the plain single-store path — `--shards
/// 1` is the PR4-baseline path, not a copy of the world.
#[derive(Debug)]
pub struct ShardRouter {
    plan: ShardPlan,
    lanes: Lanes,
    faults: Vec<AtomicU8>,
    stats: ShardStats,
    obs: ShardObs,
}

impl ShardRouter {
    /// Partition `store` per `plan` and build the router. A 1-shard plan
    /// builds the degenerate router (no partitioning, no copies).
    pub fn from_store(store: &TripleStore, plan: ShardPlan) -> Self {
        if plan.shards() <= 1 {
            return Self::degenerate(plan);
        }
        let (stores, stats) = partition(store, &plan);
        Self::assemble(plan, stores.into_iter().map(Arc::new).collect(), stats)
    }

    /// A router over pre-built shard stores — the persist warm-start path
    /// (per-shard snapshots map straight in, no re-partitioning).
    pub fn from_stores(plan: ShardPlan, stores: Vec<Arc<TripleStore>>, stats: ShardStats) -> Self {
        assert_eq!(
            stores.len(),
            plan.shards(),
            "shard store count must match the plan"
        );
        Self::assemble(plan, stores, stats)
    }

    /// A router over remote worker lanes — the multi-process serving path.
    /// The supervisor owns worker lifecycle; it parks/heals lanes through
    /// [`ShardRouter::inject_fault`] / [`ShardRouter::heal`] as workers
    /// die and recover.
    pub fn from_remote(plan: ShardPlan, lanes: Vec<RemoteShard>, stats: ShardStats) -> Self {
        assert_eq!(
            lanes.len(),
            plan.shards(),
            "remote lane count must match the plan"
        );
        let n = lanes.len();
        Self {
            plan,
            lanes: Lanes::Remote(lanes),
            faults: (0..n).map(|_| AtomicU8::new(0)).collect(),
            stats,
            obs: ShardObs::new(n),
        }
    }

    fn degenerate(plan: ShardPlan) -> Self {
        Self {
            plan,
            lanes: Lanes::Local(Vec::new()),
            faults: (0..1).map(|_| AtomicU8::new(0)).collect(),
            stats: ShardStats::default(),
            obs: ShardObs::new(1),
        }
    }

    fn assemble(plan: ShardPlan, stores: Vec<Arc<TripleStore>>, stats: ShardStats) -> Self {
        let n = stores.len();
        Self {
            plan,
            lanes: Lanes::Local(stores),
            faults: (0..n).map(|_| AtomicU8::new(0)).collect(),
            stats,
            obs: ShardObs::new(n),
        }
    }

    /// The plan this router materializes.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Balance/replication stats of the cut (empty for a degenerate
    /// router).
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// Per-shard telemetry lanes + fan-out distribution.
    pub fn obs(&self) -> &ShardObs {
        &self.obs
    }

    /// Whether this is the 1-shard degenerate router (engine runs the
    /// plain single-store path).
    pub fn is_degenerate(&self) -> bool {
        self.lanes.len() == 0
    }

    /// Whether the lanes are in-process stores (a remote router serves
    /// through worker processes and has nothing to persist).
    pub fn is_local(&self) -> bool {
        matches!(self.lanes, Lanes::Local(_))
    }

    /// Number of shards actually materialized (0 when degenerate).
    pub fn shard_count(&self) -> usize {
        self.lanes.len()
    }

    /// The materialized shard stores, indexed by shard id — empty for a
    /// degenerate *or remote* router (check [`ShardRouter::is_local`]).
    pub fn stores(&self) -> &[Arc<TripleStore>] {
        match &self.lanes {
            Lanes::Local(stores) => stores,
            Lanes::Remote(_) => &[],
        }
    }

    /// The remote lanes, when this router serves through workers.
    pub fn remote_lanes(&self) -> &[RemoteShard] {
        match &self.lanes {
            Lanes::Local(_) => &[],
            Lanes::Remote(lanes) => lanes,
        }
    }

    #[inline]
    fn check_fault(&self, i: usize) {
        if self.faults[i].load(Ordering::Relaxed) != 0 {
            std::panic::panic_any(ShardPanic(i));
        }
    }

    /// The shard store for shard `i`, fault-checked: panics with a typed
    /// [`ShardPanic`] payload when the shard is poisoned — the simulated
    /// equivalent of a dead shard worker mid-query.
    ///
    /// # Panics
    /// Besides the poison unwind, panics (plainly) on a remote router —
    /// remote lanes have no in-process store; use
    /// [`ShardRouter::lookup_into`].
    #[inline]
    pub fn shard_store(&self, i: usize) -> &TripleStore {
        self.check_fault(i);
        match &self.lanes {
            Lanes::Local(stores) => &stores[i],
            Lanes::Remote(_) => panic!("shard_store on a remote router; use lookup_into"),
        }
    }

    /// The one scatter point: run `V(entity, path)` on shard `i` at
    /// `epoch`, appending values in shard-traversal order. Local lanes
    /// traverse in-process; remote lanes issue the wire RPC under the
    /// lane's deadline/retry budget. Any failure — poison flag, exhausted
    /// budget, epoch refusal — unwinds with the typed [`ShardPanic`] the
    /// service isolates per question.
    #[inline]
    pub fn lookup_into(
        &self,
        i: usize,
        entity: NodeId,
        path: &ExpandedPredicate,
        epoch: u64,
        ws: &mut PathWorkspace,
        out: &mut Vec<NodeId>,
    ) {
        self.check_fault(i);
        match &self.lanes {
            Lanes::Local(stores) => {
                objects_via_path_into(&stores[i], entity, path, ws, out);
            }
            Lanes::Remote(lanes) => {
                // The error detail dies here; the service converts the
                // unwind into a typed ShardUnavailable and records the
                // failure on this lane (same path as a local poison).
                if lanes[i].lookup_into(epoch, entity, path, out).is_err() {
                    std::panic::panic_any(ShardPanic(i));
                }
            }
        }
    }

    /// The owner shard of `entity` under the plan.
    #[inline]
    pub fn owner(&self, entity: NodeId) -> usize {
        self.plan.owner(entity)
    }

    /// Poison shard `i`: subsequent lookups routed there panic (and are
    /// isolated by the service). Fault-injection surface for local lanes;
    /// the supervisor's park/fast-fail switch for remote lanes.
    pub fn inject_fault(&self, i: usize) {
        self.faults[i].store(1, Ordering::Relaxed);
    }

    /// Heal a poisoned shard.
    pub fn heal(&self, i: usize) {
        self.faults[i].store(0, Ordering::Relaxed);
    }

    /// Whether shard `i` is currently poisoned.
    pub fn is_poisoned(&self, i: usize) -> bool {
        self.faults
            .get(i)
            .map(|f| f.load(Ordering::Relaxed) != 0)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_rdf::GraphBuilder;

    fn store() -> TripleStore {
        let mut b = GraphBuilder::new();
        for i in 0..20 {
            let c = b.resource(&format!("e{i}"));
            b.name(c, &format!("Entity {i}"));
            b.fact_int(c, "population", i64::from(i));
        }
        b.build()
    }

    #[test]
    fn one_shard_plan_is_degenerate() {
        let router = ShardRouter::from_store(&store(), ShardPlan::new(1));
        assert!(router.is_degenerate());
        assert!(router.is_local());
        assert_eq!(router.shard_count(), 0);
        assert_eq!(router.obs().shards(), 1);
    }

    #[test]
    fn poisoned_shard_panics_with_typed_payload() {
        let router = ShardRouter::from_store(&store(), ShardPlan::new(2));
        assert!(!router.is_poisoned(1));
        router.inject_fault(1);
        assert!(router.is_poisoned(1));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            router.shard_store(1);
        }))
        .unwrap_err();
        let panic = err.downcast_ref::<ShardPanic>().expect("typed payload");
        assert_eq!(panic.0, 1);
        router.heal(1);
        let _ = router.shard_store(1);
    }

    #[test]
    fn shard_stores_carry_adjacency_indexes() {
        let router = ShardRouter::from_store(&store(), ShardPlan::new(4));
        for s in router.stores() {
            assert!(s.has_adjacency_index());
        }
    }

    #[test]
    fn local_lookup_matches_direct_traversal() {
        let global = store();
        let router = ShardRouter::from_store(&global, ShardPlan::new(4));
        let pred = global
            .dict()
            .find_predicate("population")
            .expect("interned");
        let path = ExpandedPredicate::single(pred);
        let mut ws = PathWorkspace::default();
        for id in 0..global.dict().node_count() as u32 {
            let entity = NodeId(id);
            let mut direct = Vec::new();
            objects_via_path_into(&global, entity, &path, &mut ws, &mut direct);
            let mut routed = Vec::new();
            router.lookup_into(router.owner(entity), entity, &path, 0, &mut ws, &mut routed);
            assert_eq!(routed, direct, "entity {id}");
        }
    }

    #[test]
    fn remote_router_exposes_lanes_not_stores() {
        use crate::remote::{RemoteOptions, RemoteShard};
        let plan = ShardPlan::new(2);
        let lanes = vec![
            RemoteShard::new(0, "/tmp/none-0.sock", RemoteOptions::default()),
            RemoteShard::new(1, "/tmp/none-1.sock", RemoteOptions::default()),
        ];
        let router = ShardRouter::from_remote(plan, lanes, ShardStats::default());
        assert!(!router.is_local());
        assert!(!router.is_degenerate());
        assert_eq!(router.shard_count(), 2);
        assert!(router.stores().is_empty());
        assert_eq!(router.remote_lanes().len(), 2);
        // A dead remote lane unwinds with the same typed payload as a
        // poisoned local one (deadline-bounded: nothing listens there).
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ws = PathWorkspace::default();
            let mut out = Vec::new();
            router.lookup_into(
                1,
                NodeId(0),
                &ExpandedPredicate::single(kbqa_rdf::PredicateId(0)),
                0,
                &mut ws,
                &mut out,
            );
        }))
        .unwrap_err();
        assert_eq!(err.downcast_ref::<ShardPanic>().expect("typed").0, 1);
    }
}
