//! Allocation-free JSON serialization for the serving-edge response types.
//!
//! The vendored `serde_json::to_string` builds an owned `Value` tree (a
//! `String` per key, a `Vec` per sequence) before writing a single byte —
//! fine for config files, ruinous on the per-response hot path. This module
//! writes [`QaResponse`] (and its constituents) **directly into a caller
//! provided byte buffer**, byte-identical to `serde_json::to_string`, with
//! zero heap allocations once the buffer has warmed to its high-water mark.
//!
//! Byte-identity contract (pinned by the `identical_to_serde_json` tests and
//! by the server's streamed-vs-buffered equivalence suite):
//!
//! * struct fields emit in declaration order, compact (no whitespace);
//! * `Option::None` → `null`, `Some(v)` → the inner value;
//! * unit enum variants (the [`Refusal`] taxonomy) → `"VariantName"`;
//! * `#[serde(transparent)]` newtypes ([`kbqa_rdf::NodeId`]) → the bare inner integer;
//! * finite floats via `{:?}` formatting, non-finite → `null` (JSON has no
//!   NaN/Infinity — same policy as the vendored writer);
//! * strings escape `"` `\` `\n` `\r` `\t` and all other control chars
//!   below 0x20 as lowercase `\u00xx`.
//!
//! Integer and float formatting go through [`std::fmt`] into the buffer via
//! a small adapter — the formatting machinery for primitives is
//! allocation-free, so the whole path is too (pinned by the counting
//! allocator test in `tests/alloc_steady_state.rs`).

use crate::engine::{Answer, ChoiceStats};
use crate::service::{QaResponse, Refusal};
use kbqa_obs::StageBreakdown;

/// `fmt::Write` over a byte buffer, so primitive formatting (`u64`, `{:?}`
/// floats) lands directly in the output without an intermediate `String`.
struct BufWrite<'a>(&'a mut Vec<u8>);

impl std::fmt::Write for BufWrite<'_> {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.0.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

fn write_u64(out: &mut Vec<u8>, v: u64) {
    use std::fmt::Write as _;
    let _ = write!(BufWrite(out), "{v}");
}

fn write_usize(out: &mut Vec<u8>, v: usize) {
    use std::fmt::Write as _;
    let _ = write!(BufWrite(out), "{v}");
}

fn write_f64(out: &mut Vec<u8>, v: f64) {
    if v.is_finite() {
        use std::fmt::Write as _;
        let _ = write!(BufWrite(out), "{v:?}");
    } else {
        out.extend_from_slice(b"null");
    }
}

/// JSON string escaping, byte-identical to the vendored writer. Escapes are
/// all single-byte ASCII, so we scan bytes and copy unescaped runs wholesale
/// — multi-byte UTF-8 passes through untouched.
fn write_str(out: &mut Vec<u8>, s: &str) {
    out.push(b'"');
    let bytes = s.as_bytes();
    let mut run_start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let esc: &[u8] = match b {
            b'"' => b"\\\"",
            b'\\' => b"\\\\",
            b'\n' => b"\\n",
            b'\r' => b"\\r",
            b'\t' => b"\\t",
            b if b < 0x20 => {
                out.extend_from_slice(&bytes[run_start..i]);
                const HEX: &[u8; 16] = b"0123456789abcdef";
                out.extend_from_slice(b"\\u00");
                out.push(HEX[(b >> 4) as usize]);
                out.push(HEX[(b & 0xf) as usize]);
                run_start = i + 1;
                continue;
            }
            _ => continue,
        };
        out.extend_from_slice(&bytes[run_start..i]);
        out.extend_from_slice(esc);
        run_start = i + 1;
    }
    out.extend_from_slice(&bytes[run_start..]);
    out.push(b'"');
}

fn write_refusal(out: &mut Vec<u8>, r: Refusal) {
    let name: &[u8] = match r {
        Refusal::NoEntityGrounded => b"\"NoEntityGrounded\"",
        Refusal::NoTemplateMatched => b"\"NoTemplateMatched\"",
        Refusal::NoPredicateAboveTheta => b"\"NoPredicateAboveTheta\"",
        Refusal::EmptyValueSet => b"\"EmptyValueSet\"",
        Refusal::ShardUnavailable => b"\"ShardUnavailable\"",
    };
    out.extend_from_slice(name);
}

fn write_answer(out: &mut Vec<u8>, a: &Answer) {
    out.extend_from_slice(b"{\"value\":");
    write_str(out, &a.value);
    out.extend_from_slice(b",\"node\":");
    match a.node {
        Some(node) => write_u64(out, u64::from(node.0)),
        None => out.extend_from_slice(b"null"),
    }
    out.extend_from_slice(b",\"score\":");
    write_f64(out, a.score);
    out.extend_from_slice(b",\"entity\":");
    write_str(out, &a.entity);
    out.extend_from_slice(b",\"template\":");
    write_str(out, &a.template);
    out.extend_from_slice(b",\"predicate\":");
    write_str(out, &a.predicate);
    out.push(b'}');
}

fn write_stats(out: &mut Vec<u8>, s: &ChoiceStats) {
    out.extend_from_slice(b"{\"entities\":");
    write_usize(out, s.entities);
    out.extend_from_slice(b",\"templates_per_pair\":");
    write_f64(out, s.templates_per_pair);
    out.extend_from_slice(b",\"predicates_per_template\":");
    write_f64(out, s.predicates_per_template);
    out.extend_from_slice(b",\"values_per_pair\":");
    write_f64(out, s.values_per_pair);
    out.push(b'}');
}

fn write_stage_us(out: &mut Vec<u8>, s: &StageBreakdown) {
    out.extend_from_slice(b"{\"parse_us\":");
    write_u64(out, s.parse_us);
    out.extend_from_slice(b",\"ner_grounding_us\":");
    write_u64(out, s.ner_grounding_us);
    out.extend_from_slice(b",\"conceptualize_us\":");
    write_u64(out, s.conceptualize_us);
    out.extend_from_slice(b",\"template_match_us\":");
    write_u64(out, s.template_match_us);
    out.extend_from_slice(b",\"predicate_score_us\":");
    write_u64(out, s.predicate_score_us);
    out.extend_from_slice(b",\"value_lookup_us\":");
    write_u64(out, s.value_lookup_us);
    out.extend_from_slice(b",\"rank_topk_us\":");
    write_u64(out, s.rank_topk_us);
    out.extend_from_slice(b",\"serialize_us\":");
    write_u64(out, s.serialize_us);
    out.push(b'}');
}

impl QaResponse {
    /// Serialize this response as compact JSON directly into `out`,
    /// byte-identical to `serde_json::to_string(self)` but without building
    /// the intermediate `Value` tree. Appends; does not clear the buffer.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"{\"answers\":[");
        for (i, a) in self.answers.iter().enumerate() {
            if i > 0 {
                out.push(b',');
            }
            write_answer(out, a);
        }
        out.extend_from_slice(b"],\"refusal\":");
        match self.refusal {
            Some(r) => write_refusal(out, r),
            None => out.extend_from_slice(b"null"),
        }
        out.extend_from_slice(b",\"stats\":");
        match &self.stats {
            Some(s) => write_stats(out, s),
            None => out.extend_from_slice(b"null"),
        }
        out.extend_from_slice(b",\"model_epoch\":");
        write_u64(out, self.model_epoch);
        out.extend_from_slice(b",\"stage_us\":");
        match &self.stage_us {
            Some(s) => write_stage_us(out, s),
            None => out.extend_from_slice(b"null"),
        }
        out.push(b'}');
    }

    /// Exact serialized length in bytes — what [`Self::serialize_into`]
    /// will append. Used by the server to size Content-Length without
    /// serializing twice. (Costs one dry serialization walk; only worth it
    /// when the buffer cannot be framed after the fact.)
    pub fn serialized_len(&self) -> usize {
        let mut out = Vec::new();
        self.serialize_into(&mut out);
        out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbqa_rdf::NodeId;

    fn answer(value: &str, node: Option<u32>, score: f64) -> Answer {
        Answer {
            value: value.to_string(),
            node: node.map(NodeId),
            score,
            entity: "Honolulu".to_string(),
            template: "how many people live in $city".to_string(),
            predicate: "population".to_string(),
        }
    }

    fn assert_identical(resp: &QaResponse) {
        let via_serde = serde_json::to_string(resp).expect("serde_json");
        let mut direct = Vec::new();
        resp.serialize_into(&mut direct);
        assert_eq!(
            String::from_utf8(direct).expect("utf8"),
            via_serde,
            "serialize_into must be byte-identical to serde_json"
        );
    }

    #[test]
    fn identical_to_serde_json_basic() {
        let mut resp = QaResponse::from_answers(vec![
            answer("390k", Some(7), 0.25),
            answer("400000", None, 1.0),
        ]);
        resp.model_epoch = 42;
        assert_identical(&resp);
    }

    #[test]
    fn identical_to_serde_json_refusals() {
        for refusal in [
            Refusal::NoEntityGrounded,
            Refusal::NoTemplateMatched,
            Refusal::NoPredicateAboveTheta,
            Refusal::EmptyValueSet,
            Refusal::ShardUnavailable,
        ] {
            let mut resp = QaResponse::refused(refusal);
            resp.model_epoch = u64::MAX;
            assert_identical(&resp);
        }
    }

    #[test]
    fn identical_to_serde_json_explain_payload() {
        let mut resp = QaResponse::from_answers(vec![answer("x", Some(0), 1e-9)]);
        resp.stats = Some(ChoiceStats {
            entities: 3,
            templates_per_pair: 1.5,
            predicates_per_template: 0.1,
            values_per_pair: 2.0,
        });
        resp.stage_us = Some(StageBreakdown {
            parse_us: 1,
            ner_grounding_us: 2,
            conceptualize_us: 3,
            template_match_us: 4,
            predicate_score_us: 5,
            value_lookup_us: 0,
            rank_topk_us: u64::MAX,
            serialize_us: 7,
        });
        assert_identical(&resp);
    }

    #[test]
    fn identical_to_serde_json_string_escapes() {
        for value in [
            "plain",
            "quote\"back\\slash",
            "tab\tnewline\ncarriage\r",
            "ctrl\u{01}\u{1f}bytes",
            "unicode: θ — 東京 🗼",
            "",
            "\u{0}",
        ] {
            let resp = QaResponse::from_answers(vec![answer(value, Some(1), 0.5)]);
            assert_identical(&resp);
        }
    }

    #[test]
    fn identical_to_serde_json_float_edge_cases() {
        for score in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            0.1,
            1e-9,
            1e300,
            f64::MIN_POSITIVE,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            std::f64::consts::PI,
        ] {
            let resp = QaResponse::from_answers(vec![answer("v", None, score)]);
            assert_identical(&resp);
        }
    }

    #[test]
    fn serialized_len_matches() {
        let resp = QaResponse::from_answers(vec![answer("390k", Some(7), 0.25)]);
        let mut out = Vec::new();
        resp.serialize_into(&mut out);
        assert_eq!(resp.serialized_len(), out.len());
    }

    #[test]
    fn append_only_contract() {
        let resp = QaResponse::refused(Refusal::EmptyValueSet);
        let mut out = b"prefix".to_vec();
        resp.serialize_into(&mut out);
        assert!(out.starts_with(b"prefix{"));
    }
}
