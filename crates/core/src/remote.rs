//! The router-side client for one out-of-process shard worker.
//!
//! A [`RemoteShard`] is the remote lane behind
//! [`ShardRouter`](crate::shard::ShardRouter): it speaks the
//! [`wire`](crate::wire) protocol over a unix-domain socket to the
//! `kbqa-shardd` process owning one shard, with
//!
//! * a small **connection pool** (engine threads check a stream out per
//!   lookup and return it on success; a failed stream is dropped, never
//!   reused),
//! * a **per-lookup deadline** enforced through socket read/write
//!   timeouts, so a hung worker (SIGSTOP, swap storm) costs one bounded
//!   wait — never a wedged batch, and
//! * **bounded retries** on transient transport errors (connect refused
//!   while the supervisor restarts the worker, reset mid-frame, a corrupt
//!   or truncated reply) — each attempt on a fresh connection, all
//!   attempts inside the same overall deadline.
//!
//! When the budget is exhausted the error propagates as
//! [`RemoteError`]; the router converts it into the same typed
//! [`ShardPanic`](crate::shard::ShardPanic) unwind the in-process poison
//! flag uses, so the service-layer isolation (catch at the request
//! boundary → [`Refusal::ShardUnavailable`](crate::service::Refusal))
//! is identical for both deployment shapes.

use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use kbqa_rdf::path::ExpandedPredicate;
use kbqa_rdf::NodeId;

use crate::wire::{read_frame, write_frame, ErrorCode, Frame, WireError};

/// Client tuning for one remote shard lane.
#[derive(Clone, Debug)]
pub struct RemoteOptions {
    /// Overall wall-clock budget for one lookup, covering every retry.
    pub deadline: Duration,
    /// Extra attempts after the first on transient errors (0 = no retry).
    pub retries: u32,
    /// Idle connections kept pooled per lane.
    pub max_idle: usize,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        Self {
            deadline: Duration::from_millis(500),
            retries: 1,
            max_idle: 8,
        }
    }
}

/// Why a remote call failed after exhausting its budget.
#[derive(Debug)]
pub enum RemoteError {
    /// Transport-level failure (connect, reset, truncation, corruption)
    /// that outlived every retry.
    Unavailable(String),
    /// The worker refused the pinned epoch (staged but not committed, or a
    /// restarted worker still catching up).
    Epoch {
        /// Epoch the request pinned.
        requested: u64,
        /// Detail from the worker.
        detail: String,
    },
    /// The worker replied with a well-formed but unexpected frame — a
    /// protocol bug, not worth retrying.
    Protocol(String),
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::Unavailable(why) => write!(f, "shard worker unavailable: {why}"),
            RemoteError::Epoch { requested, detail } => {
                write!(f, "epoch {requested} unavailable at worker: {detail}")
            }
            RemoteError::Protocol(why) => write!(f, "shard worker protocol error: {why}"),
        }
    }
}

impl std::error::Error for RemoteError {}

/// One remote shard lane: the socket address of its worker plus a pool of
/// warm connections.
#[derive(Debug)]
pub struct RemoteShard {
    shard: usize,
    socket: PathBuf,
    opts: RemoteOptions,
    pool: Mutex<Vec<UnixStream>>,
}

impl RemoteShard {
    /// A lane for shard `shard` whose worker listens on `socket`.
    pub fn new(shard: usize, socket: impl Into<PathBuf>, opts: RemoteOptions) -> Self {
        Self {
            shard,
            socket: socket.into(),
            opts,
            pool: Mutex::new(Vec::new()),
        }
    }

    /// The shard this lane serves.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The worker's socket path.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Drop every pooled connection (after a worker restart the old
    /// streams point at a dead socket; proactive clearing saves one failed
    /// attempt per pooled stream).
    pub fn clear_pool(&self) {
        self.pool.lock().unwrap().clear();
    }

    fn checkout(&self, remaining: Duration) -> Result<UnixStream, WireError> {
        if let Some(stream) = self.pool.lock().unwrap().pop() {
            set_timeouts(&stream, remaining)?;
            return Ok(stream);
        }
        let stream = UnixStream::connect(&self.socket)?;
        set_timeouts(&stream, remaining)?;
        Ok(stream)
    }

    fn checkin(&self, stream: UnixStream) {
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < self.opts.max_idle {
            pool.push(stream);
        }
    }

    /// One request/reply exchange on a fresh-or-pooled connection with the
    /// per-call deadline already running. The stream is only returned to
    /// the pool after a fully successful exchange.
    fn exchange(&self, request: &Frame, remaining: Duration) -> Result<Frame, WireError> {
        let mut stream = self.checkout(remaining)?;
        write_frame(&mut stream, request)?;
        let reply = read_frame(&mut stream)?;
        self.checkin(stream);
        Ok(reply)
    }

    /// Issue `request` under this lane's deadline/retry budget, classifying
    /// failures. Transient transport errors retry on a fresh connection
    /// while the deadline allows; worker `Error` frames and unexpected
    /// frames do not retry.
    pub fn call(&self, request: &Frame) -> Result<Frame, RemoteError> {
        self.call_with(request, self.opts.deadline, self.opts.retries)
    }

    /// [`RemoteShard::call`] with an explicit budget — the supervisor uses
    /// longer budgets for stage/commit (snapshot preload is not a lookup).
    pub fn call_with(
        &self,
        request: &Frame,
        deadline: Duration,
        retries: u32,
    ) -> Result<Frame, RemoteError> {
        let started = Instant::now();
        let mut last: Option<WireError> = None;
        for attempt in 0..=retries {
            let remaining = deadline.saturating_sub(started.elapsed());
            if remaining.is_zero() {
                break;
            }
            match self.exchange(request, remaining) {
                Ok(reply) => return Ok(reply),
                Err(e) if e.is_transient() => {
                    last = Some(e);
                    // A dead worker refuses instantly; without a pause the
                    // whole retry budget burns in microseconds. Tiny, capped
                    // backoff — the real restart cadence lives in the
                    // supervisor.
                    if attempt < retries {
                        let pause = Duration::from_millis(5 << attempt.min(4))
                            .min(deadline.saturating_sub(started.elapsed()));
                        if !pause.is_zero() {
                            std::thread::sleep(pause);
                        }
                    }
                }
                Err(e) => {
                    return Err(RemoteError::Protocol(e.to_string()));
                }
            }
        }
        Err(RemoteError::Unavailable(match last {
            Some(e) => format!(
                "shard {} via {}: {e} (budget {:?}, {} attempt(s))",
                self.shard,
                self.socket.display(),
                deadline,
                retries + 1,
            ),
            None => format!(
                "shard {} via {}: deadline {:?} exhausted before any attempt",
                self.shard,
                self.socket.display(),
                deadline,
            ),
        }))
    }

    /// The scatter RPC: `V(entity, path)` on the owning worker, values
    /// appended to `out` in shard-traversal order.
    pub fn lookup_into(
        &self,
        epoch: u64,
        entity: NodeId,
        path: &ExpandedPredicate,
        out: &mut Vec<NodeId>,
    ) -> Result<(), RemoteError> {
        let request = Frame::Lookup {
            epoch,
            entity,
            path: path.edges().to_vec(),
        };
        match self.call(&request)? {
            Frame::Values { values } => {
                out.extend_from_slice(&values);
                Ok(())
            }
            Frame::Error {
                code: ErrorCode::EpochUnavailable,
                message,
            } => Err(RemoteError::Epoch {
                requested: epoch,
                detail: message,
            }),
            Frame::Error { code, message } => Err(RemoteError::Protocol(format!(
                "worker error {code:?}: {message}"
            ))),
            other => Err(RemoteError::Protocol(format!(
                "expected Values, got {other:?}"
            ))),
        }
    }

    /// Heartbeat probe under `deadline`; returns the worker's
    /// `(epoch, served)` on success.
    pub fn ping(&self, nonce: u64, deadline: Duration) -> Result<(u64, u64), RemoteError> {
        match self.call_with(&Frame::Ping { nonce }, deadline, 0)? {
            Frame::Pong {
                nonce: echoed,
                shard,
                epoch,
                served,
            } => {
                if echoed != nonce {
                    return Err(RemoteError::Protocol(format!(
                        "pong nonce {echoed} != ping nonce {nonce}"
                    )));
                }
                if shard as usize != self.shard {
                    return Err(RemoteError::Protocol(format!(
                        "pong from shard {shard}, lane expects {}",
                        self.shard
                    )));
                }
                Ok((epoch, served))
            }
            other => Err(RemoteError::Protocol(format!(
                "expected Pong, got {other:?}"
            ))),
        }
    }
}

fn set_timeouts(stream: &UnixStream, budget: Duration) -> Result<(), WireError> {
    // A zero timeout means "block forever" to the socket API — clamp up so
    // an exhausted budget still fails fast instead of hanging.
    let t = budget.max(Duration::from_millis(1));
    stream.set_read_timeout(Some(t))?;
    stream.set_write_timeout(Some(t))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::io::{Read, Write};
    use std::os::unix::net::UnixListener;

    use crate::wire::encode_frame;

    fn sock_path(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kbqa-remote-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("w.sock")
    }

    /// A rogue worker: accepts one connection, reads one frame, replies
    /// with raw `reply` bytes (possibly corrupt or truncated), then hangs
    /// up.
    fn rogue_worker(path: &Path, reply: Vec<u8>) -> std::thread::JoinHandle<()> {
        let listener = UnixListener::bind(path).unwrap();
        std::thread::spawn(move || {
            // Serve a few connections: the client retries on fresh streams.
            for _ in 0..4 {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                let _ = read_frame(&mut stream);
                let _ = stream.write_all(&reply);
                let _ = stream.flush();
            }
        })
    }

    fn fast_opts() -> RemoteOptions {
        RemoteOptions {
            deadline: Duration::from_millis(200),
            retries: 1,
            max_idle: 2,
        }
    }

    #[test]
    fn connect_refused_is_unavailable_not_a_hang() {
        let lane = RemoteShard::new(0, sock_path("refused"), fast_opts());
        let started = Instant::now();
        let err = lane
            .lookup_into(
                0,
                NodeId(1),
                &ExpandedPredicate::single(kbqa_rdf::PredicateId(0)),
                &mut Vec::new(),
            )
            .unwrap_err();
        assert!(matches!(err, RemoteError::Unavailable(_)), "{err}");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "bounded by deadline, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn corrupt_reply_frame_is_detected_and_bounded() {
        let path = sock_path("corrupt");
        let mut reply = encode_frame(&Frame::Values {
            values: vec![NodeId(1), NodeId(2)],
        });
        reply[6] ^= 0xff; // flip a payload byte; checksum now fails
        let _worker = rogue_worker(&path, reply);
        let lane = RemoteShard::new(0, &path, fast_opts());
        let mut out = Vec::new();
        let err = lane
            .lookup_into(
                0,
                NodeId(1),
                &ExpandedPredicate::single(kbqa_rdf::PredicateId(0)),
                &mut out,
            )
            .unwrap_err();
        assert!(matches!(err, RemoteError::Unavailable(_)), "{err}");
        assert!(out.is_empty(), "no garbage values leak into the merge");
    }

    #[test]
    fn truncated_reply_frame_is_detected_and_bounded() {
        let path = sock_path("truncated");
        let full = encode_frame(&Frame::Values {
            values: vec![NodeId(1), NodeId(2), NodeId(3)],
        });
        let reply = full[..full.len() / 2].to_vec();
        let _worker = rogue_worker(&path, reply);
        let lane = RemoteShard::new(0, &path, fast_opts());
        let mut out = Vec::new();
        let started = Instant::now();
        let err = lane
            .lookup_into(
                0,
                NodeId(1),
                &ExpandedPredicate::single(kbqa_rdf::PredicateId(0)),
                &mut out,
            )
            .unwrap_err();
        assert!(matches!(err, RemoteError::Unavailable(_)), "{err}");
        assert!(out.is_empty());
        assert!(started.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn silent_worker_hits_read_timeout_within_deadline() {
        let path = sock_path("silent");
        let listener = UnixListener::bind(&path).unwrap();
        let _worker = std::thread::spawn(move || {
            // Accept and read, but never reply — the SIGSTOP shape.
            for _ in 0..4 {
                let Ok((mut stream, _)) = listener.accept() else {
                    return;
                };
                let mut buf = [0u8; 256];
                let _ = stream.read(&mut buf);
                std::thread::sleep(Duration::from_secs(5));
            }
        });
        let lane = RemoteShard::new(
            0,
            &path,
            RemoteOptions {
                deadline: Duration::from_millis(150),
                retries: 1,
                max_idle: 2,
            },
        );
        let started = Instant::now();
        let err = lane.ping(7, Duration::from_millis(150)).unwrap_err();
        assert!(matches!(err, RemoteError::Unavailable(_)), "{err}");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "deadline bounds the hang, took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn epoch_refusal_is_typed_and_not_retried() {
        let path = sock_path("epoch");
        let reply = encode_frame(&Frame::Error {
            code: ErrorCode::EpochUnavailable,
            message: "committed=0 requested=5".into(),
        });
        let _worker = rogue_worker(&path, reply);
        let lane = RemoteShard::new(0, &path, fast_opts());
        let err = lane
            .lookup_into(
                5,
                NodeId(1),
                &ExpandedPredicate::single(kbqa_rdf::PredicateId(0)),
                &mut Vec::new(),
            )
            .unwrap_err();
        match err {
            RemoteError::Epoch { requested, .. } => assert_eq!(requested, 5),
            other => panic!("expected epoch error, got {other}"),
        }
    }
}
