//! The `kbqa-shardd` worker: one shard, one process, one socket.
//!
//! A worker owns exactly one shard of the plan. It maps the shard's
//! snapshot (`store.shard-{i}.snap`) read-only — the same zero-copy warm
//! start the in-process router uses — rebuilds the in-memory adjacency
//! index, binds a unix-domain socket, and serves the
//! [`wire`](crate::wire) protocol with a thread per connection:
//!
//! * **`Lookup`** runs `V(entity, path)` against the committed store and
//!   replies with the values in shard-traversal order. Because the worker
//!   executes the *same* `objects_via_path_into` over the *same* snapshot
//!   bytes with the *same* global id space as an in-process shard store,
//!   the scatter-gather merge stays byte-identical across deployment
//!   shapes — chaos tests pin this.
//! * **`Ping`** answers with the committed epoch and lookups served.
//! * **`Stage`/`Commit`** implement the two-phase reload: stage preloads
//!   a snapshot for epoch N+1 without serving it; commit flips it live
//!   atomically. A `Lookup` pinned to an epoch above the committed one is
//!   refused with a typed `EpochUnavailable` error — a mixed-epoch merge
//!   is impossible by construction.
//! * **`Terminate`** acknowledges and exits 0 — the supervisor's graceful
//!   shutdown path (SIGKILL only after a deadline).
//!
//! # Chaos hooks
//!
//! Fault injection is compiled in and armed by environment variables so
//! the chaos suite drives a *real* worker process into the failure modes
//! the supervisor must contain (values are `<shard>` or `<shard>:<n>` so
//! one variable targets one worker of a fleet):
//!
//! | variable | effect |
//! |---|---|
//! | `KBQA_SHARDD_EXIT_ON_START=<shard>` | exit(3) right after binding — crash loop |
//! | `KBQA_SHARDD_CRASH_AFTER_LOOKUPS=<shard>:<n>` | abort() mid-serving after n lookups |
//! | `KBQA_SHARDD_CORRUPT_EVERY=<shard>:<n>` | flip a byte in every nth reply frame |
//! | `KBQA_SHARDD_TRUNCATE_EVERY=<shard>:<n>` | send only half of every nth reply |

use std::io::Write as _;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use kbqa_common::error::{KbqaError, Result};
use kbqa_rdf::path::{objects_via_path_into, ExpandedPredicate, PathWorkspace};
use kbqa_rdf::{NodeId, TripleStore};

use crate::persist;
use crate::wire::{encode_frame, read_frame, ErrorCode, Frame, WireError};

/// Worker invocation parameters (parsed from `kbqa-shardd` flags).
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// This worker's shard id under the plan.
    pub shard: usize,
    /// Path of the shard snapshot to serve (`store.shard-{i}.snap`).
    pub snapshot: PathBuf,
    /// Unix socket path to listen on (stale files are replaced).
    pub socket: PathBuf,
    /// The model epoch the worker starts committed at.
    pub epoch: u64,
}

/// Chaos injection knobs, parsed once at start. All default off.
#[derive(Clone, Copy, Debug, Default)]
struct Chaos {
    exit_on_start: bool,
    crash_after_lookups: u64,
    corrupt_every: u64,
    truncate_every: u64,
}

impl Chaos {
    fn from_env(shard: usize) -> Self {
        Self {
            exit_on_start: targeted(shard, "KBQA_SHARDD_EXIT_ON_START").is_some(),
            crash_after_lookups: targeted(shard, "KBQA_SHARDD_CRASH_AFTER_LOOKUPS").unwrap_or(0),
            corrupt_every: targeted(shard, "KBQA_SHARDD_CORRUPT_EVERY").unwrap_or(0),
            truncate_every: targeted(shard, "KBQA_SHARDD_TRUNCATE_EVERY").unwrap_or(0),
        }
    }
}

/// Parse `<shard>` (returns 1) or `<shard>:<n>` (returns n) when the
/// variable targets this worker's shard; `None` otherwise.
fn targeted(shard: usize, var: &str) -> Option<u64> {
    let value = std::env::var(var).ok()?;
    let (target, n) = match value.split_once(':') {
        Some((t, n)) => (t, n.parse().ok()?),
        None => (value.as_str(), 1),
    };
    (target.parse::<usize>().ok()? == shard).then_some(n)
}

struct WorkerState {
    shard: usize,
    committed: AtomicU64,
    store: RwLock<Arc<TripleStore>>,
    staged: Mutex<Option<(u64, Arc<TripleStore>)>>,
    served: AtomicU64,
    replies: AtomicU64,
    chaos: Chaos,
}

fn load_shard(path: &Path) -> Result<Arc<TripleStore>> {
    let mut store = persist::load_store(path)?;
    store.build_adjacency_index();
    Ok(Arc::new(store))
}

/// Run the worker: map the snapshot, bind the socket, serve until
/// `Terminate` (exit 0) or a fatal listener error. Replaces a stale
/// socket file from a previous incarnation — the supervisor reuses one
/// path per shard across restarts.
pub fn run(config: WorkerConfig) -> Result<()> {
    let chaos = Chaos::from_env(config.shard);
    let store = load_shard(&config.snapshot)?;
    let state = Arc::new(WorkerState {
        shard: config.shard,
        committed: AtomicU64::new(config.epoch),
        store: RwLock::new(store),
        staged: Mutex::new(None),
        served: AtomicU64::new(0),
        replies: AtomicU64::new(0),
        chaos,
    });
    let _ = std::fs::remove_file(&config.socket);
    let listener = UnixListener::bind(&config.socket)
        .map_err(|e| KbqaError::Io(format!("bind {}: {e}", config.socket.display())))?;
    if chaos.exit_on_start {
        // Crash-loop injection: die right after becoming connectable, the
        // worst moment for the supervisor.
        std::process::exit(3);
    }
    loop {
        let (stream, _) = listener
            .accept()
            .map_err(|e| KbqaError::Io(format!("accept: {e}")))?;
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name(format!("kbqa-shardd-{}-conn", config.shard))
            .spawn(move || serve_connection(stream, &state))
            .map_err(|e| KbqaError::Io(format!("spawn conn thread: {e}")))?;
    }
}

fn serve_connection(mut stream: UnixStream, state: &WorkerState) {
    let mut ws = PathWorkspace::default();
    let mut values: Vec<NodeId> = Vec::new();
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(frame) => frame,
            Err(WireError::Io(_)) => return, // peer hung up / reset
            Err(e) => {
                let _ = send(
                    &mut stream,
                    &Frame::Error {
                        code: ErrorCode::BadFrame,
                        message: e.to_string(),
                    },
                    state,
                );
                return;
            }
        };
        let reply = match frame {
            Frame::Lookup {
                epoch,
                entity,
                path,
            } => {
                let committed = state.committed.load(Ordering::Acquire);
                if epoch > committed {
                    Frame::Error {
                        code: ErrorCode::EpochUnavailable,
                        message: format!("committed={committed} requested={epoch}"),
                    }
                } else {
                    let store = Arc::clone(&state.store.read().unwrap());
                    values.clear();
                    let expanded = ExpandedPredicate::new(path);
                    objects_via_path_into(&store, entity, &expanded, &mut ws, &mut values);
                    let served = state.served.fetch_add(1, Ordering::Relaxed) + 1;
                    if state.chaos.crash_after_lookups > 0
                        && served >= state.chaos.crash_after_lookups
                    {
                        // Simulated hard crash mid-batch: no reply, no
                        // cleanup, no exit handler.
                        std::process::abort();
                    }
                    Frame::Values {
                        values: values.clone(),
                    }
                }
            }
            Frame::Ping { nonce } => Frame::Pong {
                nonce,
                shard: state.shard as u32,
                epoch: state.committed.load(Ordering::Acquire),
                served: state.served.load(Ordering::Relaxed),
            },
            Frame::Stage { epoch, snapshot } => match load_shard(Path::new(&snapshot)) {
                Ok(store) => {
                    *state.staged.lock().unwrap() = Some((epoch, store));
                    Frame::Staged { epoch }
                }
                Err(e) => Frame::Error {
                    code: ErrorCode::Internal,
                    message: format!("stage {snapshot}: {e}"),
                },
            },
            Frame::Commit { epoch } => {
                let committed = state.committed.load(Ordering::Acquire);
                let staged = {
                    let mut guard = state.staged.lock().unwrap();
                    match guard.as_ref() {
                        Some((e, _)) if *e == epoch => guard.take(),
                        _ => None,
                    }
                };
                match staged {
                    Some((_, store)) => {
                        *state.store.write().unwrap() = store;
                        state.committed.store(epoch, Ordering::Release);
                        Frame::Committed { epoch }
                    }
                    None if epoch == committed => Frame::Committed { epoch }, // idempotent
                    None => Frame::Error {
                        code: ErrorCode::Internal,
                        message: format!(
                            "commit {epoch}: nothing staged at that epoch (committed={committed})"
                        ),
                    },
                }
            }
            Frame::Terminate => {
                let _ = send(&mut stream, &Frame::Terminating, state);
                std::process::exit(0);
            }
            other => Frame::Error {
                code: ErrorCode::BadFrame,
                message: format!("unexpected frame {other:?}"),
            },
        };
        if send(&mut stream, &reply, state).is_err() {
            return;
        }
    }
}

/// Encode and write a reply, applying corruption/truncation chaos to every
/// nth frame when armed.
fn send(stream: &mut UnixStream, frame: &Frame, state: &WorkerState) -> std::io::Result<()> {
    let mut bytes = encode_frame(frame);
    let nth = state.replies.fetch_add(1, Ordering::Relaxed) + 1;
    if state.chaos.corrupt_every > 0 && nth.is_multiple_of(state.chaos.corrupt_every) {
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // trash the checksum trailer
    }
    if state.chaos.truncate_every > 0 && nth.is_multiple_of(state.chaos.truncate_every) {
        // A truncated frame models a writer dying mid-send, so the
        // connection dies with it: leaving it open would make the client
        // wait out its whole read deadline for bytes that never come,
        // instead of seeing the EOF a real crash produces.
        bytes.truncate(bytes.len() / 2);
        stream.write_all(&bytes)?;
        stream.flush()?;
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionAborted,
            "chaos: truncated frame, dropping connection",
        ));
    }
    stream.write_all(&bytes)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targeted_env_parses_shard_and_count() {
        // Not set at all.
        assert_eq!(targeted(0, "KBQA_SHARDD_TEST_UNSET"), None);
        std::env::set_var("KBQA_SHARDD_TEST_A", "2");
        assert_eq!(targeted(2, "KBQA_SHARDD_TEST_A"), Some(1));
        assert_eq!(targeted(1, "KBQA_SHARDD_TEST_A"), None);
        std::env::set_var("KBQA_SHARDD_TEST_B", "3:250");
        assert_eq!(targeted(3, "KBQA_SHARDD_TEST_B"), Some(250));
        assert_eq!(targeted(0, "KBQA_SHARDD_TEST_B"), None);
        std::env::set_var("KBQA_SHARDD_TEST_C", "junk");
        assert_eq!(targeted(0, "KBQA_SHARDD_TEST_C"), None);
    }
}
