//! Cold vs cached answer latency — the case for the server's answer cache.
//!
//! "QA Is the New KR" argues repeated QA-pair lookups dominate live QA
//! traffic; the cache turns each repeat from a full Eq (7) enumeration into
//! a sharded-LRU probe plus an `Arc` clone. This bench quantifies the gap on
//! the same question suite:
//!
//! * `cold`   — every question runs the engine (`KbqaService::answer`);
//! * `cached` — every question probes a pre-warmed `AnswerCache` first, the
//!   steady state of a server seeing recurring traffic;
//! * `miss_then_hit` — a cleared cache absorbing the suite once, then being
//!   re-asked: one warm-up pass amortized over two;
//! * `swap_then_requery` — the live-ops path: a cache warmed under one
//!   model epoch, then a `swap_model` and a full re-ask under the bumped
//!   epoch. Every versioned key misses (the invalidation is the epoch
//!   prefix, not a flush), so this prices a hot swap's cold-cache tax.

use criterion::{criterion_group, criterion_main, Criterion};

use kbqa_bench::Session;
use kbqa_core::service::QaRequest;
use kbqa_corpus::benchmark;
use kbqa_server::{AnswerCache, CacheConfig};

fn bench_cached_answer(c: &mut Criterion) {
    let session = Session::build("bench", kbqa_corpus::WorldConfig::small(42), 3000);
    let bench = benchmark::qald_like(&session.world, "cache", 40, 30, 0.2, 75);
    let service = session.service();
    let requests: Vec<QaRequest> = bench
        .questions
        .iter()
        .map(|q| QaRequest::new(&q.question))
        .collect();
    let keys: Vec<String> = requests
        .iter()
        .map(|r| r.cache_key(service.config()))
        .collect();

    let mut group = c.benchmark_group("cached_answer");
    group.sample_size(20);

    group.bench_function("cold", |b| {
        b.iter(|| {
            let mut answered = 0usize;
            for request in &requests {
                if service.answer(std::hint::black_box(request)).answered() {
                    answered += 1;
                }
            }
            answered
        })
    });

    let warm = AnswerCache::new(CacheConfig::default());
    for (request, key) in requests.iter().zip(&keys) {
        warm.get_or_compute(key.clone(), || service.answer(request));
    }
    group.bench_function("cached", |b| {
        b.iter(|| {
            let mut answered = 0usize;
            for key in &keys {
                if warm
                    .get(std::hint::black_box(key))
                    .expect("pre-warmed")
                    .answered()
                {
                    answered += 1;
                }
            }
            answered
        })
    });

    group.bench_function("miss_then_hit", |b| {
        b.iter(|| {
            let cache = AnswerCache::new(CacheConfig::default());
            let mut answered = 0usize;
            for _round in 0..2 {
                for (request, key) in requests.iter().zip(&keys) {
                    let response = cache.get_or_compute(key.clone(), || service.answer(request));
                    if response.answered() {
                        answered += 1;
                    }
                }
            }
            answered
        })
    });

    // A sibling service with its own ModelHandle, so the epoch churn below
    // never leaks into the other benches' un-versioned keys.
    let swapping = service.with_model(service.model());
    group.bench_function("swap_then_requery", |b| {
        b.iter(|| {
            let cache = AnswerCache::new(CacheConfig::default());
            let mut answered = 0usize;
            // Warm under the current epoch…
            let snapshot = swapping.snapshot();
            for request in &requests {
                cache.get_or_compute(snapshot.cache_key(request), || snapshot.answer(request));
            }
            // …swap (epoch bump re-keys everything), re-ask the suite cold.
            swapping.swap_model(swapping.model());
            let snapshot = swapping.snapshot();
            for request in &requests {
                let response =
                    cache.get_or_compute(snapshot.cache_key(request), || snapshot.answer(request));
                if response.answered() {
                    answered += 1;
                }
            }
            answered
        })
    });

    group.finish();
}

criterion_group!(benches, bench_cached_answer);
criterion_main!(benches);
