//! The Sec 5.3 complexity claim: decomposition is O(|q|⁴) in question
//! length. We time Algorithm 2 on questions padded to increasing lengths;
//! the growth should be polynomial and the absolute cost negligible for
//! the <23-word questions that dominate real corpora.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kbqa_bench::Session;
use kbqa_core::decompose;

fn bench_decomposition(c: &mut Criterion) {
    let session = Session::build("bench", kbqa_corpus::WorldConfig::tiny(42), 1200);
    let service = session.service();

    // A real complex question from the world, padded with filler clauses to
    // reach each target length.
    let cap = session.world.intent_by_name("country_capital").unwrap();
    let country = session
        .world
        .subjects_of(cap)
        .iter()
        .copied()
        .find(|&s| !session.world.gold_values(cap, s).is_empty())
        .expect("country with capital");
    let base = format!(
        "how many people live in the capital of {}",
        session.world.store.surface(country)
    );

    let mut group = c.benchmark_group("decomposition_dp");
    group.sample_size(20);
    for &target_len in &[10usize, 14, 18, 22] {
        let mut question = base.clone();
        while question.split_whitespace().count() < target_len {
            question.push_str(" these days");
        }
        group.bench_with_input(BenchmarkId::new("tokens", target_len), &question, |b, q| {
            b.iter(|| service.decompose(std::hint::black_box(q)))
        });
    }
    group.finish();

    // Pattern-index construction cost (one-time, offline).
    let questions: Vec<&str> = session
        .corpus
        .pairs
        .iter()
        .map(|p| p.question.as_str())
        .collect();
    c.bench_function("pattern_index_build", |b| {
        b.iter(|| {
            decompose::PatternIndex::build(
                std::hint::black_box(questions.iter().copied()),
                service.ner(),
            )
        })
    });
}

criterion_group!(benches, bench_decomposition);
criterion_main!(benches);
