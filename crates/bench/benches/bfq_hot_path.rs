//! Hot-path benchmarks for the optimized BFQ kernel (PR 4).
//!
//! Three views of the same inference spine:
//!
//! * `bfq_cold` — cache-cold questions (no answer cache in front),
//!   comparing the retained reference enumeration (`bfq_kernel_reference`,
//!   the pre-PR kernel) against the optimized kernel with a fresh scratch
//!   per question (one-shot worst case) and with a per-worker reused
//!   scratch (the serving path).
//! * `bfq_batch` — `KbqaService::answer_batch` throughput over a mixed
//!   question set (per-worker scratch reuse inside).
//! * `bfq_repeat` — the allocation-sensitive loop: the same scratch driven
//!   across the whole question set per iteration, scoring only; this is the
//!   path the zero-allocation test pins, timed.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use kbqa_bench::{session::Scale, Session};
use kbqa_core::engine::{QaEngine, ScratchSpace};
use kbqa_core::service::QaRequest;
use kbqa_nlp::{tokenize, TokenizedText};

struct Fixture {
    session: Session,
    questions: Vec<String>,
    tokenized: Vec<TokenizedText>,
}

fn fixture() -> Fixture {
    let session = Session::standard(Scale::Quick, "kba");
    // Same slice the `hotpath` bin records in BENCH_PR4.json, so the bench
    // and the committed trajectory describe the same workload.
    let questions: Vec<String> = session
        .corpus
        .pairs
        .iter()
        .take(200)
        .map(|p| p.question.clone())
        .collect();
    let tokenized = questions.iter().map(|q| tokenize(q)).collect();
    Fixture {
        session,
        questions,
        tokenized,
    }
}

fn engine(f: &Fixture) -> QaEngine<'_> {
    QaEngine::with_shared(
        &f.session.world.store,
        &f.session.world.conceptualizer,
        &f.session.model,
        f.session.service().ner(),
    )
}

fn bench_cold(c: &mut Criterion) {
    let f = fixture();
    let engine = engine(&f);
    let mut group = c.benchmark_group("bfq_cold");
    // Every mode sweeps the identical full question set per iteration, so
    // the per-element rates are directly comparable across modes.
    group.throughput(Throughput::Elements(f.tokenized.len() as u64));

    group.bench_function("reference_kernel", |b| {
        b.iter(|| {
            let mut answered = 0usize;
            for tokens in &f.tokenized {
                answered += usize::from(engine.bfq_kernel_reference(tokens).is_ok());
            }
            answered
        })
    });

    group.bench_function("optimized_one_shot", |b| {
        b.iter(|| {
            let mut answered = 0usize;
            for tokens in &f.tokenized {
                let mut scratch = ScratchSpace::new();
                answered += usize::from(
                    !engine
                        .answer_bfq_tokens_with(tokens, &mut scratch)
                        .is_empty(),
                );
            }
            answered
        })
    });

    let mut scratch = ScratchSpace::new();
    group.bench_function("optimized_serving", |b| {
        b.iter(|| {
            let mut answered = 0usize;
            for tokens in &f.tokenized {
                answered += usize::from(
                    !engine
                        .answer_bfq_tokens_with(tokens, &mut scratch)
                        .is_empty(),
                );
            }
            answered
        })
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let f = fixture();
    let requests: Vec<QaRequest> = f.questions.iter().map(QaRequest::new).collect();
    let service = f.session.service().clone();
    let mut group = c.benchmark_group("bfq_batch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.bench_function("answer_batch", |b| {
        b.iter(|| service.answer_batch(&requests))
    });
    group.finish();
}

fn bench_repeat(c: &mut Criterion) {
    let f = fixture();
    let engine = engine(&f);
    let mut scratch = ScratchSpace::new();
    // Warm the scratch to steady-state capacity before timing.
    for tokens in &f.tokenized {
        let _ = engine.score_bfq(tokens, &mut scratch);
    }
    let mut group = c.benchmark_group("bfq_repeat");
    group.throughput(Throughput::Elements(f.tokenized.len() as u64));
    group.bench_function("score_all_warm", |b| {
        b.iter(|| {
            let mut answered = 0usize;
            for tokens in &f.tokenized {
                if engine.score_bfq(tokens, &mut scratch).is_ok() {
                    answered += 1;
                }
            }
            answered
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cold, bench_batch, bench_repeat);
criterion_main!(benches);
