//! Table 14: online answering latency, KBQA vs baselines.
//!
//! The paper reports 79 ms/question for KBQA vs 990 ms (gAnswer) and
//! 7738 ms (DEANNA); the claim to check is *shape*: KBQA's probabilistic
//! inference stays within interactive bounds and scales O(|P|), while the
//! baselines do less work per question (they understand less).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kbqa_baselines::{KeywordQa, RuleBasedQa, SynonymQa};
use kbqa_bench::{tables, Session};
use kbqa_core::service::QaSystem;
use kbqa_corpus::benchmark;

fn bench_online(c: &mut Criterion) {
    let session = Session::build("bench", kbqa_corpus::WorldConfig::small(42), 3000);
    let bench = benchmark::qald_like(&session.world, "latency", 40, 30, 0.2, 75);
    let questions: Vec<String> = bench.questions.iter().map(|q| q.question.clone()).collect();

    let service = session.service();
    let rule = RuleBasedQa::new(&session.world.store);
    let keyword = KeywordQa::new(&session.world.store);
    let boa = tables::boa_artifacts(&session, 30);
    let synonym = SynonymQa::new(&session.world.store, &boa.lexicon, &boa.expansion.catalog);

    let mut group = c.benchmark_group("online_latency");
    group.sample_size(20);
    let systems: Vec<(&str, &dyn QaSystem)> = vec![
        ("kbqa", service),
        ("rule", &rule),
        ("keyword", &keyword),
        ("synonym", &synonym),
    ];
    for (name, system) in systems {
        group.bench_with_input(
            BenchmarkId::new("answer_suite", name),
            &questions,
            |b, qs| {
                b.iter(|| {
                    let mut answered = 0usize;
                    for q in qs {
                        if system.answer_text(std::hint::black_box(q)).answered() {
                            answered += 1;
                        }
                    }
                    answered
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);
