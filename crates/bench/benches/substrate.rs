//! Substrate microbenchmarks: the store's index lookups, path traversal,
//! mention matching and conceptualization — the per-question constants the
//! paper's O(|P|) online bound stands on.

use criterion::{criterion_group, criterion_main, Criterion};

use kbqa_corpus::{World, WorldConfig};
use kbqa_nlp::{tokenize, GazetteerNer};
use kbqa_rdf::path::objects_via_path;

fn bench_substrate(c: &mut Criterion) {
    let world = World::generate(WorldConfig::small(42));
    let store = &world.store;
    let ner = GazetteerNer::from_store(store);

    let pop_intent = world.intent_by_name("city_population").unwrap();
    let city = world
        .subjects_of(pop_intent)
        .iter()
        .copied()
        .find(|&s| !world.gold_values(pop_intent, s).is_empty())
        .expect("city with population");
    let pop_pred = store.dict().find_predicate("population").unwrap();

    c.bench_function("store_objects_lookup", |b| {
        b.iter(|| store.objects(std::hint::black_box(city), pop_pred).count())
    });

    let spouse = world.intent_by_name("person_spouse").unwrap();
    let married = world
        .subjects_of(spouse)
        .iter()
        .copied()
        .find(|&s| !world.gold_values(spouse, s).is_empty())
        .expect("married person");
    c.bench_function("path_traversal_3_edges", |b| {
        b.iter(|| objects_via_path(store, std::hint::black_box(married), &spouse.path))
    });

    let question = format!("how many people are there in {}", store.surface(city));
    c.bench_function("tokenize_question", |b| {
        b.iter(|| tokenize(std::hint::black_box(&question)))
    });

    let tokens = tokenize(&question);
    c.bench_function("ner_find_all_mentions", |b| {
        b.iter(|| ner.find_all_mentions(std::hint::black_box(&tokens)))
    });

    let context: Vec<&str> = tokens.words().into_iter().take(6).collect();
    c.bench_function("conceptualize_in_context", |b| {
        b.iter(|| {
            world
                .conceptualizer
                .conceptualize(std::hint::black_box(city), &context)
        })
    });

    c.bench_function("entities_named_lookup", |b| {
        let name = store.surface(city).to_lowercase();
        b.iter(|| store.entities_named(std::hint::black_box(&name)).len())
    });
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
