//! Algorithm 1's O(km) claim: EM cost per iteration is linear in the
//! observation count m, with constant per-observation work (the Eq 24
//! pruning). We scale m and fix k; the per-iteration time should scale
//! linearly, and the parallel E-step should beat sequential on large m.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use kbqa_core::catalog::PredId;
use kbqa_core::em::{estimate, EmConfig};
use kbqa_core::extraction::Observation;
use kbqa_core::template::TemplateId;
use kbqa_rdf::NodeId;

/// Synthetic observations with realistic fan-out (2 templates × ≤3
/// predicates per observation).
fn observations(m: usize, templates: usize, predicates: usize) -> Vec<Observation> {
    (0..m)
        .map(|i| {
            let t0 = (i % templates) as u32;
            let t1 = ((i + 1) % templates) as u32;
            let p0 = (i % predicates) as u32;
            let p1 = ((i * 7 + 1) % predicates) as u32;
            Observation {
                pair_index: i,
                entity: NodeId::new((i % 97) as u32),
                value: NodeId::new((i % 89) as u32),
                p_entity: 0.5,
                templates: vec![(TemplateId::new(t0), 0.7), (TemplateId::new(t1), 0.3)],
                predicates: if i % 3 == 0 {
                    vec![(PredId::new(p0), 1.0)]
                } else {
                    vec![(PredId::new(p0), 0.5), (PredId::new(p1), 0.5)]
                },
            }
        })
        .collect()
}

fn bench_em(c: &mut Criterion) {
    let mut group = c.benchmark_group("em_throughput");
    group.sample_size(10);
    for &m in &[2_000usize, 8_000, 32_000] {
        let obs = observations(m, 200, 60);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::new("sequential", m), &obs, |b, obs| {
            let config = EmConfig {
                max_iterations: 5,
                threads: 1,
                ..Default::default()
            };
            b.iter(|| estimate(std::hint::black_box(obs), 200, &config))
        });
        group.bench_with_input(BenchmarkId::new("parallel4", m), &obs, |b, obs| {
            let config = EmConfig {
                max_iterations: 5,
                threads: 4,
                ..Default::default()
            };
            b.iter(|| estimate(std::hint::black_box(obs), 200, &config))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_em);
criterion_main!(benches);
