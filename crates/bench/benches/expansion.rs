//! Sec 6.2's scan-join BFS: cost should be k scans over the triple log plus
//! join work proportional to the frontier, NOT per-node graph traversals.
//! We scale the path-length cap k and the source-set size independently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kbqa_common::hash::FxHashSet;
use kbqa_core::expansion::{expand, valid_k, ExpansionConfig};
use kbqa_corpus::{World, WorldConfig};
use kbqa_rdf::NodeId;

fn bench_expansion(c: &mut Criterion) {
    let world = World::generate(WorldConfig::small(42));
    let store = &world.store;
    // Sources: the first N resources with out-edges.
    let all_sources: Vec<NodeId> = store
        .dict()
        .nodes()
        .filter(|&n| store.dict().node_term(n).is_resource() && store.out_edges(n).next().is_some())
        .collect();

    let mut group = c.benchmark_group("expansion_bfs");
    group.sample_size(20);
    for &k in &[1usize, 2, 3] {
        let sources: FxHashSet<NodeId> = all_sources.iter().copied().take(200).collect();
        let config = ExpansionConfig {
            max_len: k,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("max_len", k), &config, |b, cfg| {
            b.iter(|| expand(store, std::hint::black_box(&sources), cfg))
        });
    }
    for &n in &[50usize, 200, 800] {
        let sources: FxHashSet<NodeId> = all_sources.iter().copied().take(n).collect();
        group.bench_with_input(BenchmarkId::new("sources", n), &sources, |b, s| {
            b.iter(|| expand(store, std::hint::black_box(s), &ExpansionConfig::default()))
        });
    }
    group.finish();

    // Table 4's estimator end to end.
    c.bench_function("valid_k_top200", |b| {
        b.iter(|| {
            valid_k(
                store,
                std::hint::black_box(&world.infobox),
                200,
                &ExpansionConfig::default(),
            )
        })
    });
}

criterion_group!(benches, bench_expansion);
criterion_main!(benches);
