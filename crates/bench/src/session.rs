//! Session: the cached expensive artifacts behind every experiment.
//!
//! A [`Session`] bundles one knowledge-base preset's world, QA corpus,
//! learned model, expansion result and decomposition pattern index — i.e.
//! the paper's full offline procedure output. Tables share sessions so the
//! offline pipeline runs once per KB preset, not once per table.

use std::sync::Arc;

use kbqa_core::decompose::PatternIndex;
use kbqa_core::expansion::ExpansionResult;
use kbqa_core::learner::{LearnedModel, Learner, LearnerConfig};
use kbqa_core::service::KbqaService;
use kbqa_corpus::{CorpusConfig, QaCorpus, World, WorldConfig};
use kbqa_nlp::GazetteerNer;

/// Experiment scale: quick (seconds; CI) or full (the EXPERIMENTS.md runs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small worlds, thousands of QA pairs. Seconds per table.
    Quick,
    /// The KBA/Freebase/DBpedia-like presets with a large corpus.
    Full,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "quick" => Some(Self::Quick),
            "full" => Some(Self::Full),
            _ => None,
        }
    }

    /// QA corpus size for this scale.
    pub fn corpus_pairs(self) -> usize {
        match self {
            Self::Quick => 4_000,
            Self::Full => 30_000,
        }
    }

    /// World preset for a KB name (`kba`, `freebase`, `dbpedia`).
    pub fn world_config(self, kb: &str, seed: u64) -> WorldConfig {
        match (self, kb) {
            (Self::Quick, "kba") => WorldConfig::small(seed),
            (Self::Quick, "freebase") => WorldConfig::small(seed.wrapping_add(1)),
            (Self::Quick, "dbpedia") => WorldConfig::tiny(seed.wrapping_add(2)),
            (Self::Full, "kba") => WorldConfig::kba_like(seed),
            (Self::Full, "freebase") => WorldConfig::freebase_like(seed.wrapping_add(1)),
            (Self::Full, "dbpedia") => WorldConfig::dbpedia_like(seed.wrapping_add(2)),
            _ => WorldConfig::small(seed),
        }
    }
}

/// One KB preset's offline artifacts.
pub struct Session {
    /// Display name of the KB preset (`KBA-like`, …).
    pub kb_name: String,
    /// The generated world.
    pub world: World,
    /// The QA training corpus.
    pub corpus: QaCorpus,
    /// The learned model.
    pub model: Arc<LearnedModel>,
    /// The expansion result (feeds Tables 4/16 and the baselines).
    pub expansion: ExpansionResult,
    /// The decomposition pattern index.
    pub pattern_index: Arc<PatternIndex>,
    /// The serving handle over this session's artifacts (cheap to clone).
    service: KbqaService,
}

impl Session {
    /// Run the full offline pipeline for a preset.
    pub fn build(kb_name: &str, world_config: WorldConfig, corpus_pairs: usize) -> Self {
        let world = World::generate(world_config);
        let corpus = QaCorpus::generate(&world, &CorpusConfig::with_pairs(17, corpus_pairs));
        let ner = Arc::new(GazetteerNer::from_store(&world.store));
        let learner = Learner::new(
            &world.store,
            &world.conceptualizer,
            &ner,
            &world.predicate_classes,
        );
        let pairs: Vec<(&str, &str)> = corpus
            .pairs
            .iter()
            .map(|p| (p.question.as_str(), p.answer.as_str()))
            .collect();
        let config = LearnerConfig {
            em: kbqa_core::EmConfig {
                threads: std::thread::available_parallelism()
                    .map(|n| n.get().min(8))
                    .unwrap_or(1),
                ..Default::default()
            },
            ..Default::default()
        };
        let (model, expansion) = learner.learn(&pairs, &config);
        let model = Arc::new(model);
        let pattern_index = Arc::new(PatternIndex::build(
            corpus.pairs.iter().map(|p| p.question.as_str()),
            &ner,
        ));
        let service = KbqaService::builder(
            Arc::clone(&world.store),
            Arc::clone(&world.conceptualizer),
            Arc::clone(&model),
        )
        .ner(ner)
        .pattern_index(Arc::clone(&pattern_index))
        .build();
        Self {
            kb_name: kb_name.to_owned(),
            world,
            corpus,
            model,
            expansion,
            pattern_index,
            service,
        }
    }

    /// Build the standard session for a scale and KB name.
    pub fn standard(scale: Scale, kb: &str) -> Self {
        let name = match kb {
            "kba" => "KBA-like",
            "freebase" => "Freebase-like",
            "dbpedia" => "DBpedia-like",
            other => other,
        };
        Self::build(name, scale.world_config(kb, 42), scale.corpus_pairs())
    }

    /// The serving handle over this session's artifacts.
    pub fn service(&self) -> &KbqaService {
        &self.service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_session_builds_and_answers() {
        let session = Session::build("test", kbqa_corpus::WorldConfig::tiny(42), 500);
        assert!(session.model.stats.observations > 50);
        let service = session.service();
        let pop = session.world.intent_by_name("city_population").unwrap();
        let city = session
            .world
            .subjects_of(pop)
            .iter()
            .copied()
            .find(|&c| !session.world.gold_values(pop, c).is_empty())
            .unwrap();
        let q = format!(
            "what is the population of {}",
            session.world.store.surface(city)
        );
        assert!(service.answer_text(&q).answered());
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("other"), None);
        assert!(Scale::Quick.corpus_pairs() < Scale::Full.corpus_pairs());
    }
}
