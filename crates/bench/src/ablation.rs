//! Ablations (DESIGN.md §7) and the Sec 7.5 component studies.
//!
//! * [`entity_identification`] — the paper's Sec 7.5 comparison: joint
//!   corpus-based entity–value extraction vs an independent NER (72% vs 30%
//!   in the paper).
//! * [`refinement_ablation`] — extraction quality with and without the
//!   Sec 4.1.1 answer-type filter.
//! * [`uniform_theta_ablation`] — answering with EM's θ vs the uniform
//!   initialization (isolates what the iterations buy; Sec 7.2's case for
//!   the probabilistic framework).
//! * [`decomposition_ablation`] — complex-question success with and without
//!   the Sec 5 DP decomposition.

use kbqa_core::eval;
use kbqa_core::extraction::{ExtractionConfig, Extractor};
use kbqa_core::template::TemplateCatalog;
use kbqa_corpus::benchmark;
use kbqa_nlp::{GazetteerNer, HeuristicNer};

use crate::format::{f2, Table};
use crate::session::Session;

/// Sec 7.5: precision of entity identification on gold-annotated QA pairs.
pub fn entity_identification(session: &Session, sample: usize) -> Table {
    let world = &session.world;
    let ner = GazetteerNer::from_store(&world.store);
    let extractor = Extractor::new(
        &world.store,
        &world.conceptualizer,
        &ner,
        &session.expansion,
        &world.predicate_classes,
        ExtractionConfig::default(),
    );
    let heuristic = HeuristicNer;

    let mut checked = 0usize;
    let mut ours_right = 0usize;
    let mut heuristic_right = 0usize;
    for pair in session.corpus.factoid_pairs().take(sample) {
        let gold = pair.gold.as_ref().expect("factoid pair has gold");
        checked += 1;
        // Joint extraction: did the gold entity survive into the EV set?
        let ours = extractor.extracted_entities(&pair.question, &pair.answer);
        if ours.contains(&gold.entity) {
            ours_right += 1;
        }
        // Independent NER: capitalization spans, grounded by name.
        let tokens = kbqa_nlp::tokenize(&pair.question);
        let found = heuristic.find_mentions(&tokens).iter().any(|m| {
            let phrase = tokens.join(m.start, m.end);
            world.store.entities_named(&phrase).contains(&gold.entity)
        });
        if found {
            heuristic_right += 1;
        }
    }
    let mut t = Table::new(
        "Sec 7.5: precision of entity identification",
        &["approach", "#checked", "#right", "accuracy"],
    );
    t.row(vec![
        "joint extraction (KBQA)".into(),
        checked.to_string(),
        ours_right.to_string(),
        f2(ours_right as f64 / checked.max(1) as f64),
    ]);
    t.row(vec![
        "independent NER (Stanford-like)".into(),
        checked.to_string(),
        heuristic_right.to_string(),
        f2(heuristic_right as f64 / checked.max(1) as f64),
    ]);
    t
}

/// Sec 4.1.1 ablation: extraction with vs without the answer-type filter.
/// Reports observation counts and the fraction whose value matches the
/// generator's gold value (extraction purity).
pub fn refinement_ablation(session: &Session, sample: usize) -> Table {
    let world = &session.world;
    let ner = GazetteerNer::from_store(&world.store);
    let mut t = Table::new(
        "Ablation: Sec 4.1.1 answer-type refinement",
        &["refinement", "#observations", "gold-value fraction"],
    );
    for refine in [true, false] {
        let extractor = Extractor::new(
            &world.store,
            &world.conceptualizer,
            &ner,
            &session.expansion,
            &world.predicate_classes,
            ExtractionConfig {
                refine_by_class: refine,
                ..Default::default()
            },
        );
        let mut templates = TemplateCatalog::new();
        let mut observations = Vec::new();
        let mut gold_hits = 0usize;
        for (i, pair) in session.corpus.factoid_pairs().take(sample).enumerate() {
            let before = observations.len();
            extractor.extract_pair(
                i,
                &pair.question,
                &pair.answer,
                &mut templates,
                &mut observations,
            );
            let gold = pair.gold.as_ref().expect("factoid gold");
            for obs in &observations[before..] {
                if world.store.surface(obs.value) == gold.value_surface {
                    gold_hits += 1;
                }
            }
        }
        let purity = if observations.is_empty() {
            0.0
        } else {
            gold_hits as f64 / observations.len() as f64
        };
        t.row(vec![
            if refine { "on (Sec 4.1.1)" } else { "off" }.into(),
            observations.len().to_string(),
            f2(purity),
        ]);
    }
    t
}

/// EM vs uniform-θ ablation on a BFQ-only benchmark.
pub fn uniform_theta_ablation(session: &Session) -> Table {
    let bench = benchmark::qald_like(&session.world, "bfq", 60, 60, 0.0, 81);
    let questions = crate::tables::to_eval(&bench);

    let mut t = Table::new(
        "Ablation: EM-learned θ vs uniform θ (Eq 23 initialization only)",
        &["model", "#pro", "#ri", "P", "R"],
    );
    // EM θ.
    let o = eval::evaluate_qald(session.service(), &questions);
    t.row(vec![
        "EM θ".into(),
        o.processed.to_string(),
        o.right.to_string(),
        f2(o.precision()),
        f2(o.recall()),
    ]);
    // Uniform θ: same model with flattened rows, behind a sibling service
    // sharing every other artifact (no NER re-derivation).
    let mut uniform_model = (*session.model).clone();
    uniform_model.theta = session.model.theta.uniformized();
    let uniform_service = session
        .service()
        .with_model(std::sync::Arc::new(uniform_model));
    let o = eval::evaluate_qald(&uniform_service, &questions);
    t.row(vec![
        "uniform θ".into(),
        o.processed.to_string(),
        o.right.to_string(),
        f2(o.precision()),
        f2(o.recall()),
    ]);
    t
}

/// Decomposition on/off over the Table 15 complex suite.
pub fn decomposition_ablation(session: &Session) -> Table {
    let suite = benchmark::complex_suite(&session.world);
    let mut t = Table::new(
        "Ablation: Sec 5 decomposition on/off (complex suite)",
        &["configuration", "#answered right", "#total"],
    );
    for (name, decompose) in [("DP decomposition", true), ("no decomposition", false)] {
        // Per-request override: same service, no rebuilt engine.
        let service = session.service();
        let right = suite
            .iter()
            .filter(|q| {
                let request = kbqa_core::QaRequest::new(&q.question).with_decompose(decompose);
                service
                    .answer(&request)
                    .value_strings()
                    .iter()
                    .any(|v| eval::matches_gold(v, &q.gold_answers))
            })
            .count();
        t.row(vec![
            name.into(),
            right.to_string(),
            suite.len().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::build("test", kbqa_corpus::WorldConfig::tiny(42), 800)
    }

    #[test]
    fn joint_extraction_beats_heuristic_ner() {
        let s = session();
        let t = entity_identification(&s, 50);
        let ours: f64 = t.rows[0][3].parse().unwrap();
        let ner: f64 = t.rows[1][3].parse().unwrap();
        assert!(ours > ner, "joint {ours} vs NER {ner}\n{t}");
        assert!(ours > 0.5, "joint accuracy too low: {ours}");
    }

    #[test]
    fn refinement_improves_purity() {
        let s = session();
        let t = refinement_ablation(&s, 200);
        let with: f64 = t.rows[0][2].parse().unwrap();
        let without: f64 = t.rows[1][2].parse().unwrap();
        assert!(
            with >= without,
            "refinement hurt purity: {with} < {without}\n{t}"
        );
        let obs_with: usize = t.rows[0][1].parse().unwrap();
        let obs_without: usize = t.rows[1][1].parse().unwrap();
        assert!(obs_without >= obs_with, "filter added observations?\n{t}");
    }

    #[test]
    fn em_theta_no_worse_than_uniform() {
        let s = session();
        let t = uniform_theta_ablation(&s);
        let em_p: f64 = t.rows[0][3].parse().unwrap();
        let uni_p: f64 = t.rows[1][3].parse().unwrap();
        assert!(
            em_p + 1e-9 >= uni_p,
            "EM precision {em_p} below uniform {uni_p}\n{t}"
        );
    }

    #[test]
    fn decomposition_is_required_for_complex_questions() {
        let s = session();
        let t = decomposition_ablation(&s);
        let with: usize = t.rows[0][1].parse().unwrap();
        let without: usize = t.rows[1][1].parse().unwrap();
        assert!(with >= without);
        assert!(with > 0, "DP answered nothing\n{t}");
    }
}
